"""Unit tests for canonical fingerprints (repro.model.fingerprint)."""

from repro.model.fingerprint import (
    interface_fingerprint,
    schema_fingerprint,
    schemas_equal,
)
from repro.odl.parser import parse_schema


class TestOrderIndependence:
    def test_interface_order_irrelevant(self):
        first = parse_schema("interface A {}; interface B {};", name="x")
        second = parse_schema("interface B {}; interface A {};", name="y")
        assert schemas_equal(first, second)

    def test_member_order_irrelevant(self):
        first = parse_schema(
            "interface A { attribute long x; attribute long y; };", name="x"
        )
        second = parse_schema(
            "interface A { attribute long y; attribute long x; };", name="y"
        )
        assert schemas_equal(first, second)

    def test_schema_name_irrelevant(self):
        first = parse_schema("interface A {};", name="one")
        second = parse_schema("interface A {};", name="two")
        assert schema_fingerprint(first) == schema_fingerprint(second)


class TestSensitivity:
    def test_attribute_type_matters(self):
        first = parse_schema("interface A { attribute long x; };", name="s")
        second = parse_schema("interface A { attribute short x; };", name="s")
        assert not schemas_equal(first, second)

    def test_attribute_size_matters(self):
        first = parse_schema("interface A { attribute string(3) x; };", name="s")
        second = parse_schema("interface A { attribute string(4) x; };", name="s")
        assert not schemas_equal(first, second)

    def test_extent_matters(self):
        first = parse_schema("interface A { extent xs; };", name="s")
        second = parse_schema("interface A {};", name="s")
        assert not schemas_equal(first, second)

    def test_supertype_matters(self):
        first = parse_schema("interface B {}; interface A : B {};", name="s")
        second = parse_schema("interface B {}; interface A {};", name="s")
        assert not schemas_equal(first, second)

    def test_relationship_cardinality_matters(self):
        first = parse_schema(
            """
            interface A { relationship set<B> bs inverse B::a; };
            interface B { relationship A a inverse A::bs; };
            """,
            name="s",
        )
        second = parse_schema(
            """
            interface A { relationship list<B> bs inverse B::a; };
            interface B { relationship A a inverse A::bs; };
            """,
            name="s",
        )
        assert not schemas_equal(first, second)

    def test_interface_fingerprint_includes_keys(self):
        first = parse_schema(
            "interface A { keys (x); attribute long x; };", name="s"
        ).get("A")
        second = parse_schema(
            "interface A { attribute long x; };", name="s"
        ).get("A")
        assert interface_fingerprint(first) != interface_fingerprint(second)
