"""Operation-sequence synthesis: derive a customization script by diff.

Given a shrink wrap schema and a desired custom schema, synthesise a
sequence of Appendix A operations transforming one into the other.  This
is the tool-side converse of the ACEDB case study: Section 4 argues that
the manually produced descendants "could have been created using our
technology"; :func:`synthesize_operations` produces such a script
mechanically from the two schemas, preferring targeted modify operations
(including MOVED-entry attribute/operation moves) over blunt delete+add
pairs.

The synthesizer *simulates as it plans*: every emitted operation is
immediately applied -- with propagation -- to a scratch copy of the
source schema, so operations whose validation depends on current values
(old key lists, old order-by lists, old sizes) are always emitted against
the true intermediate state, and interference from cascades (a type
deletion trimming an order-by list, an ISA re-wire dropping an inherited
key) is repaired by the final fix-up phases rather than guessed at.

:func:`repro.analysis.completeness.full_rebuild_script` is the naive
baseline (delete everything, add everything); the synthesis bench
compares the two on script length and reuse.
"""

from __future__ import annotations

from repro.analysis.diff import ChangeStatus, diff_schemas
from repro.knowledge.propagation import expand
from repro.model.errors import SchemaError
from repro.model.fingerprint import schemas_equal
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import CollectionType, ScalarType
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.base import OperationContext, SchemaOperation
from repro.ops.instance_of_ops import (
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
    ModifyInstanceOfCardinality,
    ModifyInstanceOfOrderBy,
)
from repro.ops.operation_ops import (
    AddOperation,
    DeleteOperation,
    ModifyOperation,
    ModifyOperationArgList,
    ModifyOperationExceptionsRaised,
    ModifyOperationReturnType,
)
from repro.ops.part_of_ops import (
    AddPartOfRelationship,
    DeletePartOfRelationship,
    ModifyPartOfCardinality,
    ModifyPartOfOrderBy,
)
from repro.ops.relationship_ops import (
    AddRelationship,
    DeleteRelationship,
    ModifyRelationshipCardinality,
    ModifyRelationshipOrderBy,
)
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
)

_ADD_END = {
    RelationshipKind.ASSOCIATION: AddRelationship,
    RelationshipKind.PART_OF: AddPartOfRelationship,
    RelationshipKind.INSTANCE_OF: AddInstanceOfRelationship,
}
_DELETE_END = {
    RelationshipKind.ASSOCIATION: DeleteRelationship,
    RelationshipKind.PART_OF: DeletePartOfRelationship,
    RelationshipKind.INSTANCE_OF: DeleteInstanceOfRelationship,
}
_CARDINALITY = {
    RelationshipKind.ASSOCIATION: ModifyRelationshipCardinality,
    RelationshipKind.PART_OF: ModifyPartOfCardinality,
    RelationshipKind.INSTANCE_OF: ModifyInstanceOfCardinality,
}
_ORDER_BY = {
    RelationshipKind.ASSOCIATION: ModifyRelationshipOrderBy,
    RelationshipKind.PART_OF: ModifyPartOfOrderBy,
    RelationshipKind.INSTANCE_OF: ModifyInstanceOfOrderBy,
}


class SynthesisError(SchemaError):
    """The synthesised script failed to reproduce the target schema."""


def synthesize_operations(
    source: Schema, target: Schema, verify: bool = True
) -> list[SchemaOperation]:
    """Synthesise a script turning *source* into *target*.

    The script is expressed at the requested-operation level; applying
    it through a workspace with propagation enabled yields a schema
    content-equal to *target* (checked when ``verify`` is set -- the
    check is cheap and the simulation makes failures unexpected, but the
    guarantee is part of the function's contract).
    """
    synthesizer = _Synthesizer(source, target)
    plan = synthesizer.build()
    if verify and not schemas_equal(synthesizer.scratch, target):
        raise SynthesisError(
            f"synthesised script does not reproduce {target.name!r} from "
            f"{source.name!r}"
        )
    return plan


class _Synthesizer:
    """Simulating builder: emit an operation, apply it, keep planning."""

    def __init__(self, source: Schema, target: Schema) -> None:
        self.source = source
        self.target = target
        self.scratch = source.copy("synthesis_scratch")
        self.context = OperationContext(reference=source)
        self.diff = diff_schemas(source, target)
        self.plan: list[SchemaOperation] = []

    def _emit(self, operation: SchemaOperation) -> None:
        for step in expand(self.scratch, operation, self.context):
            step.apply(self.scratch, self.context)
        self.plan.append(operation)

    def build(self) -> list[SchemaOperation]:
        self._add_new_types()
        self._delete_obsolete_isa_links()
        self._add_new_isa_links()
        self._emit_moves()
        self._reconcile_extents()
        self._reconcile_attributes()
        self._reconcile_operations()
        # Deleting obsolete types before touching relationships lets the
        # deletion cascade clear the ends that referenced them, freeing
        # their traversal-path names for re-use by new relationships.
        self._delete_removed_types()
        self._reconcile_relationships()
        self._fix_up_keys()
        self._fix_up_order_by()
        return self.plan

    # -- types and ISA ---------------------------------------------------

    def _surviving(self) -> list[str]:
        return [
            name for name in self.target.type_names() if name in self.scratch
        ]

    def _add_new_types(self) -> None:
        for name in self.target.type_names():
            if name not in self.scratch:
                self._emit(AddTypeDefinition(name))

    def _delete_obsolete_isa_links(self) -> None:
        # All removals across the schema first: re-wirings that reverse
        # an edge can never trip the cycle check this way.
        for name in self._surviving():
            if name not in self.source:
                continue
            target_supertypes = self.target.get(name).supertypes
            for supertype in list(self.scratch.get(name).supertypes):
                if supertype not in target_supertypes:
                    self._emit(DeleteSupertype(name, supertype))

    def _add_new_isa_links(self) -> None:
        for name in self.target.type_names():
            current = self.scratch.get(name).supertypes
            for supertype in self.target.get(name).supertypes:
                if supertype not in current:
                    self._emit(AddSupertype(name, supertype))

    # -- moves -----------------------------------------------------------

    def _emit_moves(self) -> None:
        """Claim at most one MOVED diff entry per (destination, member).

        A move is only claimed when its endpoints lie on one ISA path of
        the *source* hierarchy (the operation's semantic-stability rule)
        or involve a freshly added type, whose ISA links were just wired
        from the target; unclaimed entries fall back to delete + add in
        the later phases.
        """
        claimed: set[tuple[str, str, str]] = set()
        for entry in self.diff.of_status(ChangeStatus.MOVED):
            owner, _, member = entry.path.partition(".")
            destination = entry.moved_to
            assert destination is not None
            key = (entry.category, destination, member)
            if key in claimed:
                continue
            if entry.category not in ("attribute", "operation"):
                continue  # relationship moves are re-created, not moved
            if owner in self.source and destination in self.source:
                if not self.source.isa_related(owner, destination):
                    continue
            if owner not in self.scratch or destination not in self.scratch:
                continue
            members = (
                self.scratch.get(owner).attributes
                if entry.category == "attribute"
                else self.scratch.get(owner).operations
            )
            if member not in members:
                continue
            claimed.add(key)
            if entry.category == "attribute":
                self._emit(ModifyAttribute(owner, member, destination))
            else:
                self._emit(ModifyOperation(owner, member, destination))

    # -- simple members ----------------------------------------------------

    def _reconcile_extents(self) -> None:
        for name in self._surviving():
            old = self.scratch.get(name).extent
            new = self.target.get(name).extent
            if old == new:
                continue
            if old is None:
                self._emit(AddExtentName(name, new))
            elif new is None:
                self._emit(DeleteExtentName(name, old))
            else:
                self._emit(ModifyExtentName(name, old, new))

    def _reconcile_attributes(self) -> None:
        for name in self._surviving():
            scratch_attrs = self.scratch.get(name).attributes
            target_attrs = self.target.get(name).attributes
            for attr_name in list(scratch_attrs):
                if attr_name not in target_attrs:
                    self._emit(DeleteAttribute(name, attr_name))
            for attr_name, new_value in target_attrs.items():
                old_value = self.scratch.get(name).attributes.get(attr_name)
                if old_value is None:
                    self._emit(AddAttribute(name, new_value.type, attr_name))
                elif old_value != new_value:
                    for operation in _attribute_value_ops(
                        name, attr_name, old_value, new_value
                    ):
                        self._emit(operation)

    def _reconcile_operations(self) -> None:
        for name in self._surviving():
            scratch_ops = self.scratch.get(name).operations
            target_ops = self.target.get(name).operations
            for op_name in list(scratch_ops):
                if op_name not in target_ops:
                    self._emit(DeleteOperation(name, op_name))
            for op_name, new_value in target_ops.items():
                old_value = self.scratch.get(name).operations.get(op_name)
                if old_value is None:
                    self._emit(
                        AddOperation(
                            name, new_value.return_type, op_name,
                            new_value.parameters, new_value.exceptions,
                        )
                    )
                    continue
                if old_value.return_type != new_value.return_type:
                    self._emit(
                        ModifyOperationReturnType(
                            name, op_name,
                            old_value.return_type, new_value.return_type,
                        )
                    )
                if old_value.parameters != new_value.parameters:
                    self._emit(
                        ModifyOperationArgList(
                            name, op_name,
                            old_value.parameters, new_value.parameters,
                        )
                    )
                if old_value.exceptions != new_value.exceptions:
                    self._emit(
                        ModifyOperationExceptionsRaised(
                            name, op_name,
                            old_value.exceptions, new_value.exceptions,
                        )
                    )

    # -- relationships -----------------------------------------------------

    def _target_end(self, owner: str, end: RelationshipEnd) -> RelationshipEnd | None:
        """The compatible counterpart of *end* in the target, if any."""
        if owner not in self.target:
            return None
        counterpart = self.target.get(owner).relationships.get(end.name)
        if counterpart is None:
            return None
        compatible = (
            counterpart.kind is end.kind
            and counterpart.target_type == end.target_type
            and counterpart.inverse_type == end.inverse_type
            and counterpart.inverse_name == end.inverse_name
        )
        return counterpart if compatible else None

    def _reconcile_relationships(self) -> None:
        handled: set[frozenset[tuple[str, str]]] = set()
        # Deletions and reshapes over the scratch pairs.
        for owner, end in list(self.scratch.relationship_pairs()):
            pair = frozenset(
                {(owner, end.name), (end.inverse_type, end.inverse_name)}
            )
            if pair in handled:
                continue
            handled.add(pair)
            if owner not in self.target or end.target_type not in self.target:
                continue  # the type deletion cascade removes the pair
            counterpart = self._target_end(owner, end)
            inverse = self.scratch.find_inverse(owner, end)
            inverse_counterpart = (
                self.target.find_inverse(owner, counterpart)
                if counterpart is not None
                else None
            )
            if counterpart is None or inverse_counterpart is None:
                self._emit(_DELETE_END[end.kind](owner, end.name))
                continue
            self._reshape_end(owner, end, counterpart)
            if inverse is not None:
                self._reshape_end(
                    end.inverse_type, inverse, inverse_counterpart
                )
        # Additions over the target pairs.
        for owner, end in self.target.relationship_pairs():
            pair = frozenset(
                {(owner, end.name), (end.inverse_type, end.inverse_name)}
            )
            if pair in handled:
                continue
            handled.add(pair)
            self._emit(
                _ADD_END[end.kind](
                    owner, end.target, end.name,
                    end.inverse_type, end.inverse_name, end.order_by,
                )
            )
            inverse = self.target.find_inverse(owner, end)
            if inverse is None:
                continue
            created = self.scratch.get(end.inverse_type).relationships[
                inverse.name
            ]
            self._reshape_end(end.inverse_type, created, inverse)

    def _reshape_end(
        self, owner: str, current: RelationshipEnd, wanted: RelationshipEnd
    ) -> None:
        """Cardinality/order-by adjustments for one surviving end."""
        if current.target != wanted.target:
            if current.order_by and not isinstance(wanted.target, CollectionType):
                # Becoming to-one: the ordering must be dropped first.
                self._emit(
                    _ORDER_BY[current.kind](
                        owner, current.name, current.order_by, ()
                    )
                )
                current = self.scratch.get(owner).relationships[current.name]
            self._emit(
                _CARDINALITY[current.kind](
                    owner, current.name, current.target, wanted.target
                )
            )
            current = self.scratch.get(owner).relationships[current.name]
        if current.order_by != wanted.order_by:
            self._emit(
                _ORDER_BY[current.kind](
                    owner, current.name, current.order_by, wanted.order_by
                )
            )

    # -- deletions and fix-ups ----------------------------------------------

    def _delete_removed_types(self) -> None:
        for entry in self.diff.of_status(ChangeStatus.DELETED):
            if entry.category == "type" and entry.path in self.scratch:
                self._emit(DeleteTypeDefinition(entry.path))

    def _fix_up_keys(self) -> None:
        """Reconcile keys last: every supporting attribute now exists,
        and any cascade that dropped a still-wanted key is repaired."""
        for name in self.target.type_names():
            scratch_keys = list(self.scratch.get(name).keys)
            target_keys = self.target.get(name).keys
            for key in scratch_keys:
                if key not in target_keys:
                    self._emit(DeleteKeyList(name, key))
            for key in target_keys:
                if key not in self.scratch.get(name).keys:
                    self._emit(AddKeyList(name, tuple(key)))

    def _fix_up_order_by(self) -> None:
        """Repair order-by lists trimmed by late cascades."""
        for owner, end in list(self.scratch.relationship_pairs()):
            if owner not in self.target:
                continue
            wanted = self.target.get(owner).relationships.get(end.name)
            if wanted is None:
                continue
            if end.order_by != wanted.order_by and end.target == wanted.target:
                self._emit(
                    _ORDER_BY[end.kind](
                        owner, end.name, end.order_by, wanted.order_by
                    )
                )


def _attribute_value_ops(
    name: str, attr_name: str, old_value, new_value
) -> list[SchemaOperation]:
    """Targeted modify operations for a changed attribute value."""
    both_scalar_same_base = (
        isinstance(old_value.type, ScalarType)
        and isinstance(new_value.type, ScalarType)
        and old_value.type.name == new_value.type.name
    )
    if both_scalar_same_base:
        return [
            ModifyAttributeSize(
                name, attr_name, old_value.type.size, new_value.type.size
            )
        ]
    return [
        ModifyAttributeType(name, attr_name, old_value.type, new_value.type)
    ]


