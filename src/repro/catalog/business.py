"""A business-objects shrink wrap schema (the Section 5 application).

The paper closes with an application of shrink wrap schemas to
interoperation: "Work in progress [OMG BOMSIG] is attempting to
establish a Business Object Model to promote the conduct of business
over the network.  In general, systems built from the same shrink wrap
schema (i.e., common objects) can be integrated for information
interchange because the semantically identical constructs have already
been identified."

This schema is a plausible such business object model -- parties,
orders, products, invoices -- exercising every construct of the extended
model: a generalization hierarchy of parties, an order/line-item parts
explosion, and a product/catalogue-item instance-of link.
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.odl.parser import parse_schema

BUSINESS_ODL = """
// A Business Object Model shrink wrap schema (Section 5's application).

interface Party {
    extent parties;
    keys (party_id);
    attribute long party_id;
    attribute string(60) name;
    string(60) display_name();
};

interface Person : Party {
    attribute date born;
};

interface Organization : Party {
    attribute string(20) registration_number;
    relationship set<Person> contacts inverse Person::contact_for;
};

interface Customer : Party {
    attribute string(10) rating;
    relationship set<Order> places inverse Order::placed_by order_by (number);
};

interface Supplier : Organization {
    relationship set<Product> supplies inverse Product::supplied_by;
};

interface Order {
    extent orders;
    keys (number);
    attribute string(12) number;
    attribute date placed_on;
    attribute string(10) status;
    relationship Customer placed_by inverse Customer::places;
    part_of relationship set<Line_Item> lines inverse Line_Item::line_of;
    relationship Invoice billed_by inverse Invoice::bills;
    float total();
};

interface Line_Item {
    attribute short quantity;
    attribute float unit_price;
    part_of relationship Order line_of inverse Order::lines;
    relationship Product item inverse Product::ordered_in;
};

interface Product {
    extent products;
    keys (sku);
    attribute string(16) sku;
    attribute string(60) description;
    relationship Supplier supplied_by inverse Supplier::supplies;
    relationship set<Line_Item> ordered_in inverse Line_Item::item;
    instance_of relationship set<Catalogue_Item> listings
        inverse Catalogue_Item::listing_of;
};

interface Catalogue_Item {
    attribute string(12) catalogue_code;
    attribute float list_price;
    attribute date valid_from;
    instance_of relationship Product listing_of inverse Product::listings;
};

interface Invoice {
    extent invoices;
    keys (invoice_number);
    attribute string(12) invoice_number;
    attribute date issued_on;
    attribute float amount;
    relationship Order bills inverse Order::billed_by;
};
"""

def business_schema(name: str = "business_objects") -> Schema:
    """Parse and return the business-objects shrink wrap schema."""
    schema = parse_schema(BUSINESS_ODL, name=name)
    # The Person::contact_for inverse end, declared programmatically to
    # show the model API beside the ODL surface.
    from repro.model.relationships import association
    from repro.model.types import named

    person = schema.get("Person")
    if "contact_for" not in person.relationships:
        person.add_relationship(
            association(
                "contact_for", named("Organization"),
                "Organization", "contacts",
            )
        )
    schema.validate()
    return schema
