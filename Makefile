PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint lint-json bench bench-smoke fuzz fuzz-smoke

## tier-1 suite (unit + integration under tests/)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## static checks: the contract-lint framework (spine emission, CoW
## barriers, compiled-plan purity, effect signatures, read scopes,
## reference-spec independence, instance-impact honesty, silent-write
## detection -- see DESIGN.md 5k) always runs; ruff runs when installed
## (the sandbox image ships without it) and is mandatory when
## REPRO_REQUIRE_RUFF=1 (CI sets it, so a broken ruff install fails
## loudly there instead of skipping)
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks tools; \
	elif [ -n "$$REPRO_REQUIRE_RUFF" ]; then \
		echo "lint: ruff required (REPRO_REQUIRE_RUFF) but not installed"; \
		exit 1; \
	else \
		echo "lint: ruff not installed; skipping style pass"; \
	fi

## contract-lint run with the machine-readable report CI archives
lint-json:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.lint --json \
		--output lint-report.json

## full benchmark sweep; reports land in benchmarks/reports/
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## fast scaling regression tripwire (reduced sizes, relaxed floors)
bench-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_index_scaling.py \
		benchmarks/test_bench_validation.py \
		benchmarks/test_bench_spine.py \
		benchmarks/test_bench_plan.py \
		benchmarks/test_bench_compact.py \
		benchmarks/test_bench_columnar.py \
		benchmarks/test_bench_cow.py -q

## differential fuzzing soak: every invariant over catalog + generated
## schemas plus the large-schema profile (1k-10k types, deep ISA chains,
## wide hubs, O(changed) scoped sweeps), seed-sharded over one worker
## per core, shrinking any failure to a minimal pytest reproducer
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.verify --seeds 40 --steps 200 \
		--large-seeds 4 --jobs auto

## ~70s fuzzing tripwire for CI (fixed seeds, deterministic); carries
## witness populations at a cheap cadence so reproducers include data
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.verify --seeds 20 --steps 200 \
		--check-every 3 --with-populations
