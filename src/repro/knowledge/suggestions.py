"""Repair suggestions: from consistency findings to candidate operations.

The paper's future work points at Constraint Analysis (Urban &
Delcambre) being "used in the consistency check to suggest the
operations that need to be altered to enforce semantic constraints"
(Section 5).  This module implements that suggestion step for the
structural and design-quality rules: every finding is paired with one or
more candidate repair operations, expressed in the Appendix A operation
language so the designer can apply a suggestion verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema

_DELETE_END_NAME = {
    RelationshipKind.ASSOCIATION: "delete_relationship",
    RelationshipKind.PART_OF: "delete_part_of_relationship",
    RelationshipKind.INSTANCE_OF: "delete_instance_of_relationship",
}
_ORDER_BY_NAME = {
    RelationshipKind.ASSOCIATION: "modify_relationship_order_by",
    RelationshipKind.PART_OF: "modify_part_of_order_by",
    RelationshipKind.INSTANCE_OF: "modify_instance_of_order_by",
}
_CARDINALITY_NAME = {
    RelationshipKind.ASSOCIATION: "modify_relationship_cardinality",
    RelationshipKind.PART_OF: "modify_part_of_cardinality",
    RelationshipKind.INSTANCE_OF: "modify_instance_of_cardinality",
}


@dataclass(frozen=True, slots=True)
class Suggestion:
    """One candidate repair: a finding, an operation, and the why."""

    rule: str
    location: str
    operation_text: str
    rationale: str

    def __str__(self) -> str:
        return (
            f"{self.rule} at {self.location}: {self.operation_text}"
            f"  -- {self.rationale}"
        )


def _render_list(names: tuple[str, ...]) -> str:
    return "(" + ", ".join(names) + ")"


def suggest_repairs(schema: Schema) -> list[Suggestion]:
    """Candidate repair operations for every finding on *schema*.

    Suggestions are advisory: several alternatives may be offered for
    one finding (e.g. add the missing type *or* drop the construct that
    references it), and applying one usually obsoletes its siblings.
    """
    suggestions: list[Suggestion] = []
    rules = {issue.rule for issue in schema.validation.validate()}
    builders = {
        "dangling-type": _suggest_for_dangling_types,
        "inverse-missing": _suggest_for_broken_inverses,
        "inverse-mismatch": _suggest_for_broken_inverses,
        "kind-mismatch": _suggest_for_broken_inverses,
        "cardinality-role": _suggest_for_cardinality_roles,
        "isa-cycle": _suggest_for_isa_cycles,
        "key-unknown": _suggest_for_unknown_keys,
        "order-by-unknown": _suggest_for_unknown_order_by,
        "multi-root-hierarchy": _suggest_for_multi_roots,
    }
    seen: set[tuple[str, str, str]] = set()
    for rule, builder in builders.items():
        if rule not in rules:
            continue
        for suggestion in builder(schema):
            key = (suggestion.rule, suggestion.location,
                   suggestion.operation_text)
            if key not in seen:
                seen.add(key)
                suggestions.append(suggestion)
    return suggestions


def _suggest_for_dangling_types(schema: Schema):
    missing: dict[str, list[tuple[str, str]]] = {}
    for interface in schema:
        for name in sorted(interface.referenced_type_names()):
            if name not in schema:
                missing.setdefault(name, []).append(
                    (interface.name, "referenced_type")
                )
    for name, users in missing.items():
        location = ", ".join(sorted({owner for owner, _ in users}))
        yield Suggestion(
            "dangling-type", location,
            f"add_type_definition({name})",
            f"define the missing type {name!r} that "
            f"{location} reference(s)",
        )
        for owner, _ in users:
            interface = schema.get(owner)
            if name in interface.supertypes:
                yield Suggestion(
                    "dangling-type", owner,
                    f"delete_supertype({owner}, {name})",
                    "or drop the ISA link to the undefined type",
                )
            for attribute in interface.attributes.values():
                from repro.model.types import referenced_interfaces

                if name in referenced_interfaces(attribute.type):
                    yield Suggestion(
                        "dangling-type", f"{owner}.{attribute.name}",
                        f"delete_attribute({owner}, {attribute.name})",
                        "or drop the attribute typed with the undefined type",
                    )


def _suggest_for_broken_inverses(schema: Schema):
    for owner, end in schema.relationship_pairs():
        if schema.find_inverse(owner, end) is not None:
            continue
        yield Suggestion(
            "inverse-missing", f"{owner}.{end.name}",
            f"{_DELETE_END_NAME[end.kind]}({owner}, {end.name})",
            "drop the half-declared relationship; re-add it through "
            "add_relationship, which keeps both ends paired",
        )


def _suggest_for_cardinality_roles(schema: Schema):
    for owner, end in schema.relationship_pairs():
        if end.kind is RelationshipKind.ASSOCIATION:
            continue
        inverse = schema.find_inverse(owner, end)
        if inverse is None or end.is_to_many != inverse.is_to_many:
            continue
        if end.is_to_many:
            # Both ends to-many: flatten the lexically later end.
            target = end.target_type
            yield Suggestion(
                "cardinality-role", f"{owner}.{end.name}",
                f"{_CARDINALITY_NAME[end.kind]}({end.inverse_type}, "
                f"{end.inverse_name}, {inverse.target}, {owner})",
                f"a {end.kind.value} relationship is implicitly 1:N; make "
                f"the {target}-side end to-one",
            )
        else:
            yield Suggestion(
                "cardinality-role", f"{owner}.{end.name}",
                f"{_CARDINALITY_NAME[end.kind]}({owner}, {end.name}, "
                f"{end.target}, set<{end.target_type}>)",
                f"a {end.kind.value} relationship is implicitly 1:N; make "
                "one end to-many",
            )


def _suggest_for_isa_cycles(schema: Schema):
    for interface in schema:
        for supertype in interface.supertypes:
            if supertype in schema and interface.name in schema.ancestors(
                supertype
            ):
                yield Suggestion(
                    "isa-cycle", interface.name,
                    f"delete_supertype({interface.name}, {supertype})",
                    "break the generalization cycle by removing one ISA link",
                )


def _suggest_for_unknown_keys(schema: Schema):
    for interface in schema:
        available = set(interface.attributes)
        available.update(schema.inherited_attributes(interface.name))
        for key in interface.keys:
            unknown = [name for name in key if name not in available]
            if unknown:
                yield Suggestion(
                    "key-unknown", f"{interface.name}.keys",
                    f"delete_key_list({interface.name}, {_render_list(key)})",
                    f"the key names unknown attribute(s) "
                    f"{', '.join(unknown)}",
                )
                for name in unknown:
                    yield Suggestion(
                        "key-unknown", f"{interface.name}.keys",
                        f"add_attribute({interface.name}, string(20), {name})",
                        "or define the attribute the key expects",
                    )


def _suggest_for_unknown_order_by(schema: Schema):
    for owner, end in schema.relationship_pairs():
        if not end.order_by or end.target_type not in schema:
            continue
        target = schema.get(end.target_type)
        available = set(target.attributes)
        available.update(schema.inherited_attributes(target.name))
        unknown = [name for name in end.order_by if name not in available]
        if unknown:
            kept = tuple(n for n in end.order_by if n in available)
            yield Suggestion(
                "order-by-unknown", f"{owner}.{end.name}",
                f"{_ORDER_BY_NAME[end.kind]}({owner}, {end.name}, "
                f"{_render_list(end.order_by)}, {_render_list(kept)})",
                f"drop the unknown attribute(s) {', '.join(unknown)} from "
                "the ordering",
            )


def _suggest_for_multi_roots(schema: Schema):
    # Reuse the validator's component walk through its reported roots.
    from repro.model.validation import check_multi_root_components

    for issue in check_multi_root_components(schema):
        roots = issue.message.split("(")[1].split(")")[0].split(", ")
        name = "_".join(["Abstract"] + roots[:2])
        yield Suggestion(
            "multi-root-hierarchy", issue.location,
            f"introduce_abstract_supertype({name}, {_render_list(tuple(roots))})",
            "the paper's single-root transformation: an abstract "
            "supertype over the component's roots (composite operation)",
        )
