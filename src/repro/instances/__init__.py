"""The instance layer: populations of objects conforming to a schema.

A schema describes which *populations* -- finite sets of objects with
attribute values, relationship links, and part-of / instance-of
membership -- it admits.  This package makes that notion concrete:

* :class:`~repro.instances.population.Population` /
  :class:`~repro.instances.population.InstanceObject` model one
  candidate population;
* :func:`~repro.instances.check.check_population` is the admission
  spec: it checks a population against a schema's cardinalities,
  inverse pairing, keys, order-bys, ISA extent containment, and
  part-of / instance-of semantics, returning one
  :class:`~repro.instances.population.PopulationIssue` per violation.

The significant-example generator (:mod:`repro.examples`) builds on
this layer; ``check_population`` is the specification it is filtered
against.
"""

from repro.instances.check import available_relationships, check_population
from repro.instances.population import (
    InstanceObject,
    Population,
    PopulationIssue,
)

__all__ = [
    "InstanceObject",
    "Population",
    "PopulationIssue",
    "available_relationships",
    "check_population",
]
