"""The mutation spine's costs and payoffs (ISSUE 4).

Three measurements, all merged into the bench trajectory JSON:

* **Per-op spine overhead** on the PR 3 validation workload: every
  mutator now lands a :class:`~repro.model.mutation.MutationRecord` on
  the schema's log and notifies the subscribers (dirty journal).  The
  bench replays the same seeded operation stream as
  ``test_bench_validation`` timing the full apply+validate hot loop,
  counts the records the stream emitted, and prices them with the
  median per-emit cost measured on a log with the same subscriber
  fan-out.  Floor (ISSUE 4): spine cost <= 10% of the per-op loop.
* **Fork vs deep-copy** at 200 types: :meth:`Schema.fork` is a shallow
  structural copy plus an O(1) lineage link; ``copy.deepcopy`` is the
  pre-spine way to branch.  Floor (ISSUE 4): >= 10x at 200 types.
* **Log-diff vs structural diff**: :func:`~repro.analysis.diff.
  schema_diff` walks only the types the divergence suffixes name;
  :func:`~repro.analysis.diff.diff_schemas` walks everything.  The two
  changed sets are asserted equal -- the bench doubles as the
  record-level diff's differential check.
"""

from __future__ import annotations

import copy
import os
import statistics
import time

from repro.analysis.diff import diff_schemas, schema_diff
from repro.knowledge.propagation import expand
from repro.model.attributes import Attribute
from repro.model.mutation import Aspect, DirtyJournal, MutationLog
from repro.model.schema import Schema
from repro.model.types import scalar
from repro.ops.base import OperationContext
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
FORK_SIZE = 60 if SMOKE else 200
#: the ISSUE floors are enforced only at full scale
STRICT = not SMOKE
OPERATIONS = 20 if SMOKE else 80
REPEATS = 3 if SMOKE else 7


def _schema(size: int) -> Schema:
    spec = WorkloadSpec(
        types=size,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=max(4, size // 4),
        instance_of_chain=max(3, size // 8),
    )
    return generate_schema(spec)


def _median_time(action, repeats: int = REPEATS) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _per_emit_cost(subscriber_count: int) -> float:
    """Median seconds per ``MutationLog.emit`` at the live fan-out."""
    log = MutationLog()
    for _ in range(subscriber_count):
        log.subscribe(DirtyJournal().observe)
    aspects = frozenset({Aspect.ATTRS})
    rounds = 2_000 if SMOKE else 10_000

    def burst() -> None:
        for index in range(rounds):
            log.emit(
                "add_attribute",
                interface="T",
                aspects=aspects,
                payload={"attribute": index},
            )

    return _median_time(burst) / rounds


def test_bench_spine_overhead_per_op(report, record_bench):
    """Record-emission cost as a fraction of the validation hot loop."""
    size = FORK_SIZE
    reference = _schema(size)
    operations = generate_operations(reference, OPERATIONS, seed=11)
    schema = reference.copy("spined")
    context = OperationContext(reference=reference)
    schema.validation.validate()

    records_before = len(schema.log)
    loop_time = 0.0
    steps = 0
    for operation in operations:
        plan = expand(schema, operation, context)
        for step in plan:
            start = time.perf_counter()
            step.apply(schema, context)
            names, aspects = step.validation_scope()
            schema.note_validation_scope(names, aspects)
            schema.validation.validate()
            loop_time += time.perf_counter() - start
            steps += 1
    records = len(schema.log) - records_before

    per_emit = _per_emit_cost(schema.log.subscriber_count)
    spine_time = records * per_emit
    overhead = spine_time / loop_time if loop_time else 0.0

    record_bench(
        f"spine_overhead_fraction[{size}]", overhead, types=size
    )
    record_bench("spine_emit_seconds", per_emit)
    lines = [
        "mutation-spine overhead on the per-op validation loop",
        f"mode: {'smoke' if SMOKE else 'full'}; {steps} applied steps, "
        f"{records} records emitted ({records / steps:.1f}/step)",
        "",
        f"hot loop total:   {loop_time * 1e3:9.3f}ms "
        f"({loop_time / steps * 1e6:8.1f}us/step)",
        f"per-emit cost:    {per_emit * 1e6:9.3f}us "
        f"(at fan-out {schema.log.subscriber_count})",
        f"spine total:      {spine_time * 1e3:9.3f}ms",
        f"overhead:         {overhead * 100:9.2f}% (floor: <= 10%)",
    ]
    report("spine_overhead", "\n".join(lines))
    assert overhead <= 0.10, (
        f"spine emission is {overhead * 100:.1f}% of the per-op loop "
        "(<= 10% required)"
    )


def test_bench_fork_vs_deepcopy(report, record_bench):
    """Schema.fork vs copy.deepcopy at shrink-wrap scale."""
    schema = _schema(FORK_SIZE)
    fork_time = _median_time(lambda: schema.fork("branch"))
    deep_time = _median_time(lambda: copy.deepcopy(schema))
    speedup = deep_time / fork_time if fork_time else float("inf")

    record_bench(f"fork[{FORK_SIZE}]", fork_time, types=FORK_SIZE)
    record_bench(f"deepcopy[{FORK_SIZE}]", deep_time, types=FORK_SIZE)
    lines = [
        "workspace branching: Schema.fork vs copy.deepcopy",
        f"mode: {'smoke' if SMOKE else 'full'}; {FORK_SIZE} types",
        "",
        f"fork:     {fork_time * 1e3:9.3f}ms",
        f"deepcopy: {deep_time * 1e3:9.3f}ms",
        f"speedup:  {speedup:9.1f}x (floor at 200 types: >= 10x)",
    ]
    report("fork_vs_deepcopy", "\n".join(lines))
    if STRICT:
        assert speedup >= 10.0, (
            f"fork at {FORK_SIZE} types: only {speedup:.1f}x over deepcopy "
            "(>= 10x required)"
        )
    else:
        assert speedup >= 2.0, (
            f"fork no longer beats deepcopy in smoke mode ({speedup:.1f}x)"
        )


def test_bench_log_diff_vs_structural(report, record_bench):
    """Record-level schema_diff vs the full structural walk."""
    schema = _schema(FORK_SIZE)
    branch = schema.fork("branch")
    touched = branch.type_names()[:5]
    for position, name in enumerate(touched):
        branch.get(name).add_attribute(
            Attribute(f"spine_extra_{position}", scalar("long"))
        )

    def changed_keys(diff):
        return {(e.category, e.path, e.status.value) for e in diff.changed()}

    assert changed_keys(schema_diff(schema, branch)) == changed_keys(
        diff_schemas(schema, branch)
    )

    fast_time = _median_time(lambda: schema_diff(schema, branch))
    slow_time = _median_time(lambda: diff_schemas(schema, branch))
    speedup = slow_time / fast_time if fast_time else float("inf")

    record_bench(f"log_diff[{FORK_SIZE}]", fast_time, types=FORK_SIZE)
    record_bench(
        f"structural_diff[{FORK_SIZE}]", slow_time, types=FORK_SIZE
    )
    lines = [
        "branch diffing: record-level schema_diff vs structural walk",
        f"mode: {'smoke' if SMOKE else 'full'}; {FORK_SIZE} types, "
        f"{len(touched)} touched",
        "",
        f"schema_diff (log):     {fast_time * 1e3:9.3f}ms",
        f"diff_schemas (walk):   {slow_time * 1e3:9.3f}ms",
        f"speedup:               {speedup:9.1f}x",
    ]
    report("log_diff_vs_structural", "\n".join(lines))
    # The restricted walk must not lose to the full one.
    assert speedup >= 1.0, (
        f"schema_diff is slower than the structural walk ({speedup:.2f}x)"
    )
