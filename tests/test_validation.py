"""Unit tests for structural validation (repro.model.validation)."""

import pytest

from repro.model.errors import ValidationError
from repro.model.validation import validate_schema
from repro.odl.parser import parse_schema


def issues_of(schema, rule=None):
    issues = validate_schema(schema)
    if rule is None:
        return issues
    return [issue for issue in issues if issue.rule == rule]


def rules_of(schema):
    return {issue.rule for issue in validate_schema(schema)}


class TestDanglingTypes:
    def test_clean_schema_has_no_issues(self, small):
        assert validate_schema(small) == []

    def test_dangling_supertype(self):
        schema = parse_schema("interface A : Ghost {};", name="s")
        assert "dangling-type" in rules_of(schema)

    def test_dangling_attribute_type(self):
        schema = parse_schema("interface A { attribute Ghost g; };", name="s")
        assert "dangling-type" in rules_of(schema)

    def test_dangling_relationship_target(self):
        schema = parse_schema(
            "interface A { relationship Ghost g inverse Ghost::h; };", name="s"
        )
        issues = issues_of(schema, "dangling-type")
        assert len(issues) == 2  # target and inverse owner

    def test_dangling_operation_signature(self):
        schema = parse_schema("interface A { Ghost f(); };", name="s")
        assert "dangling-type" in rules_of(schema)


class TestInverses:
    def test_missing_inverse(self):
        schema = parse_schema(
            """
            interface A { relationship B to_b inverse B::to_a; };
            interface B {};
            """,
            name="s",
        )
        assert "inverse-missing" in rules_of(schema)

    def test_mismatched_inverse_target(self):
        schema = parse_schema(
            """
            interface A { relationship B to_b inverse B::to_a; };
            interface B { relationship C to_a inverse C::x; };
            interface C { relationship B x inverse B::to_a; };
            """,
            name="s",
        )
        assert "inverse-mismatch" in rules_of(schema)

    def test_kind_mismatch(self):
        schema = parse_schema(
            """
            interface A { part_of relationship set<B> parts inverse B::whole; };
            interface B { relationship A whole inverse A::parts; };
            """,
            name="s",
        )
        assert "kind-mismatch" in rules_of(schema)

    def test_inverse_owner_differs_from_target(self):
        schema = parse_schema(
            """
            interface A { relationship B to_b inverse C::back; };
            interface B {};
            interface C { relationship A back inverse A::to_b; };
            """,
            name="s",
        )
        assert "inverse-mismatch" in rules_of(schema)


class TestCardinalityRoles:
    def test_part_of_both_ends_to_many(self):
        schema = parse_schema(
            """
            interface A { part_of relationship set<B> parts inverse B::wholes; };
            interface B { part_of relationship set<A> wholes inverse A::parts; };
            """,
            name="s",
        )
        assert "cardinality-role" in rules_of(schema)

    def test_instance_of_both_ends_to_one(self):
        schema = parse_schema(
            """
            interface A { instance_of relationship B inst inverse B::gen; };
            interface B { instance_of relationship A gen inverse A::inst; };
            """,
            name="s",
        )
        assert "cardinality-role" in rules_of(schema)

    def test_association_may_be_many_to_many(self):
        schema = parse_schema(
            """
            interface A { relationship set<B> bs inverse B::as_; };
            interface B { relationship set<A> as_ inverse A::bs; };
            """,
            name="s",
        )
        assert "cardinality-role" not in rules_of(schema)


class TestCycles:
    def test_isa_cycle(self):
        schema = parse_schema(
            "interface A : B {}; interface B : A {};", name="s"
        )
        assert "isa-cycle" in rules_of(schema)

    def test_part_of_cycle(self):
        schema = parse_schema(
            """
            interface A {
              part_of relationship set<B> parts inverse B::whole;
              part_of relationship A2 whole2 inverse A2::parts2;
            };
            interface B {
              part_of relationship A whole inverse A::parts;
              part_of relationship set<A2> parts2x inverse A2::whole2x;
            };
            interface A2 {
              part_of relationship set<A> parts2 inverse A::whole2;
              part_of relationship B whole2x inverse B::parts2x;
            };
            """,
            name="s",
        )
        assert "part-of-cycle" in rules_of(schema)

    def test_instance_of_cycle(self):
        schema = parse_schema(
            """
            interface A {
              instance_of relationship set<B> insts inverse B::gen;
              instance_of relationship B gen2 inverse B::insts2;
            };
            interface B {
              instance_of relationship A gen inverse A::insts;
              instance_of relationship set<A> insts2 inverse A::gen2;
            };
            """,
            name="s",
        )
        assert "instance-of-cycle" in rules_of(schema)


class TestKeysAndOrderBy:
    def test_key_on_unknown_attribute(self):
        schema = parse_schema(
            "interface A { keys (ghost); attribute long id; };", name="s"
        )
        assert "key-unknown" in rules_of(schema)

    def test_key_on_inherited_attribute_is_fine(self):
        schema = parse_schema(
            """
            interface A { attribute long id; };
            interface B : A { keys (id); };
            """,
            name="s",
        )
        assert "key-unknown" not in rules_of(schema)

    def test_order_by_unknown_attribute(self):
        schema = parse_schema(
            """
            interface A { relationship set<B> bs inverse B::a order_by (ghost); };
            interface B { relationship A a inverse A::bs; };
            """,
            name="s",
        )
        assert "order-by-unknown" in rules_of(schema)

    def test_order_by_inherited_attribute_is_fine(self):
        schema = parse_schema(
            """
            interface Base { attribute string(5) name; };
            interface B : Base { relationship A a inverse A::bs; };
            interface A { relationship set<B> bs inverse B::a order_by (name); };
            """,
            name="s",
        )
        assert "order-by-unknown" not in rules_of(schema)


class TestMultiRoot:
    def test_multi_root_component_warns(self):
        schema = parse_schema(
            """
            interface A {};
            interface B {};
            interface C : A, B {};
            """,
            name="s",
        )
        issues = issues_of(schema, "multi-root-hierarchy")
        assert len(issues) == 1
        assert issues[0].severity == "warning"

    def test_single_root_component_clean(self, university):
        assert "multi-root-hierarchy" not in rules_of(university)

    def test_warning_does_not_fail_validation(self):
        schema = parse_schema(
            """
            interface A {};
            interface B {};
            interface C : A, B {};
            """,
            name="s",
        )
        schema.validate()  # must not raise: only warnings present


class TestRaiseBehaviour:
    def test_validate_raises_with_issue_list(self):
        schema = parse_schema("interface A : Ghost {};", name="s")
        with pytest.raises(ValidationError) as info:
            validate_schema(schema, raise_on_error=True)
        assert info.value.issues
        assert all(i.severity == "error" for i in info.value.issues)

    def test_schema_validate_method(self):
        schema = parse_schema("interface A : Ghost {};", name="s")
        with pytest.raises(ValidationError):
            schema.validate()
