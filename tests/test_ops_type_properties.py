"""Unit tests for supertype / extent / key operations."""

import pytest

from repro.model.fingerprint import schema_fingerprint
from repro.odl.parser import parse_schema
from repro.ops.base import ConstraintViolation
from repro.ops.relationship_ops import ModifyRelationshipOrderBy
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
    ModifyKeyList,
    ModifySupertype,
)


class TestSupertypeOps:
    def test_add(self, small):
        AddSupertype("Department", "Person").apply(small)
        assert "Person" in small.get("Department").supertypes

    def test_add_duplicate_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddSupertype("Employee", "Person").apply(small)

    def test_add_unknown_supertype_rejected(self, small):
        from repro.model.errors import UnknownTypeError

        with pytest.raises(UnknownTypeError):
            AddSupertype("Employee", "Ghost").apply(small)

    def test_add_self_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddSupertype("Person", "Person").apply(small)

    def test_add_cycle_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddSupertype("Person", "Employee").apply(small)

    def test_add_undo(self, small):
        before = schema_fingerprint(small)
        undo = AddSupertype("Department", "Person").apply(small)
        undo()
        assert schema_fingerprint(small) == before

    def test_delete_bare_refuses_when_order_by_would_strand(self, small):
        # Department.staff orders by 'name', which Employee only sees
        # through the Person ISA link: the bare delete must refuse
        # (closure), and succeeds once the order-by is cleared.
        with pytest.raises(ConstraintViolation):
            DeleteSupertype("Employee", "Person").apply(small)
        ModifyRelationshipOrderBy(
            "Department", "staff", ("name",), ()
        ).apply(small)
        DeleteSupertype("Employee", "Person").apply(small)
        assert small.get("Employee").supertypes == []

    def test_delete_via_propagation(self, small):
        from repro.knowledge.propagation import expand
        from repro.ops.base import OperationContext

        operation = DeleteSupertype("Employee", "Person")
        plan = expand(small, operation, OperationContext())
        assert len(plan) > 1  # the stranded order-by is cascaded away
        for step in plan:
            step.apply(small)
        assert small.get("Employee").supertypes == []
        small.validate()

    def test_delete_missing_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            DeleteSupertype("Person", "Employee").apply(small)

    def test_delete_undo_restores_position(self):
        schema = parse_schema(
            "interface A {}; interface B {}; interface C : A, B {};", name="s"
        )
        undo = DeleteSupertype("C", "A").apply(schema)
        undo()
        assert schema.get("C").supertypes == ["A", "B"]

    def test_modify_rewires(self, small):
        ModifyRelationshipOrderBy(
            "Department", "staff", ("name",), ()
        ).apply(small)
        ModifySupertype("Employee", ("Person",), ()).apply(small)
        assert small.get("Employee").supertypes == []

    def test_modify_bare_refuses_when_order_by_would_strand(self, small):
        with pytest.raises(ConstraintViolation):
            ModifySupertype("Employee", ("Person",), ()).apply(small)

    def test_modify_requires_current_list(self, small):
        with pytest.raises(ConstraintViolation):
            ModifySupertype("Employee", ("Ghost",), ()).apply(small)

    def test_modify_rejects_duplicate_new_list(self, small):
        with pytest.raises(ConstraintViolation):
            ModifySupertype(
                "Employee", ("Person",), ("Person", "Person")
            ).apply(small)

    def test_modify_rejects_cycle(self, small):
        with pytest.raises(ConstraintViolation):
            ModifySupertype("Person", (), ("Employee",)).apply(small)

    def test_modify_undo(self, small):
        ModifyRelationshipOrderBy(
            "Department", "staff", ("name",), ()
        ).apply(small)
        before = schema_fingerprint(small)
        undo = ModifySupertype("Employee", ("Person",), ()).apply(small)
        undo()
        assert schema_fingerprint(small) == before

    def test_text_round_trip(self):
        operation = ModifySupertype("A", ("B", "C"), ("D",))
        assert operation.to_text() == "modify_supertype(A, (B, C), (D))"


class TestExtentOps:
    def test_add_requires_absent_extent(self, small):
        with pytest.raises(ConstraintViolation):
            AddExtentName("Person", "other").apply(small)

    def test_add(self, small):
        AddExtentName("Employee", "employees").apply(small)
        assert small.get("Employee").extent == "employees"

    def test_add_rejects_duplicate_extent_name(self, small):
        with pytest.raises(ConstraintViolation):
            AddExtentName("Employee", "people").apply(small)

    def test_delete_checks_name(self, small):
        with pytest.raises(ConstraintViolation):
            DeleteExtentName("Person", "wrong").apply(small)

    def test_delete(self, small):
        DeleteExtentName("Person", "people").apply(small)
        assert small.get("Person").extent is None

    def test_modify(self, small):
        ModifyExtentName("Person", "people", "persons").apply(small)
        assert small.get("Person").extent == "persons"

    def test_modify_rejects_taken_name(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyExtentName("Person", "people", "departments").apply(small)

    def test_extent_undo(self, small):
        before = schema_fingerprint(small)
        undo = ModifyExtentName("Person", "people", "persons").apply(small)
        undo()
        assert schema_fingerprint(small) == before


class TestKeyOps:
    def test_add(self, small):
        AddKeyList("Person", ("name",)).apply(small)
        assert ("name",) in small.get("Person").keys

    def test_add_inherited_attribute_key(self, small):
        AddKeyList("Employee", ("id",)).apply(small)
        assert ("id",) in small.get("Employee").keys

    def test_add_unknown_attribute_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddKeyList("Person", ("ghost",)).apply(small)

    def test_add_duplicate_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddKeyList("Person", ("id",)).apply(small)

    def test_add_empty_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddKeyList("Person", ()).apply(small)

    def test_delete(self, small):
        DeleteKeyList("Person", ("id",)).apply(small)
        assert small.get("Person").keys == []

    def test_delete_missing_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            DeleteKeyList("Person", ("name",)).apply(small)

    def test_modify_in_place(self, small):
        ModifyKeyList("Person", ("id",), ("id", "name")).apply(small)
        assert small.get("Person").keys == [("id", "name")]

    def test_modify_rejects_unknown_attribute(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyKeyList("Person", ("id",), ("ghost",)).apply(small)

    def test_key_undo(self, small):
        before = schema_fingerprint(small)
        undo = ModifyKeyList("Person", ("id",), ("name",)).apply(small)
        undo()
        assert schema_fingerprint(small) == before
