"""Instance-of relationship operations.

Mirrors :mod:`repro.ops.part_of_ops` for the instance-of kind: add and
delete are available in wagon wheels and instance-of hierarchies; the
modify operations belong to instance-of hierarchy concept schemas.  The
grammar's two add variants (to-instance-entities with a collection
target, to-generic-entity with a plain target) are served by one class,
selected by the target's shape.
"""

from __future__ import annotations

from repro.concepts.base import ConceptKind
from repro.model.relationships import RelationshipKind
from repro.ops.relationship_common import (
    AddRelationshipBase,
    DeleteRelationshipBase,
    ModifyCardinalityBase,
    ModifyOrderByBase,
    ModifyTargetTypeBase,
)

_WW_IH = frozenset({ConceptKind.WAGON_WHEEL, ConceptKind.INSTANCE_OF})
_IH = frozenset({ConceptKind.INSTANCE_OF})


class AddInstanceOfRelationship(AddRelationshipBase):
    """``add_instance_of_relationship(typename, target, path, Inv::path)``.

    A collection target makes this the to-instance-entities variant
    (declared in the generic entity); a plain target makes it the
    to-generic-entity variant.
    """

    op_name = "add_instance_of_relationship"
    candidate = "Instance-of Relationship"
    sub_candidate = "Traversal path name"
    action = "add"
    admissible_in = _WW_IH
    kind = RelationshipKind.INSTANCE_OF


class DeleteInstanceOfRelationship(DeleteRelationshipBase):
    """``delete_instance_of_relationship(typename, traversal_path)``."""

    op_name = "delete_instance_of_relationship"
    candidate = "Instance-of Relationship"
    sub_candidate = "Traversal path name"
    action = "delete"
    admissible_in = _WW_IH
    kind = RelationshipKind.INSTANCE_OF


class ModifyInstanceOfTargetType(ModifyTargetTypeBase):
    """``modify_instance_of_target_type(typename, path[, old], new)``."""

    op_name = "modify_instance_of_target_type"
    candidate = "Instance-of Relationship"
    sub_candidate = "Target type"
    action = "modify"
    admissible_in = _IH
    kind = RelationshipKind.INSTANCE_OF


class ModifyInstanceOfCardinality(ModifyCardinalityBase):
    """``modify_instance_of_cardinality(typename, path, old, new)``.

    Only allowed for the to-instance-entities end of the relationship
    (the grammar's comment), which must keep a collection target.
    """

    op_name = "modify_instance_of_cardinality"
    candidate = "Instance-of Relationship"
    sub_candidate = "One way cardinality"
    action = "modify"
    admissible_in = _IH
    kind = RelationshipKind.INSTANCE_OF


class ModifyInstanceOfOrderBy(ModifyOrderByBase):
    """``modify_instance_of_order_by(typename, path, (old), (new))``."""

    op_name = "modify_instance_of_order_by"
    candidate = "Instance-of Relationship"
    sub_candidate = "Order by list"
    action = "modify"
    admissible_in = _IH
    kind = RelationshipKind.INSTANCE_OF
