"""Extended ODL front end: lexer, parser, and pretty-printer.

The paper adopts ODMG's Object Definition Language, "extended slightly
... to support the instance-of and aggregation relationship types"
(Section 3.1).  This package provides that extended language as text:

>>> from repro.odl import parse_schema, print_schema
>>> schema = parse_schema('''
...     interface Course {
...         attribute string(30) title;
...     };
... ''', name="demo")
>>> print(print_schema(schema))
interface Course {
    attribute string(30) title;
};
<BLANKLINE>
"""

from repro.odl.lexer import OdlSyntaxError, Token, TokenStream, tokenize
from repro.odl.parser import (
    parse_interface,
    parse_schema,
    parse_type,
)
from repro.odl.printer import print_interface, print_schema

__all__ = [
    "OdlSyntaxError",
    "Token",
    "TokenStream",
    "parse_interface",
    "parse_schema",
    "parse_type",
    "print_interface",
    "print_schema",
    "tokenize",
]
