"""Extended ODMG object model: types, interfaces, relationships, schemas.

This package implements the data model of Delcambre & Langston's shrink
wrap schema work: ODMG-93 interfaces extended with *part-of* (aggregation)
and *instance-of* relationship kinds.  See :mod:`repro.model.schema` for
the container and :mod:`repro.model.validation` for structural rules.
"""

from repro.model.attributes import Attribute
from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    ReproError,
    SchemaError,
    UnknownPropertyError,
    UnknownTypeError,
    ValidationError,
)
from repro.model.index import SchemaIndex
from repro.model.interface import InterfaceDef
from repro.model.mutation import (
    Aspect,
    DirtyJournal,
    MutationLog,
    MutationRecord,
    aspect_for_kind,
)
from repro.model.operations import Operation, Parameter
from repro.model.relationships import (
    Cardinality,
    RelationshipEnd,
    RelationshipKind,
    association,
    instance_of,
    part_of,
)
from repro.model.schema import Schema, schema_from_interfaces
from repro.model.types import (
    VOID,
    CollectionType,
    NamedType,
    ScalarType,
    TypeRef,
    array_of,
    bag_of,
    list_of,
    named,
    scalar,
    set_of,
)
from repro.model.validation import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Issue,
    validate_schema,
)

__all__ = [
    "Aspect",
    "Attribute",
    "Cardinality",
    "CollectionType",
    "DirtyJournal",
    "DuplicateNameError",
    "InterfaceDef",
    "InvalidModelError",
    "Issue",
    "MutationLog",
    "MutationRecord",
    "NamedType",
    "Operation",
    "Parameter",
    "RelationshipEnd",
    "RelationshipKind",
    "ReproError",
    "ScalarType",
    "Schema",
    "SchemaError",
    "SchemaIndex",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "TypeRef",
    "UnknownPropertyError",
    "UnknownTypeError",
    "VOID",
    "ValidationError",
    "array_of",
    "aspect_for_kind",
    "association",
    "bag_of",
    "instance_of",
    "list_of",
    "named",
    "part_of",
    "scalar",
    "schema_from_interfaces",
    "set_of",
    "validate_schema",
]
