"""The ACEDB family of genome schemas (Figures 9, 10, 11; Section 4).

ACEDB -- "an application, with an internal database, originally
developed to study the physical mapping data for the nematode genome
project" -- was manually reused for the Arabidopsis database (AAtDB) and
the Saccharomyces database (SacchDB), producing "a family of related,
customized schemas based on the original schema".  The paper examines
the common classes of the three schemas as empirical evidence that
shrink-wrap-based design is feasible, noting for instance that ``Strain``
(ACEDB, animal discipline) and ``Phenotype`` (AAtDB, plant discipline)
are semantically equivalent terms.

We reconstruct an ACEDB-style shrink wrap schema from the object types
and interconnections the paper reports, and express the two descendants
exactly the way the paper argues they *could* have been produced: as
modification scripts in the Appendix A operation language, applied to
the ACEDB shrink wrap schema through the repository (with propagation,
so type deletions cascade through their relationships).  The derived
schemas therefore demonstrate Section 4's claim by construction -- every
change needed for AAtDB and SacchDB is admissible in the operation
language.
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.odl.parser import parse_schema
from repro.ops.language import parse_script
from repro.repository.repository import SchemaRepository

ACEDB_ODL = """
// Reconstructed ACEDB shrink wrap schema (Figure 9): physical mapping
// data for the nematode genome project.

interface Map {
    extent maps;
    keys (name);
    attribute string(20) name;
    attribute float length_cm;
    relationship set<Locus> loci inverse Locus::on_map order_by (symbol);
    relationship set<Contig> contigs inverse Contig::placed_on;
};

interface Locus {
    extent loci;
    keys (symbol);
    attribute string(20) symbol;
    attribute string(120) description;
    attribute float position;
    relationship Map on_map inverse Map::loci;
    relationship set<Allele> alleles inverse Allele::of_locus;
    relationship set<Paper> described_in inverse Paper::describes;
    relationship set<Cell> expressed_in inverse Cell::expresses;
};

interface Allele {
    extent alleles;
    keys (name);
    attribute string(20) name;
    attribute boolean reference_allele;
    relationship Locus of_locus inverse Locus::alleles;
    relationship Strain found_in inverse Strain::carries;
};

interface Clone {
    extent clones;
    keys (name);
    attribute string(20) name;
    attribute string(20) vector;
    part_of relationship Contig assembled_into inverse Contig::built_from;
    relationship set<Sequence> sequences inverse Sequence::of_clone;
    relationship Lab held_by inverse Lab::holds;
};

interface Contig {
    extent contigs;
    keys (name);
    attribute string(20) name;
    part_of relationship set<Clone> built_from inverse Clone::assembled_into;
    relationship Map placed_on inverse Map::contigs;
};

interface Sequence {
    extent sequences;
    attribute long length_bp;
    attribute string(200) dna;
    relationship Clone of_clone inverse Clone::sequences;
};

interface Paper {
    extent papers;
    attribute string(120) title;
    attribute short year;
    relationship set<Author> written_by inverse Author::wrote order_by (name);
    relationship set<Locus> describes inverse Locus::described_in;
    relationship Journal published_in inverse Journal::contains;
};

interface Author {
    extent authors;
    keys (name);
    attribute string(40) name;
    relationship set<Paper> wrote inverse Paper::written_by;
};

interface Journal {
    extent journals;
    keys (name);
    attribute string(60) name;
    relationship set<Paper> contains inverse Paper::published_in;
};

interface Lab {
    extent labs;
    keys (designator);
    attribute string(10) designator;
    attribute string(60) address;
    relationship set<Clone> holds inverse Clone::held_by;
    relationship set<Strain> maintains inverse Strain::kept_at;
};

interface Strain {
    extent strains;
    keys (name);
    attribute string(20) name;
    attribute string(80) genotype;
    relationship set<Allele> carries inverse Allele::found_in;
    relationship Lab kept_at inverse Lab::maintains;
};

interface Cell {
    extent cells;
    keys (name);
    attribute string(20) name;
    attribute string(80) lineage;
    relationship set<Locus> expresses inverse Locus::expressed_in;
};
"""

#: Customization script deriving the Arabidopsis database (AAtDB,
#: Figure 11) from the ACEDB shrink wrap schema.  The plant discipline
#: replaces the animal notions: the nematode cell lineage goes away, the
#: semantically equivalent Phenotype replaces Strain (under name
#: equivalence a rename is delete + add), and plant material enters as
#: Ecotype.  Type deletions rely on propagation to cascade through
#: their relationships.
AATDB_SCRIPT = """
delete_type_definition(Cell)
delete_type_definition(Strain)
add_type_definition(Phenotype)
add_attribute(Phenotype, string(20), name)
add_attribute(Phenotype, string(120), description)
add_key_list(Phenotype, (name))
add_extent_name(Phenotype, phenotypes)
add_relationship(Phenotype, set<Allele>, carries, Allele::found_in)
add_relationship(Lab, set<Phenotype>, maintains_phenotypes, Phenotype::kept_at)
add_type_definition(Ecotype)
add_attribute(Ecotype, string(40), name)
add_attribute(Ecotype, string(60), collection_site)
add_key_list(Ecotype, (name))
add_extent_name(Ecotype, ecotypes)
add_relationship(Ecotype, set<Phenotype>, shows, Phenotype::observed_in)
modify_attribute_size(Locus, symbol, 20, 40)
"""

#: Customization script deriving the Saccharomyces database (SacchDB,
#: Figure 10) from the ACEDB shrink wrap schema.  Yeast has no cell
#: lineage and its physical map is organised by chromosome rather than
#: contig assembly; strains gain the yeast-specific mating type.
SACCHDB_SCRIPT = """
delete_type_definition(Cell)
delete_type_definition(Contig)
add_type_definition(Chromosome)
add_attribute(Chromosome, string(10), roman_numeral)
add_attribute(Chromosome, long, length_bp)
add_key_list(Chromosome, (roman_numeral))
add_extent_name(Chromosome, chromosomes)
add_relationship(Chromosome, set<Locus>, carries_loci, Locus::on_chromosome)
add_relationship(Chromosome, Map, mapped_by, Map::of_chromosome)
add_relationship(Chromosome, set<Clone>, localised_clones, Clone::on_chromosome)
add_attribute(Strain, string(10), mating_type)
"""


def acedb_schema(name: str = "acedb") -> Schema:
    """Parse and return the reconstructed ACEDB shrink wrap schema."""
    schema = parse_schema(ACEDB_ODL, name=name)
    schema.validate()
    return schema


def derive(script: str, custom_name: str) -> SchemaRepository:
    """Apply a derivation script to a fresh ACEDB repository."""
    repository = SchemaRepository(acedb_schema(), custom_name=custom_name)
    for operation in parse_script(script):
        repository.apply(operation)
    repository.generate_custom_schema()
    repository.generate_mapping()
    return repository


def aatdb_repository() -> SchemaRepository:
    """The full AAtDB derivation: repository with custom schema + mapping."""
    return derive(AATDB_SCRIPT, "aatdb")


def sacchdb_repository() -> SchemaRepository:
    """The full SacchDB derivation: repository with custom schema + mapping."""
    return derive(SACCHDB_SCRIPT, "sacchdb")


def aatdb_schema() -> Schema:
    """The derived Arabidopsis schema (Figure 11)."""
    repository = aatdb_repository()
    assert repository.custom_schema is not None
    return repository.custom_schema


def sacchdb_schema() -> Schema:
    """The derived Saccharomyces schema (Figure 10)."""
    repository = sacchdb_repository()
    assert repository.custom_schema is not None
    return repository.custom_schema


def common_classes() -> set[str]:
    """Object types shared by all three schemas, as the paper examines."""
    names = set(acedb_schema().type_names())
    names &= set(aatdb_schema().type_names())
    names &= set(sacchdb_schema().type_names())
    return names
