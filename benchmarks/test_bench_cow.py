"""Copy-on-write fork curve: shared-interface branches (ISSUE 9).

PR 9 turns ``Schema.fork`` into copy-on-write (DESIGN 5j): a fork
shares every ``InterfaceDef`` and the columnar adjacency with its
parent, and pays for divergence per *touched* interface instead of per
type.  This bench records the copy/fork/propagation-scratch curve the
ISSUE asks for at 200 / 1k / 10k / 100k types:

* ``copy_eager``     -- ``Schema.copy``, the O(types) executable
  reference spec the ``cow-vs-eager-copy`` invariant pins forks to;
* ``fork``           -- the CoW branch (shared interfaces dict +
  columnar overlay view), released after each rep;
* ``first_edit``     -- the first mutator on a fresh fork: one
  materialise-on-write fault plus the borrow barrier;
* ``scratch_expand`` -- one propagation expansion of a cascading
  delete, which pre-PR-9 paid an eager scratch copy per call (the
  dominant ``generate_operations`` cost at 100k types).

All points merge into ``BENCH_PR9.json`` (see the BENCH_* convention
in ``conftest.py``).

Floors: fork must beat eager copy >= 50x at 10k types in the smoke
configuration (``make bench-smoke`` / CI) and >= 100x at 100k types in
the full sweep, and a fork followed by columnar queries and a child
edit must never trigger an O(types) adjacency rebuild (the overlay's
rebuild counter stays at zero while the parent is quiescent).
"""

from __future__ import annotations

import os
import statistics
import time

from benchmarks.conftest import merge_bench_results
from repro.knowledge.propagation import expand
from repro.model.attributes import Attribute
from repro.model.types import ScalarType
from repro.ops.base import OperationContext
from repro.ops.type_ops import DeleteTypeDefinition
from repro.workload.generator import WorkloadSpec, generate_schema

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (200, 1_000, 10_000) if SMOKE else (200, 1_000, 10_000, 100_000)
#: bench-smoke floor: CoW fork vs eager copy at 10k types.
SMOKE_FORK_SPEEDUP = 50.0
#: full-sweep floor: CoW fork vs eager copy at 100k types.
FULL_FORK_SPEEDUP = 100.0


def _spec(size: int) -> WorkloadSpec:
    # Same shape as the columnar bench so curves are comparable.
    return WorkloadSpec(
        types=size,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=min(100, max(4, size // 4)),
        instance_of_chain=min(50, max(3, size // 8)),
    )


def _copy_repeats(size: int) -> int:
    return 3 if size >= 10_000 else 5


def _median(times: list[float]) -> float:
    return statistics.median(times)


def _time_eager_copy(schema, size: int) -> float:
    times = []
    for _ in range(_copy_repeats(size)):
        start = time.perf_counter()
        duplicate = schema.copy("eager_dup")
        times.append(time.perf_counter() - start)
        del duplicate
    return _median(times)


def _time_fork(schema) -> float:
    times = []
    for _ in range(20):
        start = time.perf_counter()
        branch = schema.fork("bench_fork")
        times.append(time.perf_counter() - start)
        branch.release_cow()
        del branch
    return _median(times)


def _time_first_edit(schema, probe: str) -> float:
    """Median time of the first mutator on a fresh fork.

    This is the materialise-on-write fault: ``edit`` clones the one
    borrowed interface, re-keys it, and the mutator's CoW barrier
    settles the outstanding borrows -- O(touched), not O(types).
    """
    times = []
    for index in range(20):
        branch = schema.fork("bench_fault")
        start = time.perf_counter()
        branch.edit(probe).add_attribute(
            Attribute(f"cow_fault{index}", ScalarType("long"))
        )
        times.append(time.perf_counter() - start)
        branch.release_cow()
        del branch
    return _median(times)


def _time_scratch_expand(schema, probe: str) -> float:
    """One cascading-delete expansion (a CoW scratch fork per call)."""
    context = OperationContext(reference=schema)
    operation = DeleteTypeDefinition(probe)
    times = []
    for _ in range(10):
        start = time.perf_counter()
        plan = expand(schema, operation, context)
        times.append(time.perf_counter() - start)
        assert plan  # the delete itself is always the last step
    return _median(times)


def _assert_no_post_fork_rebuild(schema, probe: str) -> None:
    """Acceptance: fork + queries + a child edit never rebuild columns."""
    branch = schema.fork("rebuild_probe")
    try:
        assert branch.index.adjacency.rebuilds == 0
        branch.descendants(probe)
        branch.index.referencers_of(probe)
        branch.edit(probe).add_attribute(
            Attribute("cow_rebuild_probe", ScalarType("long"))
        )
        branch.descendants(probe)
        assert branch.index.adjacency.rebuilds == 0, (
            "CoW fork paid an O(types) columnar rebuild while its "
            "parent was quiescent"
        )
    finally:
        branch.release_cow()


def test_bench_cow_scaling(report, record_bench):
    """200 / 1k / 10k / 100k copy vs fork vs propagation-scratch curve."""
    rows = []
    results: dict[str, dict] = {}
    speedups: dict[int, float] = {}
    for size in SIZES:
        schema = generate_schema(_spec(size))
        names = schema.type_names()
        probe = names[len(names) // 2]
        schema.descendants(probe)  # warm the parent's columns

        copy_eager = _time_eager_copy(schema, size)
        fork = _time_fork(schema)
        first_edit = _time_first_edit(schema, probe)
        scratch = _time_scratch_expand(schema, probe)
        _assert_no_post_fork_rebuild(schema, probe)

        speedups[size] = copy_eager / fork
        rows.append((size, copy_eager, fork, first_edit, scratch))
        for metric, value in (
            ("copy_eager", copy_eager),
            ("fork", fork),
            ("first_edit", first_edit),
            ("scratch_expand", scratch),
        ):
            results[f"cow_{metric}[{size}]"] = {
                "median_seconds": value,
                "types": size,
            }
        results[f"cow_fork_speedup[{size}]"] = {
            "median_seconds": None,
            "types": size,
            "speedup_vs_eager_copy": round(speedups[size], 1),
        }
        record_bench(f"cow_fork[{size}]", fork, types=size)

    lines = [
        f"{'types':>7}  {'copy':>9}  {'fork':>9}  {'1st edit':>9}  "
        f"{'expand':>9}  {'copy/fork':>9}"
    ]
    for size, copy_eager, fork, first_edit, scratch in rows:
        lines.append(
            f"{size:>7}  {copy_eager * 1000:>7.1f}ms  {fork * 1000:>7.2f}ms  "
            f"{first_edit * 1000:>7.2f}ms  {scratch * 1000:>7.2f}ms  "
            f"{speedups[size]:>8.0f}x"
        )
    report("cow_scaling", "\n".join(lines))

    if not SMOKE:
        merge_bench_results(results)
        assert speedups[100_000] >= FULL_FORK_SPEEDUP, (
            f"Schema.fork at 100k types is only {speedups[100_000]:.1f}x "
            f"faster than eager copy (floor {FULL_FORK_SPEEDUP:.0f}x)"
        )
    else:
        assert speedups[10_000] >= SMOKE_FORK_SPEEDUP, (
            f"Schema.fork at 10k types is only {speedups[10_000]:.1f}x "
            f"faster than eager copy (floor {SMOKE_FORK_SPEEDUP:.0f}x)"
        )
