"""Structural validation of schemas.

Each rule inspects one aspect of the extended object model and yields
:class:`Issue` records.  The knowledge component of the interactive
designer (:mod:`repro.knowledge`) layers designer-facing consistency
checks on top of these structural rules; here we only enforce what must
hold for a schema to *be* a schema of the extended ODMG model:

* every referenced type name is defined (``dangling-type``);
* relationship ends pair up with their declared inverses
  (``inverse-missing`` / ``inverse-mismatch``);
* relationship kinds agree across the two ends (``kind-mismatch``);
* part-of and instance-of relationships honour the implicit 1:N
  cardinality (``cardinality-role``);
* the generalization, aggregation, and instance-of graphs are acyclic
  (``isa-cycle`` / ``part-of-cycle`` / ``instance-of-cycle``);
* keys name attributes that exist, locally or inherited (``key-unknown``);
* order-by lists name attributes of the target type (``order-by-unknown``).

Severity ``warning`` marks conditions the paper treats as design smells
rather than errors (e.g. a multi-rooted generalization component, which
Section 3.2 says should be fixed by adding an abstract supertype).

The rules come in two shapes.  Five are *per-interface*: their output for
one interface depends only on that interface and the types it reaches
(supertypes for inheritance, targets for order-by), so they are exposed
both as full-scan generators (``check_*``) and as per-interface workers
(``*_issues``) that :mod:`repro.model.validation_cache` re-runs only for
dirty interfaces.  The other four are *graph* rules (three cycle checks
and the multi-root warning) whose unit of work is a connected component
rather than an interface; the cache re-checks only touched components.
Each rule declares its read scope in :data:`RULE_SCOPES` so the cache can
derive the dirty closure from an operation's touch aspects.

:func:`validate_schema` remains the reference specification: the
incremental engine must reproduce its output byte for byte, and the
``incremental-vs-full-validation`` differential invariant in
:mod:`repro.verify.invariants` holds it to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.model.errors import ValidationError
from repro.model.index import scan_link_edges
from repro.model.interface import InterfaceDef
from repro.model.mutation import Aspect
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import referenced_interfaces

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Issue:
    """One validation finding.

    ``rule`` is a stable identifier (e.g. ``"dangling-type"``),
    ``location`` a dotted construct path (``Type.property``), and
    ``message`` human-readable text for designer feedback.
    """

    rule: str
    severity: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule} at {self.location}: {self.message}"


Rule = Callable[[Schema], Iterator[Issue]]
InterfaceRule = Callable[[Schema, InterfaceDef], Iterator[Issue]]


# ----------------------------------------------------------------------
# Rule scopes
# ----------------------------------------------------------------------

#: Dirt stays on the touched interface itself (plus interfaces that
#: reference it, which every reach level implies for membership changes).
REACH_LOCAL = "local"
#: Dirt also spreads to interfaces that *reference* the touched one
#: (inverse declarations read the other end's owner).
REACH_REFERENCERS = "referencers"
#: Dirt also spreads down the generalization hierarchy (inherited
#: attributes feed key and order-by resolution on every descendant).
REACH_DESCENDANTS = "descendants"
#: The rule's unit of work is a connected component of one link graph;
#: dirt re-checks the touched component, not the touched interface.
REACH_COMPONENT = "component"


@dataclass(frozen=True, slots=True)
class RuleScope:
    """What one rule reads, for dirty-set derivation.

    ``aspects`` lists the :class:`~repro.model.mutation.Aspect` members
    whose change can alter the rule's output; ``reach`` says how far a
    touch propagates before the rule's output is stable again.
    """

    rule: str
    aspects: frozenset[Aspect]
    reach: str


_REL_ASPECTS = frozenset(
    {Aspect.REL_ASSOCIATION, Aspect.REL_PART_OF, Aspect.REL_INSTANCE_OF}
)

#: Read scopes of every structural rule.  ``Aspect.EXTENT`` appears in
#: no scope: no structural rule reads the extent name, so extent-only
#: touches are validation no-ops.
RULE_SCOPES: tuple[RuleScope, ...] = (
    RuleScope(
        "dangling-type",
        frozenset({Aspect.ISA, Aspect.ATTRS, Aspect.OPS}) | _REL_ASPECTS,
        REACH_REFERENCERS,
    ),
    RuleScope("inverse-missing", _REL_ASPECTS, REACH_REFERENCERS),
    RuleScope("inverse-mismatch", _REL_ASPECTS, REACH_REFERENCERS),
    RuleScope("kind-mismatch", _REL_ASPECTS, REACH_REFERENCERS),
    RuleScope(
        "cardinality-role",
        frozenset({Aspect.REL_PART_OF, Aspect.REL_INSTANCE_OF}),
        REACH_REFERENCERS,
    ),
    RuleScope("isa-cycle", frozenset({Aspect.ISA}), REACH_COMPONENT),
    RuleScope(
        "part-of-cycle", frozenset({Aspect.REL_PART_OF}), REACH_COMPONENT
    ),
    RuleScope(
        "instance-of-cycle",
        frozenset({Aspect.REL_INSTANCE_OF}),
        REACH_COMPONENT,
    ),
    RuleScope(
        "key-unknown",
        frozenset({Aspect.KEYS, Aspect.ATTRS, Aspect.ISA}),
        REACH_DESCENDANTS,
    ),
    RuleScope(
        "order-by-unknown",
        frozenset({Aspect.ATTRS, Aspect.ISA}) | _REL_ASPECTS,
        REACH_DESCENDANTS,
    ),
    RuleScope(
        "multi-root-hierarchy", frozenset({Aspect.ISA}), REACH_COMPONENT
    ),
)

#: Every aspect some rule reads; touches outside this set cannot change
#: any validation output.
VALIDATION_ASPECTS: frozenset[Aspect] = frozenset().union(
    *(scope.aspects for scope in RULE_SCOPES)
)

#: Aspects whose change can alter what an interface's *descendants*
#: inherit, so dirt must close over the subtype graph.
DESCEND_ASPECTS: frozenset[Aspect] = frozenset({Aspect.ISA, Aspect.ATTRS})


# ----------------------------------------------------------------------
# Per-interface rules
# ----------------------------------------------------------------------


def dangling_type_issues(
    schema: Schema, interface: InterfaceDef
) -> Iterator[Issue]:
    """Dangling-reference findings of one interface."""
    for supertype in interface.supertypes:
        if supertype not in schema:
            yield Issue(
                "dangling-type", SEVERITY_ERROR, interface.name,
                f"supertype {supertype!r} is not defined",
            )
    for attribute in interface.attributes.values():
        for used in sorted(referenced_interfaces(attribute.type)):
            if used not in schema:
                yield Issue(
                    "dangling-type", SEVERITY_ERROR,
                    f"{interface.name}.{attribute.name}",
                    f"attribute type references undefined {used!r}",
                )
    for end in interface.relationships.values():
        if end.target_type not in schema:
            yield Issue(
                "dangling-type", SEVERITY_ERROR,
                f"{interface.name}.{end.name}",
                f"relationship targets undefined {end.target_type!r}",
            )
        if end.inverse_type not in schema:
            yield Issue(
                "dangling-type", SEVERITY_ERROR,
                f"{interface.name}.{end.name}",
                f"inverse names undefined {end.inverse_type!r}",
            )
    for operation in interface.operations.values():
        used_names: set[str] = set(
            referenced_interfaces(operation.return_type)
        )
        for parameter in operation.parameters:
            used_names |= referenced_interfaces(parameter.type)
        for used in sorted(used_names):
            if used not in schema:
                yield Issue(
                    "dangling-type", SEVERITY_ERROR,
                    f"{interface.name}.{operation.name}",
                    f"operation signature references undefined {used!r}",
                )


def inverse_issues(schema: Schema, interface: InterfaceDef) -> Iterator[Issue]:
    """Inverse-pairing findings of one interface's relationship ends."""
    owner = interface.name
    for end in interface.relationships.values():
        if end.inverse_type not in schema:
            continue  # reported by check_dangling_types
        other = schema.get(end.inverse_type)
        inverse = other.relationships.get(end.inverse_name)
        location = f"{owner}.{end.name}"
        if inverse is None:
            yield Issue(
                "inverse-missing", SEVERITY_ERROR, location,
                f"declared inverse {end.inverse_type}::{end.inverse_name} "
                "does not exist",
            )
            continue
        if inverse.target_type != owner or inverse.inverse_name != end.name:
            yield Issue(
                "inverse-mismatch", SEVERITY_ERROR, location,
                f"inverse {end.inverse_type}::{end.inverse_name} does not "
                f"point back at {owner}::{end.name}",
            )
        if inverse.kind is not end.kind:
            yield Issue(
                "kind-mismatch", SEVERITY_ERROR, location,
                f"this end is {end.kind.value} but its inverse is "
                f"{inverse.kind.value}",
            )
        if end.inverse_type != end.target_type:
            yield Issue(
                "inverse-mismatch", SEVERITY_ERROR, location,
                f"target type {end.target_type!r} differs from inverse "
                f"owner {end.inverse_type!r}",
            )


def cardinality_issues(
    schema: Schema, interface: InterfaceDef
) -> Iterator[Issue]:
    """Implicit-1:N findings of one interface's part-of/instance-of ends."""
    owner = interface.name
    for end in interface.relationships.values():
        if end.kind is RelationshipKind.ASSOCIATION:
            continue
        inverse = schema.find_inverse(owner, end)
        if inverse is None:
            continue  # reported by check_inverses
        if end.is_to_many == inverse.is_to_many:
            shape = "to-many" if end.is_to_many else "to-one"
            yield Issue(
                "cardinality-role", SEVERITY_ERROR, f"{owner}.{end.name}",
                f"{end.kind.value} relationship has both ends {shape}; "
                "the implicit cardinality is 1:N",
            )


def key_issues(schema: Schema, interface: InterfaceDef) -> Iterator[Issue]:
    """Unknown-attribute findings of one interface's key lists."""
    available = set(interface.attributes)
    available.update(schema.inherited_attributes(interface.name))
    for key in interface.keys:
        for attr_name in key:
            if attr_name not in available:
                yield Issue(
                    "key-unknown", SEVERITY_ERROR,
                    f"{interface.name}.keys",
                    f"key {key!r} names unknown attribute {attr_name!r}",
                )


def order_by_issues(schema: Schema, interface: InterfaceDef) -> Iterator[Issue]:
    """Unknown-order-by findings of one interface's relationship ends."""
    owner = interface.name
    for end in interface.relationships.values():
        if not end.order_by or end.target_type not in schema:
            continue
        target = schema.get(end.target_type)
        available = set(target.attributes)
        available.update(schema.inherited_attributes(target.name))
        for attr_name in end.order_by:
            if attr_name not in available:
                yield Issue(
                    "order-by-unknown", SEVERITY_ERROR,
                    f"{owner}.{end.name}",
                    f"order_by names unknown attribute {attr_name!r} of "
                    f"{end.target_type!r}",
                )


#: The five per-interface rules, in reporting order.  The incremental
#: cache stores one issue tuple per (interface, slot) and re-runs only
#: dirty interfaces; the full-scan ``check_*`` wrappers below iterate
#: these over the whole schema.
INTERFACE_RULES: tuple[InterfaceRule, ...] = (
    dangling_type_issues,
    inverse_issues,
    cardinality_issues,
    key_issues,
    order_by_issues,
)


# ----------------------------------------------------------------------
# Full-scan rules (the reference specification)
# ----------------------------------------------------------------------


def check_dangling_types(schema: Schema) -> Iterator[Issue]:
    """Every interface name used anywhere must be defined in the schema."""
    for interface in schema:
        yield from dangling_type_issues(schema, interface)


def check_inverses(schema: Schema) -> Iterator[Issue]:
    """Relationship ends must pair with a consistent declared inverse."""
    for interface in schema:
        yield from inverse_issues(schema, interface)


def check_cardinality_roles(schema: Schema) -> Iterator[Issue]:
    """Part-of and instance-of relationships are implicitly 1:N.

    Exactly one end of each such relationship may be to-many (the whole's
    to-parts end / the generic entity's to-instances end); the opposite
    end must be to-one.
    """
    for interface in schema:
        yield from cardinality_issues(schema, interface)


def _find_cycle(
    nodes: Iterable[str], successors: Callable[[str], Iterable[str]]
) -> list[str] | None:
    """Return one directed cycle as a node list, or ``None``.

    Iterative DFS (an explicit stack of successor iterators) with the
    exact traversal order — and therefore the exact reported cycle — of
    the recursive form it replaced, which hit the interpreter recursion
    limit on ISA chains a few thousand types deep.
    """
    visiting: set[str] = set()
    done: set[str] = set()
    stack: list[str] = []
    pending: list[Iterable[str]] = []

    for start in nodes:
        if start in done:
            continue
        visiting.add(start)
        stack.append(start)
        pending.append(iter(successors(start)))
        while pending:
            for nxt in pending[-1]:
                if nxt in done:
                    continue
                if nxt in visiting:
                    return stack[stack.index(nxt):] + [nxt]
                visiting.add(nxt)
                stack.append(nxt)
                pending.append(iter(successors(nxt)))
                break
            else:
                pending.pop()
                node = stack.pop()
                visiting.discard(node)
                done.add(node)
    return None


def isa_successors(schema: Schema) -> Callable[[str], Iterable[str]]:
    """Successor function of the resolved generalization graph."""
    def successors(name: str) -> Iterable[str]:
        if name not in schema:
            return ()
        return (
            supertype
            for supertype in schema.interfaces[name].supertypes
            if supertype in schema
        )

    return successors


def part_of_successors(schema: Schema) -> Callable[[str], Iterable[str]]:
    """Successor function of the aggregation graph (whole -> part).

    Built from the :func:`~repro.model.index.scan_link_edges` reference
    scan, *not* ``schema.part_of_edges()``: the latter answers from
    :class:`~repro.model.index.SchemaIndex`, and the reference
    specification must stay independent of the caches it verifies
    (the ``ref-independence`` lint pass enforces this).  The cache layer
    keeps its own index-backed successor builders in
    :mod:`repro.model.validation_cache`.
    """
    edges: dict[str, list[str]] = {}
    for whole, part, _ in scan_link_edges(schema, RelationshipKind.PART_OF):
        edges.setdefault(whole, []).append(part)
    return lambda n: edges.get(n, ())


def instance_of_successors(schema: Schema) -> Callable[[str], Iterable[str]]:
    """Successor function of the instance-of graph (generic -> instance).

    Scan-based for the same independence reason as
    :func:`part_of_successors`.
    """
    edges: dict[str, list[str]] = {}
    for generic, instance, _ in scan_link_edges(
        schema, RelationshipKind.INSTANCE_OF
    ):
        edges.setdefault(generic, []).append(instance)
    return lambda n: edges.get(n, ())


def isa_cycle_issue(cycle: list[str]) -> Issue:
    """The issue :func:`check_isa_cycles` reports for *cycle*."""
    return Issue(
        "isa-cycle", SEVERITY_ERROR, cycle[0],
        "generalization cycle: " + " -> ".join(cycle),
    )


def part_of_cycle_issue(cycle: list[str]) -> Issue:
    """The issue :func:`check_part_of_cycles` reports for *cycle*."""
    return Issue(
        "part-of-cycle", SEVERITY_ERROR, cycle[0],
        "aggregation cycle: " + " -> ".join(cycle),
    )


def instance_of_cycle_issue(cycle: list[str]) -> Issue:
    """The issue :func:`check_instance_of_cycles` reports for *cycle*."""
    return Issue(
        "instance-of-cycle", SEVERITY_ERROR, cycle[0],
        "instance-of cycle: " + " -> ".join(cycle),
    )


def check_isa_cycles(schema: Schema) -> Iterator[Issue]:
    """The generalization graph must be acyclic."""
    cycle = _find_cycle(schema.type_names(), isa_successors(schema))
    if cycle is not None:
        yield isa_cycle_issue(cycle)


def check_part_of_cycles(schema: Schema) -> Iterator[Issue]:
    """The aggregation graph must be acyclic (no whole is its own part)."""
    cycle = _find_cycle(schema.type_names(), part_of_successors(schema))
    if cycle is not None:
        yield part_of_cycle_issue(cycle)


def check_instance_of_cycles(schema: Schema) -> Iterator[Issue]:
    """The instance-of graph must be acyclic."""
    cycle = _find_cycle(schema.type_names(), instance_of_successors(schema))
    if cycle is not None:
        yield instance_of_cycle_issue(cycle)


def check_keys(schema: Schema) -> Iterator[Issue]:
    """Keys must name attributes available on the type (incl. inherited)."""
    for interface in schema:
        yield from key_issues(schema, interface)


def check_order_by(schema: Schema) -> Iterator[Issue]:
    """order_by lists must name attributes of the relationship target."""
    for interface in schema:
        yield from order_by_issues(schema, interface)


def component_roots(schema: Schema, component: set[str]) -> list[str]:
    """Sorted resolved-root names of one generalization component."""
    return sorted(
        name
        for name in component
        if not [s for s in schema.get(name).supertypes if s in schema]
    )


def multi_root_issue(roots: list[str]) -> Issue:
    """The warning :func:`check_multi_root_components` reports for *roots*."""
    return Issue(
        "multi-root-hierarchy", SEVERITY_WARNING, roots[0],
        "generalization component has several roots "
        f"({', '.join(roots)}); consider an abstract supertype",
    )


def check_multi_root_components(schema: Schema) -> Iterator[Issue]:
    """Warn about generalization components with more than one root.

    The paper's single-root assumption (Section 3.2) says any hierarchy
    with two or more roots should be transformed by adding an abstract
    supertype; we surface the condition as a warning rather than reject
    the schema.
    """
    neighbours: dict[str, set[str]] = {name: set() for name in schema.type_names()}
    for interface in schema:
        for supertype in interface.supertypes:
            if supertype in schema:
                neighbours[interface.name].add(supertype)
                neighbours[supertype].add(interface.name)
    seen: set[str] = set()
    for start in schema.type_names():
        if start in seen or not neighbours[start]:
            continue
        component: set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in component:
                continue
            component.add(node)
            frontier.extend(neighbours[node] - component)
        seen |= component
        roots = component_roots(schema, component)
        if len(roots) > 1:
            yield multi_root_issue(roots)


#: All structural rules, in reporting order.
STRUCTURAL_RULES: tuple[Rule, ...] = (
    check_dangling_types,
    check_inverses,
    check_cardinality_roles,
    check_isa_cycles,
    check_part_of_cycles,
    check_instance_of_cycles,
    check_keys,
    check_order_by,
    check_multi_root_components,
)


def validate_schema(schema: Schema, raise_on_error: bool = False) -> list[Issue]:
    """Run every structural rule over *schema* and return the issues.

    With ``raise_on_error`` set, raise
    :class:`~repro.model.errors.ValidationError` when any error-severity
    issue was found (warnings never raise).

    This full scan is the *reference specification* of validation; the
    incremental engine (:class:`repro.model.validation_cache.
    ValidationCache`) must return an identical issue list for any schema
    state, which the fuzzer checks differentially after every operation.
    """
    issues: list[Issue] = []
    for rule in STRUCTURAL_RULES:
        issues.extend(rule(schema))
    if raise_on_error:
        errors = [issue for issue in issues if issue.severity == SEVERITY_ERROR]
        if errors:
            raise ValidationError(
                f"schema {schema.name!r} has {len(errors)} structural "
                "error(s); first: " + str(errors[0]),
                issues=errors,
            )
    return issues
