#!/usr/bin/env python
"""Static check: every public mutator lands a record on the spine.

The mutation spine only works as a single source of change truth if no
mutator forgets to emit -- exactly the per-layer-hook bug class the
refactor deleted.  This script parses ``interface.py`` and ``schema.py``
with the stdlib ``ast`` and asserts that every public mutator method
(``add_*`` / ``remove_*`` / ``replace_*`` / ``set_*`` / ``insert_*`` /
``reorder_*`` / ``touch*``) on :class:`InterfaceDef` / :class:`Schema`
reaches a ``self._emit(...)`` or ``self._log.emit(...)`` call, directly
or through other methods of the same class (fixpoint over ``self.``
calls, so ``Schema.add_interface -> self._adopt -> self._log.emit``
counts).

Run via ``make lint`` and CI; exits 1 listing every silent mutator.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro" / "model"

#: file -> class whose mutators must emit
TARGETS = {
    "interface.py": "InterfaceDef",
    "schema.py": "Schema",
}

MUTATOR_PREFIXES = (
    "add_",
    "remove_",
    "replace_",
    "set_",
    "insert_",
    "reorder_",
    "touch",
)


def _is_emit_call(node: ast.Call) -> bool:
    """True for ``self._emit(...)`` or ``self._log.emit(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "_emit":
        return isinstance(func.value, ast.Name) and func.value.id == "self"
    if func.attr == "emit":
        inner = func.value
        return (
            isinstance(inner, ast.Attribute)
            and inner.attr == "_log"
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"
        )
    return False


def _self_calls(function: ast.FunctionDef) -> set[str]:
    """Names of other ``self.method(...)`` calls inside *function*."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                names.add(target.attr)
    return names


def _methods_of(tree: ast.Module, class_name: str) -> dict[str, ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
    raise SystemExit(f"class {class_name} not found")


def _emitting_methods(methods: dict[str, ast.FunctionDef]) -> set[str]:
    """Fixpoint: methods that reach an emit call through ``self.``."""
    emitting = {
        name
        for name, function in methods.items()
        if any(
            isinstance(node, ast.Call) and _is_emit_call(node)
            for node in ast.walk(function)
        )
    }
    changed = True
    while changed:
        changed = False
        for name, function in methods.items():
            if name in emitting:
                continue
            if _self_calls(function) & emitting:
                emitting.add(name)
                changed = True
    return emitting


def main() -> int:
    failures: list[str] = []
    checked = 0
    for filename, class_name in TARGETS.items():
        path = SRC / filename
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        methods = _methods_of(tree, class_name)
        emitting = _emitting_methods(methods)
        for name in sorted(methods):
            if name.startswith("_") or not name.startswith(MUTATOR_PREFIXES):
                continue
            checked += 1
            if name not in emitting:
                failures.append(
                    f"{path}:{methods[name].lineno}: "
                    f"{class_name}.{name} mutates without emitting a "
                    "MutationRecord (self._emit / self._log.emit unreachable)"
                )
    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(
            f"\n{len(failures)} silent mutator(s); every public mutator "
            "must land a record on the mutation spine (DESIGN.md 5e).",
            file=sys.stderr,
        )
        return 1
    print(f"check_mutators: {checked} public mutators all emit records")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
