"""Unit tests for cautionary constraint checks."""

from repro.knowledge.constraints import cautions_for
from repro.knowledge.feedback import FeedbackLevel
from repro.model.types import named, scalar, set_of
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.relationship_ops import ModifyRelationshipCardinality
from repro.ops.type_ops import DeleteTypeDefinition
from repro.ops.type_property_ops import DeleteSupertype, ModifySupertype


def codes(schema, operation):
    return [message.code for message in cautions_for(schema, operation)]


class TestTypeDeletionCautions:
    def test_supertype_deletion_warns(self, small):
        assert "delete-supertype-of" in codes(
            small, DeleteTypeDefinition("Person")
        )

    def test_cascade_extent_reported(self, small):
        messages = cautions_for(small, DeleteTypeDefinition("Department"))
        extent = [m for m in messages if m.code == "delete-cascade-extent"]
        assert len(extent) == 1
        assert "Employee" in extent[0].message

    def test_isolated_type_is_quiet(self, small):
        from repro.ops.type_ops import AddTypeDefinition

        AddTypeDefinition("Island").apply(small)
        assert codes(small, DeleteTypeDefinition("Island")) == []


class TestAttributeCautions:
    def test_narrowing_cautions(self, small):
        messages = cautions_for(
            small, ModifyAttributeSize("Person", "name", 30, 10)
        )
        assert [m.code for m in messages] == ["attribute-narrowing"]
        assert messages[0].level is FeedbackLevel.CAUTION

    def test_widening_is_quiet(self, small):
        assert codes(small, ModifyAttributeSize("Person", "name", 30, 60)) == []

    def test_retype_cautions(self, small):
        assert "attribute-retype" in codes(
            small,
            ModifyAttributeType("Person", "id", scalar("long"), named("Badge")),
        )

    def test_downward_move_cautions(self, small):
        messages = cautions_for(
            small, ModifyAttribute("Person", "name", "Employee")
        )
        down = [m for m in messages if m.code == "downward-move"]
        assert len(down) == 1
        assert "Person" in down[0].message

    def test_upward_move_is_quiet(self, small):
        assert (
            codes(small, ModifyAttribute("Employee", "salary", "Person")) == []
        )

    def test_inherited_delete_informs(self, small):
        messages = cautions_for(small, DeleteAttribute("Person", "name"))
        inherited = [m for m in messages if m.code == "delete-inherited"]
        assert len(inherited) == 1
        assert "Employee" in inherited[0].message

    def test_add_attribute_is_quiet(self, small):
        assert codes(small, AddAttribute("Person", scalar("date"), "dob")) == []


class TestRelationshipAndIsaCautions:
    def test_cardinality_narrowing(self, small):
        assert "cardinality-narrowing" in codes(
            small,
            ModifyRelationshipCardinality(
                "Department", "staff", set_of("Employee"), named("Employee")
            ),
        )

    def test_cardinality_widening_is_quiet(self, small):
        assert (
            codes(
                small,
                ModifyRelationshipCardinality(
                    "Employee", "works_in", named("Department"),
                    set_of("Department"),
                ),
            )
            == []
        )

    def test_isa_rewiring_lists_lost_attributes(self, small):
        messages = cautions_for(small, DeleteSupertype("Employee", "Person"))
        rewiring = [m for m in messages if m.code == "isa-rewiring"]
        assert len(rewiring) == 1
        assert "id" in rewiring[0].message and "name" in rewiring[0].message

    def test_modify_supertype_keeping_link_is_quiet(self, small):
        assert (
            codes(small, ModifySupertype("Employee", ("Person",), ("Person",)))
            == []
        )
