"""Unit tests for the three hierarchy concept schema types."""

import pytest

from repro.concepts.aggregation import (
    extract_aggregation_hierarchy,
    extract_all_aggregation_hierarchies,
)
from repro.concepts.base import ConceptKind
from repro.concepts.generalization import (
    extract_all_generalization_hierarchies,
    extract_generalization_hierarchy,
)
from repro.concepts.instance_of import (
    extract_all_instance_of_hierarchies,
    extract_instance_of_hierarchy,
)
from repro.odl.parser import parse_schema


class TestGeneralization:
    def test_figure4_student_hierarchy(self, university):
        """Figure 4: the student generalization hierarchy."""
        hierarchy = extract_generalization_hierarchy(university, "Person")
        assert {"Student", "Undergraduate", "Graduate", "Masters",
                "Thesis_Masters", "Non_Thesis_Masters", "Doctoral",
                "Faculty"} <= hierarchy.members

    def test_children_and_parents(self, university):
        hierarchy = extract_generalization_hierarchy(university, "Person")
        assert set(hierarchy.children("Student")) == {
            "Undergraduate", "Graduate"
        }
        assert hierarchy.parents("Non_Thesis_Masters") == ["Masters"]

    def test_depth(self, university):
        hierarchy = extract_generalization_hierarchy(university, "Person")
        # Person -> Student -> Graduate -> Masters -> Thesis_Masters
        assert hierarchy.depth() == 4

    def test_inheritance_paths_root_first(self, university):
        hierarchy = extract_generalization_hierarchy(university, "Person")
        paths = hierarchy.inheritance_paths()
        assert ["Person", "Student", "Graduate", "Masters",
                "Non_Thesis_Masters"] in paths
        assert all(path[0] == "Person" for path in paths)

    def test_roots_detected(self, university):
        hierarchies = extract_all_generalization_hierarchies(university)
        assert [h.root for h in hierarchies] == ["Person"]

    def test_kind_and_identifier(self, university):
        hierarchy = extract_generalization_hierarchy(university, "Person")
        assert hierarchy.kind is ConceptKind.GENERALIZATION
        assert hierarchy.identifier == "gh:Person"

    def test_edges_within_members_only(self):
        schema = parse_schema(
            """
            interface Out {};
            interface A {};
            interface B : A, Out {};
            """,
            name="s",
        )
        hierarchy = extract_generalization_hierarchy(schema, "A")
        assert {(e.subtype, e.supertype) for e in hierarchy.edges} == {
            ("B", "A")
        }

    def test_multi_root_component_yields_two_hierarchies(self):
        schema = parse_schema(
            """
            interface A {};
            interface B {};
            interface C : A, B {};
            """,
            name="s",
        )
        hierarchies = extract_all_generalization_hierarchies(schema)
        assert {h.root for h in hierarchies} == {"A", "B"}
        # Every ISA edge is covered by some hierarchy (reconstruction relies
        # on this).
        covered = {
            (e.subtype, e.supertype) for h in hierarchies for e in h.edges
        }
        assert covered == {("C", "A"), ("C", "B")}


class TestAggregation:
    def test_figure5_house_explosion(self, house):
        """Figure 5: the house aggregation hierarchy."""
        hierarchy = extract_aggregation_hierarchy(house, "House")
        assert {"Structure", "Roof", "Shingle", "Plumbing",
                "Window"} <= hierarchy.members

    def test_parts_of(self, house):
        hierarchy = extract_aggregation_hierarchy(house, "House")
        assert set(hierarchy.parts_of("Roof")) == {
            "Plywood_Decking", "Tar_Paper", "Shingle"
        }

    def test_wholes_of(self, house):
        hierarchy = extract_aggregation_hierarchy(house, "House")
        assert hierarchy.wholes_of("Shingle") == ["Roof"]

    def test_bill_of_materials_shape(self, house):
        hierarchy = extract_aggregation_hierarchy(house, "House")
        listing = hierarchy.bill_of_materials()
        assert listing[0] == (0, "House")
        levels = {name: level for level, name in listing}
        assert levels["Shingle"] == levels["Roof"] + 1

    def test_roots_detected(self, house):
        hierarchies = extract_all_aggregation_hierarchies(house)
        assert [h.root for h in hierarchies] == ["House"]

    def test_kind_and_identifier(self, house):
        hierarchy = extract_aggregation_hierarchy(house, "House")
        assert hierarchy.kind is ConceptKind.AGGREGATION
        assert hierarchy.identifier == "ah:House"

    def test_subtree_extraction(self, house):
        hierarchy = extract_aggregation_hierarchy(house, "Roof")
        assert hierarchy.members == {
            "Roof", "Plywood_Decking", "Tar_Paper", "Shingle"
        }


class TestInstanceOf:
    def test_figure6_software_chain(self, software):
        """Figure 6: the EMSL software version chain."""
        hierarchy = extract_instance_of_hierarchy(software, "Application")
        assert hierarchy.is_linear()
        assert hierarchy.chain() == [
            "Application", "Application_Version",
            "Compiled_Version", "Installed_Version",
        ]

    def test_roots_detected(self, software):
        hierarchies = extract_all_instance_of_hierarchies(software)
        assert [h.root for h in hierarchies] == ["Application"]

    def test_kind_and_identifier(self, software):
        hierarchy = extract_instance_of_hierarchy(software, "Application")
        assert hierarchy.kind is ConceptKind.INSTANCE_OF
        assert hierarchy.identifier == "ih:Application"

    def test_instances_of(self, software):
        hierarchy = extract_instance_of_hierarchy(software, "Application")
        assert hierarchy.instances_of("Application") == ["Application_Version"]

    def test_branched_hierarchy_supported(self):
        schema = parse_schema(
            """
            interface Spec {
              instance_of relationship set<Left> lefts inverse Left::of_spec;
              instance_of relationship set<Right> rights inverse Right::of_spec;
            };
            interface Left { instance_of relationship Spec of_spec inverse Spec::lefts; };
            interface Right { instance_of relationship Spec of_spec inverse Spec::rights; };
            """,
            name="s",
        )
        hierarchy = extract_instance_of_hierarchy(schema, "Spec")
        assert not hierarchy.is_linear()
        with pytest.raises(ValueError):
            hierarchy.chain()
        assert hierarchy.members == {"Spec", "Left", "Right"}
