"""Registry of all modification operations and the Table 1 matrix.

Collects every :class:`~repro.ops.base.SchemaOperation` subclass, checks
admissibility per concept schema type, and regenerates the paper's
Table 1 ("Operations on ODL schema definitions in the context of concept
schema types") from the class metadata.  Tables 2 and 3 (the coverage of
ODL candidates by add/delete/modify operations) are derived from the
same metadata in :mod:`repro.analysis.completeness`.
"""

from __future__ import annotations

from repro.concepts.base import ConceptKind
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.base import InadmissibleOperationError, SchemaOperation
from repro.ops.instance_of_ops import (
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
    ModifyInstanceOfCardinality,
    ModifyInstanceOfOrderBy,
    ModifyInstanceOfTargetType,
)
from repro.ops.operation_ops import (
    AddOperation,
    DeleteOperation,
    ModifyOperation,
    ModifyOperationArgList,
    ModifyOperationExceptionsRaised,
    ModifyOperationReturnType,
)
from repro.ops.part_of_ops import (
    AddPartOfRelationship,
    DeletePartOfRelationship,
    ModifyPartOfCardinality,
    ModifyPartOfOrderBy,
    ModifyPartOfTargetType,
)
from repro.ops.relationship_ops import (
    AddRelationship,
    DeleteRelationship,
    ModifyRelationshipCardinality,
    ModifyRelationshipOrderBy,
    ModifyRelationshipTargetType,
)
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
    ModifyKeyList,
    ModifySupertype,
)

#: Every operation class of the Appendix A grammar, in grammar order.
OPERATION_CLASSES: tuple[type[SchemaOperation], ...] = (
    AddTypeDefinition,
    DeleteTypeDefinition,
    AddSupertype,
    DeleteSupertype,
    ModifySupertype,
    AddExtentName,
    DeleteExtentName,
    ModifyExtentName,
    AddKeyList,
    DeleteKeyList,
    ModifyKeyList,
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeType,
    ModifyAttributeSize,
    AddRelationship,
    DeleteRelationship,
    ModifyRelationshipTargetType,
    ModifyRelationshipCardinality,
    ModifyRelationshipOrderBy,
    AddOperation,
    DeleteOperation,
    ModifyOperation,
    ModifyOperationReturnType,
    ModifyOperationArgList,
    ModifyOperationExceptionsRaised,
    AddPartOfRelationship,
    DeletePartOfRelationship,
    ModifyPartOfTargetType,
    ModifyPartOfCardinality,
    ModifyPartOfOrderBy,
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
    ModifyInstanceOfTargetType,
    ModifyInstanceOfCardinality,
    ModifyInstanceOfOrderBy,
)

#: Lookup by canonical operation name.
OPERATIONS_BY_NAME: dict[str, type[SchemaOperation]] = {
    cls.op_name: cls for cls in OPERATION_CLASSES
}

assert len(OPERATIONS_BY_NAME) == len(OPERATION_CLASSES), "duplicate op_name"


def operation_class(op_name: str) -> type[SchemaOperation]:
    """Return the operation class for a canonical name."""
    try:
        return OPERATIONS_BY_NAME[op_name]
    except KeyError:
        raise InadmissibleOperationError(
            f"unknown operation {op_name!r}"
        ) from None


def is_admissible(operation: SchemaOperation | type[SchemaOperation],
                  kind: ConceptKind) -> bool:
    """Whether the operation may be issued in a *kind* concept schema."""
    return kind in operation.admissible_in


def check_admissible(operation: SchemaOperation, kind: ConceptKind) -> None:
    """Raise :class:`InadmissibleOperationError` unless admissible."""
    if not is_admissible(operation, kind):
        allowed = ", ".join(
            sorted(k.label() for k in operation.admissible_in)
        )
        raise InadmissibleOperationError(
            f"{operation.op_name} is not allowed in a {kind.label()} "
            f"concept schema (allowed in: {allowed})"
        )


def admissible_operations(kind: ConceptKind) -> list[type[SchemaOperation]]:
    """Every operation class admissible in a *kind* concept schema."""
    return [cls for cls in OPERATION_CLASSES if kind in cls.admissible_in]


def table1_matrix() -> list[dict[str, object]]:
    """Regenerate the paper's Table 1 as structured rows.

    Each row covers one (candidate, sub-candidate) pair of the ODL
    grammar and records which of Add/Delete/Modify are available in each
    concept schema type, as single-letter flags ("A", "D", "M").
    Disallowed name modifications are simply absent -- "disallowed
    operations support name equivalence" (Table 1 caption).
    """
    rows: dict[tuple[str, str], dict[str, object]] = {}
    letter = {"add": "A", "delete": "D", "modify": "M"}
    for cls in OPERATION_CLASSES:
        key = (cls.candidate, cls.sub_candidate)
        row = rows.setdefault(
            key,
            {
                "candidate": cls.candidate,
                "sub_candidate": cls.sub_candidate,
                **{kind.value: "" for kind in ConceptKind},
            },
        )
        for kind in cls.admissible_in:
            cell = str(row[kind.value])
            if letter[cls.action] not in cell:
                row[kind.value] = "".join(
                    sorted(cell + letter[cls.action], key="ADM".index)
                )
    return list(rows.values())


def format_table1() -> str:
    """Render Table 1 as aligned text, the way the bench prints it."""
    rows = table1_matrix()
    headers = [
        "Candidate", "Sub-candidate",
        "Wagon wheel", "Generalization", "Aggregation", "Instance-of",
    ]
    kind_order = [
        ConceptKind.WAGON_WHEEL.value,
        ConceptKind.GENERALIZATION.value,
        ConceptKind.AGGREGATION.value,
        ConceptKind.INSTANCE_OF.value,
    ]
    table_rows = [
        [
            str(row["candidate"]), str(row["sub_candidate"]),
            *(str(row[kind]) or "-" for kind in kind_order),
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table_rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in table_rows
    )
    return "\n".join(lines)
