"""Shared benchmark helpers.

Every bench regenerates one of the paper's tables or figures.  Timing is
handled by pytest-benchmark; the regenerated artifact itself (the rows /
series the paper reports) is written to ``benchmarks/reports/<id>.txt``
so it survives output capturing, and is also printed for ``-s`` runs.

On top of the human-readable reports, every bench session merges its
measurements into a machine-readable trajectory file at the repository
root (bench name -> median seconds + schema size) so the perf
trajectory can be compared across PRs.  pytest-benchmark timings are
harvested automatically; hand-timed series (the scaling and spine
benches) contribute through the ``record_bench`` fixture.  All writes go
through one shared helper, :func:`merge_bench_results`, which
*merge-updates* the file: a filtered run (``pytest benchmarks/ -k
spine``) refreshes only its own keys instead of clobbering the sweep.

BENCH_* naming convention
-------------------------

``BENCH_PR<n>.json`` at the repository root holds the measurements a
PR's headline claims rest on, frozen when that PR lands: ``BENCH_PR5``
(validation/spine), ``BENCH_PR6`` (compact core), ``BENCH_PR8``
(columnar core), ``BENCH_PR9`` (copy-on-write forks).  Earlier files
are never rewritten -- they are the
baselines later PRs' floors assert against (CI compares the columnar
compiled-plan point against ``BENCH_PR6.json``).  ``BENCH_JSON`` below
names the file the *current* PR's sessions write; bump it when a new
PR starts a new measurement set, and route any bench that belongs to a
prior set explicitly via ``merge_bench_results(..., path=...)``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"
#: The current PR's trajectory file (see the BENCH_* convention above).
BENCH_JSON = Path(__file__).parent.parent / "BENCH_PR9.json"

#: name -> {"median_seconds": float, "types": int | None} from hand-timed
#: benches, merged with pytest-benchmark's own stats at session end.
_MANUAL_RECORDS: dict[str, dict] = {}


def merge_bench_results(results: dict[str, dict], path: Path = BENCH_JSON) -> None:
    """Merge *results* into the trajectory file, keeping other keys.

    The single writer every bench measurement funnels through: reads the
    existing JSON (tolerating a missing or corrupt file), overlays the
    new measurements key by key, and writes the result back sorted.
    """
    existing: dict[str, dict] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            existing = {}
    existing.update(results)
    path.write_text(
        json.dumps(dict(sorted(existing.items())), indent=2) + "\n",
        encoding="utf-8",
    )


@pytest.fixture
def report():
    """Write one regenerated paper artifact to the reports directory."""

    def write(artifact_id: str, text: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        path = REPORTS_DIR / f"{artifact_id}.txt"
        path.write_text(text.rstrip() + "\n", encoding="utf-8")
        print(f"\n--- {artifact_id} (also at {path}) ---")
        print(text)

    return write


@pytest.fixture
def record_bench():
    """Record one hand-timed measurement for the bench trajectory JSON."""

    def record(name: str, median_seconds: float, types: int | None = None) -> None:
        _MANUAL_RECORDS[name] = {
            "median_seconds": median_seconds,
            "types": types,
        }

    return record


def _benchmark_median(bench) -> float | None:
    """Median seconds out of a pytest-benchmark stats object."""
    stats = getattr(bench, "stats", None)
    median = getattr(stats, "median", None)
    if median is None:
        inner = getattr(stats, "stats", None)
        median = getattr(inner, "median", None)
    return median


def pytest_sessionfinish(session, exitstatus):
    """Merge all measurements into the machine-readable trajectory file."""
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return  # the smoke tripwire must not clobber full-sweep medians
    results: dict[str, dict] = dict(_MANUAL_RECORDS)
    bench_session = getattr(session.config, "_benchmarksession", None)
    for bench in getattr(bench_session, "benchmarks", []) or []:
        median = _benchmark_median(bench)
        if median is None:
            continue
        extra = getattr(bench, "extra_info", {}) or {}
        results[bench.name] = {
            "median_seconds": median,
            "types": extra.get("types"),
        }
    if not results:
        return  # collect-only / filtered runs must not touch real data
    merge_bench_results(results)
