"""Spine pass: mutators emit, open with the CoW barrier, compiled plans
mutate only through the sanctioned calls.

Migrated from ``tools/check_mutators.py`` (which is now a thin shim over
this module), behaviour-identical but sourced from the shared
:class:`~repro.lint.loader.Codebase` load:

* ``spine-emission`` -- every public mutator method (``add_*`` /
  ``remove_*`` / ``replace_*`` / ``set_*`` / ``insert_*`` /
  ``reorder_*`` / ``touch*``) on :class:`InterfaceDef` / :class:`Schema`
  reaches ``self._emit(...)`` or ``self._log.emit(...)``, directly or
  through same-class methods (fixpoint over ``self.`` calls).
* ``cow-barrier`` -- every public ``InterfaceDef`` mutator runs
  ``self._cow_barrier()`` as its literal first statement (after the
  docstring), so borrowers settle before the first divergent write
  (DESIGN.md 5j).
* ``compiled-plan`` -- ``Workspace.apply_plan_compiled`` calls
  ``expand_applying`` and ``self._note_scopes``, and no reachable
  ``Workspace`` method calls a mutator-prefixed method or writes a
  container by subscript (DESIGN.md 5g).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.loader import Codebase
from repro.lint.registry import LintContext, register_pass

MUTATOR_PREFIXES = (
    "add_",
    "remove_",
    "replace_",
    "set_",
    "insert_",
    "reorder_",
    "touch",
)

#: module -> class whose public mutators must emit spine records
EMISSION_TARGETS = {
    "repro.model.interface": "InterfaceDef",
    "repro.model.schema": "Schema",
}

#: module -> class whose public mutators must run the CoW fault hook first
COW_BARRIER_TARGETS = {"repro.model.interface": "InterfaceDef"}

COMPILED_MODULE = "repro.repository.workspace"
COMPILED_CLASS = "Workspace"
COMPILED_ENTRY = "apply_plan_compiled"


def is_public_mutator(name: str) -> bool:
    return not name.startswith("_") and name.startswith(MUTATOR_PREFIXES)


def _is_emit_call(node: ast.Call) -> bool:
    """True for ``self._emit(...)`` or ``self._log.emit(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "_emit":
        return isinstance(func.value, ast.Name) and func.value.id == "self"
    if func.attr == "emit":
        inner = func.value
        return (
            isinstance(inner, ast.Attribute)
            and inner.attr == "_log"
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"
        )
    return False


def _self_calls(function: ast.FunctionDef) -> set[str]:
    """Names of other ``self.method(...)`` calls inside *function*."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                names.add(target.attr)
    return names


def _own_methods(
    codebase: Codebase, module_name: str, class_name: str
) -> dict[str, ast.FunctionDef]:
    node = codebase.class_in(module_name, class_name)
    if node is None:
        raise LookupError(f"class {class_name} not found in {module_name}")
    return {
        item.name: item for item in node.body if isinstance(item, ast.FunctionDef)
    }


def _emitting_methods(methods: dict[str, ast.FunctionDef]) -> set[str]:
    """Fixpoint: methods that reach an emit call through ``self.``."""
    emitting = {
        name
        for name, function in methods.items()
        if any(
            isinstance(node, ast.Call) and _is_emit_call(node)
            for node in ast.walk(function)
        )
    }
    changed = True
    while changed:
        changed = False
        for name, function in methods.items():
            if name in emitting:
                continue
            if _self_calls(function) & emitting:
                emitting.add(name)
                changed = True
    return emitting


def _reachable_methods(
    methods: dict[str, ast.FunctionDef], entry: str
) -> dict[str, ast.FunctionDef]:
    """*entry* plus every same-class method reachable via ``self.``."""
    frontier = [entry]
    reached: dict[str, ast.FunctionDef] = {}
    while frontier:
        name = frontier.pop()
        if name in reached or name not in methods:
            continue
        reached[name] = methods[name]
        frontier.extend(_self_calls(methods[name]))
    return reached


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _starts_with_cow_barrier(function: ast.FunctionDef) -> bool:
    """True when ``self._cow_barrier()`` is the first real statement."""
    body = function.body
    index = 0
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        index = 1  # skip the docstring
    if index >= len(body):
        return False
    statement = body[index]
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Call)
        and isinstance(statement.value.func, ast.Attribute)
        and statement.value.func.attr == "_cow_barrier"
        and isinstance(statement.value.func.value, ast.Name)
        and statement.value.func.value.id == "self"
    )


def _path_of(codebase: Codebase, module_name: str) -> str:
    info = codebase.module(module_name)
    return info.path if info is not None else module_name


def emission_findings(
    codebase: Codebase, module_name: str, class_name: str
) -> list[Finding]:
    """Public mutators of one class that never reach an emit call."""
    methods = _own_methods(codebase, module_name, class_name)
    emitting = _emitting_methods(methods)
    path = _path_of(codebase, module_name)
    findings: list[Finding] = []
    for name in sorted(methods):
        if not is_public_mutator(name):
            continue
        if name not in emitting:
            findings.append(
                Finding(
                    rule="spine-emission",
                    path=path,
                    line=methods[name].lineno,
                    symbol=f"{module_name}:{class_name}.{name}",
                    message=(
                        "mutates without emitting a MutationRecord "
                        "(self._emit / self._log.emit unreachable)"
                    ),
                )
            )
    return findings


def count_public_mutators(
    codebase: Codebase, module_name: str, class_name: str
) -> int:
    methods = _own_methods(codebase, module_name, class_name)
    return sum(1 for name in methods if is_public_mutator(name))


def cow_findings(
    codebase: Codebase, module_name: str, class_name: str
) -> list[Finding]:
    """Public mutators that do not fault CoW borrowers first.

    The barrier must be the *first* statement: a mutator that validates,
    raises, or -- worse -- writes before settling would let a fork or
    snapshot observe (or miss) a half-applied change.
    """
    methods = _own_methods(codebase, module_name, class_name)
    path = _path_of(codebase, module_name)
    findings: list[Finding] = []
    for name in sorted(methods):
        if not is_public_mutator(name):
            continue
        if not _starts_with_cow_barrier(methods[name]):
            findings.append(
                Finding(
                    rule="cow-barrier",
                    path=path,
                    line=methods[name].lineno,
                    symbol=f"{module_name}:{class_name}.{name}",
                    message=(
                        "does not run self._cow_barrier() as its first "
                        "statement; the mutator bypasses the CoW fault hook"
                    ),
                )
            )
    return findings


def compiled_plan_findings(
    codebase: Codebase,
    module_name: str = COMPILED_MODULE,
    class_name: str = COMPILED_CLASS,
    entry_name: str = COMPILED_ENTRY,
) -> list[Finding]:
    """The compiled-plan path mutates only through the sanctioned calls.

    The entry must reach ``expand_applying`` (every mutation is a
    ``step.apply`` inside it, emitting the same records the per-op path
    emits) and ``self._note_scopes`` (the same per-step scope notes).
    Conversely, no method reachable from it may call a mutator-prefixed
    method or store/delete through a subscript.
    """
    methods = _own_methods(codebase, module_name, class_name)
    path = _path_of(codebase, module_name)
    symbol_base = f"{module_name}:{class_name}"
    if entry_name not in methods:
        return [
            Finding(
                rule="compiled-plan",
                path=path,
                line=1,
                symbol=f"{symbol_base}.{entry_name}",
                message=f"{class_name}.{entry_name} not found",
            )
        ]
    entry = methods[entry_name]
    findings: list[Finding] = []
    called = {
        _call_name(node)
        for node in ast.walk(entry)
        if isinstance(node, ast.Call)
    }
    for required in ("expand_applying", "_note_scopes"):
        if required not in called:
            findings.append(
                Finding(
                    rule="compiled-plan",
                    path=path,
                    line=entry.lineno,
                    symbol=f"{symbol_base}.{entry_name}",
                    message=(
                        f"no longer calls {required}; the compiled pass must "
                        "mutate through expand_applying and note each step's "
                        "scope"
                    ),
                )
            )
    for name, function in sorted(_reachable_methods(methods, entry_name).items()):
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                target = _call_name(node)
                if target is not None and target.startswith(MUTATOR_PREFIXES):
                    findings.append(
                        Finding(
                            rule="compiled-plan",
                            path=path,
                            line=node.lineno,
                            symbol=f"{symbol_base}.{name}",
                            message=(
                                f"(reachable from {entry_name}) calls mutator "
                                f"{target!r}; compiled plans must mutate only "
                                "via expand_applying"
                            ),
                        )
                    )
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, ast.Subscript):
                    findings.append(
                        Finding(
                            rule="compiled-plan",
                            path=path,
                            line=node.lineno,
                            symbol=f"{symbol_base}.{name}",
                            message=(
                                f"(reachable from {entry_name}) writes a "
                                "container by subscript; compiled plans must "
                                "not mutate model state outside expand_applying"
                            ),
                        )
                    )
    return findings


@register_pass(
    "spine",
    rules=("spine-emission", "cow-barrier", "compiled-plan"),
    contract=(
        "every public mutator emits a MutationRecord, InterfaceDef mutators "
        "open with the CoW barrier, and compiled plans mutate only via "
        "expand_applying + _note_scopes"
    ),
)
def run(context: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for module_name, class_name in EMISSION_TARGETS.items():
        findings.extend(emission_findings(context.codebase, module_name, class_name))
    for module_name, class_name in COW_BARRIER_TARGETS.items():
        findings.extend(cow_findings(context.codebase, module_name, class_name))
    findings.extend(compiled_plan_findings(context.codebase))
    return findings
