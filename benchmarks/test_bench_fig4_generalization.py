"""Figure 4: the student generalization hierarchy.

Extracts the rooted hierarchy and checks the figure's inheritance paths
-- in particular that "a Non-thesis masters student object inherits the
attributes and operations defined on a Graduate student object type".
"""

from repro.catalog import university_schema
from repro.concepts.generalization import extract_generalization_hierarchy
from repro.designer.render import render_generalization

SCHEMA = university_schema()


def test_bench_fig4_generalization(benchmark, report):
    hierarchy = benchmark(extract_generalization_hierarchy, SCHEMA, "Person")
    report("fig4_student_generalization", render_generalization(hierarchy))

    assert {"Student", "Undergraduate", "Graduate", "Masters",
            "Thesis_Masters", "Non_Thesis_Masters",
            "Doctoral"} <= hierarchy.members
    # The figure's point: Non-thesis masters inherits from Graduate.
    path = ["Person", "Student", "Graduate", "Masters", "Non_Thesis_Masters"]
    assert path in hierarchy.inheritance_paths()
    inherited = SCHEMA.inherited_attributes("Non_Thesis_Masters")
    assert inherited["advisor_name"] == "Graduate"
    assert inherited["gpa"] == "Student"
    assert inherited["name"] == "Person"
