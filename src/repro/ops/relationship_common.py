"""Shared mechanics for relationship operations of all three kinds.

Association, part-of, and instance-of relationship ends share storage and
inverse-pairing rules; the operation classes for each kind
(:mod:`repro.ops.relationship_ops`, :mod:`repro.ops.part_of_ops`,
:mod:`repro.ops.instance_of_ops`) are thin subclasses of the generic
bases defined here, differing in the relationship kind they police and
the concept schema types that may issue them (Table 1).

The heart of the module is :func:`retarget_end`, the primitive behind
``modify_relationship_target_type`` and its part-of / instance-of
variants.  It implements exactly the paper's Figure 8 example::

    modify_relationship_target_type(Employee, works_in_a, Person)

    Department: relationship set<Employee> has inverse Employee::works_in_a
    Employee:   relationship Department works_in_a inverse Department::has
      -- becomes --
    Department: relationship set<Person> has inverse Person::works_in_a
    Person:     relationship Department works_in_a inverse Department::has

i.e. one end is re-typed and the paired inverse declaration physically
moves to the new participant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.model.mutation import Aspect, aspect_for_kind
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import CollectionType, NamedType, TypeRef, set_of
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    OperationContext,
    SchemaOperation,
    Undo,
    render_list,
)
from repro.ops.effects import WILDCARD


def get_end_of_kind(
    schema: Schema, typename: str, path: str, kind: RelationshipKind
) -> RelationshipEnd:
    """Fetch ``typename::path`` and check it is of the expected kind."""
    end = schema.get(typename).get_relationship(path)
    if end.kind is not kind:
        raise ConstraintViolation(
            f"{typename}::{path} is a {end.kind.value} relationship; this "
            f"operation handles {kind.value} relationships"
        )
    return end


def _property_name_free(interface: InterfaceDef, name: str) -> bool:
    return name not in interface.attributes and name not in interface.relationships


def _check_target_shape(target: TypeRef, where: str) -> str:
    """Targets must be an interface or a collection of one; return its name."""
    if isinstance(target, NamedType):
        return target.name
    if isinstance(target, CollectionType) and isinstance(target.element, NamedType):
        return target.element.name
    raise ConstraintViolation(
        f"{where}: relationship target must be an interface or a "
        f"collection of interfaces, got {target}"
    )


def check_hierarchy_stays_acyclic(
    schema: Schema,
    kind: RelationshipKind,
    added_edge: tuple[str, str],
    dropped_edge: tuple[str, str] | None = None,
    where: str = "",
) -> None:
    """Reject a part-of / instance-of edge that would close a cycle.

    Part-of and instance-of relationships form implicit 1:N hierarchies
    (Section 3.1): the aggregation and instance-of graphs must stay
    acyclic, exactly like the generalization hierarchy.  *added_edge* is
    the prospective (one-side, many-side) edge -- (whole, part) or
    (generic, instance); *dropped_edge* is an existing edge the same
    operation removes (re-targeting moves an edge, it does not add one).
    """
    one_side, many_side = added_edge
    label = "aggregation" if kind is RelationshipKind.PART_OF else "instance-of"
    if one_side == many_side:
        raise ConstraintViolation(
            f"{where}: {one_side!r} cannot be its own "
            f"{'part' if kind is RelationshipKind.PART_OF else 'instance'} "
            f"(the {label} hierarchy must stay acyclic)"
        )
    # A cycle appears iff the new edge's one-side is already reachable
    # from its many-side along existing edges.  Every edge of the
    # hierarchy is derived from its to-many end's owner (see
    # ``scan_link_edges``), so a visited node's successors are read off
    # that node's own end list -- the walk touches only the reachable
    # subgraph instead of rebuilding the whole-schema edge listing.
    interfaces = schema.interfaces
    drop_one, drop_many = dropped_edge if dropped_edge is not None else (
        None,
        None,
    )
    frontier = [many_side]
    seen: set[str] = set()
    while frontier:
        current = frontier.pop()
        if current == one_side:
            raise ConstraintViolation(
                f"{where}: adding this {label} link would close a cycle "
                f"({one_side!r} is already a transitive "
                f"{'part' if kind is RelationshipKind.PART_OF else 'instance'}"
                f" of {many_side!r})"
            )
        if current in seen:
            continue
        seen.add(current)
        interface = interfaces.get(current)
        if interface is None:
            continue
        # One occurrence of *dropped_edge* is being moved by this same
        # operation and must not count (mirrors ``edges.remove``).
        skip_pending = current == drop_one
        for end in interface.relationships_of_kind(kind):
            if end.is_to_many:
                target = end.target_type
                if skip_pending and target == drop_many:
                    skip_pending = False
                    continue
                frontier.append(target)


def default_inverse_target(owner: str, added_end: RelationshipEnd) -> TypeRef:
    """Target for an auto-created inverse end.

    Associations default to a to-one inverse (1:N seen from the owner);
    part-of and instance-of must complement the added end so the implicit
    1:N holds: a to-one (to-whole / to-generic) end gets a to-many
    inverse.
    """
    if added_end.kind is RelationshipKind.ASSOCIATION:
        return NamedType(owner)
    if added_end.is_to_many:
        return NamedType(owner)
    return set_of(owner)


class RelationshipOperation(SchemaOperation):
    """Base of every relationship operation, scoping dirt by kind.

    Concrete subclasses declare ``kind``; the touch-aspect scope the
    incremental validator keys dirty-set derivation off follows from it
    automatically, so the fifteen thin kind-specific classes need not
    repeat it.
    """

    kind: ClassVar[RelationshipKind]

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        kind = getattr(cls, "kind", None)
        if kind is not None:
            cls.touched_aspects = frozenset({aspect_for_kind(kind)})

    def _kind_aspect(self) -> Aspect:
        """The relationship-end aspect this operation's kind maps to."""
        return aspect_for_kind(self.kind)


@dataclass(frozen=True, eq=False)
class AddRelationshipBase(RelationshipOperation):
    """Generic ``add_*_relationship`` over one relationship kind.

    Adds the end declared in ``typename``; when the declared inverse does
    not exist yet in the target type, a complementary inverse end is
    created automatically so the schema stays structurally valid after
    every operation (the created end is part of the operation's impact).
    """

    kind: ClassVar[RelationshipKind]

    typename: str
    target: TypeRef
    traversal_path: str
    inverse_type: str
    inverse_name: str
    order_by: tuple[str, ...] = ()

    def _build_end(self) -> RelationshipEnd:
        return RelationshipEnd(
            self.traversal_path, self.target, self.inverse_type,
            self.inverse_name, self.kind, tuple(self.order_by),
        )

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        owner = schema.get(self.typename)
        where = f"{self.typename}::{self.traversal_path}"
        target_name = _check_target_shape(self.target, where)
        target_interface = schema.get(target_name)
        if not _property_name_free(owner, self.traversal_path):
            raise ConstraintViolation(
                f"{self.typename!r} already has a property "
                f"{self.traversal_path!r}"
            )
        if self.inverse_type != target_name:
            raise ConstraintViolation(
                f"{where}: the inverse path must live in the target type "
                f"{target_name!r}, not {self.inverse_type!r}"
            )
        end = self._build_end()
        self._check_order_by(schema, target_name)
        self._check_acyclic(schema)
        inverse = target_interface.relationships.get(self.inverse_name)
        if inverse is None:
            if not _property_name_free(target_interface, self.inverse_name):
                raise ConstraintViolation(
                    f"{target_name!r} already has a non-relationship "
                    f"property {self.inverse_name!r}"
                )
            return
        # The designer declared the other direction first: it must pair up.
        if inverse.kind is not self.kind:
            raise ConstraintViolation(
                f"{where}: existing inverse {target_name}::{self.inverse_name} "
                f"is {inverse.kind.value}, not {self.kind.value}"
            )
        if inverse.target_type != self.typename or inverse.inverse_name != self.traversal_path:
            raise ConstraintViolation(
                f"{where}: existing {target_name}::{self.inverse_name} does "
                f"not point back at {self.typename}::{self.traversal_path}"
            )
        if self.kind is not RelationshipKind.ASSOCIATION:
            if end.is_to_many == inverse.is_to_many:
                raise ConstraintViolation(
                    f"{where}: a {self.kind.value} relationship is "
                    "implicitly 1:N; exactly one end may be to-many"
                )

    def _check_acyclic(self, schema: Schema) -> None:
        if self.kind is RelationshipKind.ASSOCIATION:
            return
        end = self._build_end()
        target_name = _check_target_shape(
            self.target, f"{self.typename}::{self.traversal_path}"
        )
        edge = (
            (self.typename, target_name)
            if end.is_to_many
            else (target_name, self.typename)
        )
        check_hierarchy_stays_acyclic(
            schema, self.kind, edge,
            where=f"{self.typename}::{self.traversal_path}",
        )

    def _check_order_by(self, schema: Schema, target_name: str) -> None:
        if not self.order_by:
            return
        target = schema.get(target_name)
        available = set(target.attributes)
        available.update(schema.inherited_attributes(target_name))
        for attr_name in self.order_by:
            if attr_name not in available:
                raise ConstraintViolation(
                    f"order_by names unknown attribute {attr_name!r} of "
                    f"{target_name!r}"
                )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        owner = schema.edit(self.typename)
        target_interface = schema.edit(self.inverse_type)
        end = self._build_end()
        owner.add_relationship(end)
        created_inverse = False
        if self.inverse_name not in target_interface.relationships:
            target_interface.add_relationship(
                RelationshipEnd(
                    self.inverse_name,
                    default_inverse_target(self.typename, end),
                    self.typename,
                    self.traversal_path,
                    self.kind,
                )
            )
            created_inverse = True

        def undo() -> None:
            schema.edit(self.typename).remove_relationship(self.traversal_path)
            if created_inverse:
                schema.edit(self.inverse_type).remove_relationship(self.inverse_name)

        return undo

    def arguments(self) -> tuple[str, ...]:
        args = [
            self.typename,
            str(self.target),
            self.traversal_path,
            f"{self.inverse_type}::{self.inverse_name}",
        ]
        if self.order_by:
            args.append(render_list(self.order_by))
        return tuple(args)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename, self.inverse_type)

    def required_names(self) -> tuple[str, ...]:
        # validate resolves the owner and the shape-derived target name;
        # a malformed target shape fails for its own (static) reason.
        names = [self.typename]
        if isinstance(self.target, NamedType):
            names.append(self.target.name)
        elif isinstance(self.target, CollectionType) and isinstance(
            self.target.element, NamedType
        ):
            names.append(self.target.element.name)
        return tuple(dict.fromkeys(names))

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        aspect = self._kind_aspect()
        cells = {
            (self.typename, Aspect.ATTRS),
            (self.typename, aspect),
            (self.inverse_type, Aspect.ATTRS),
            (self.inverse_type, aspect),
        }
        if self.kind is not RelationshipKind.ASSOCIATION:
            # The acyclicity check walks the whole implicit hierarchy.
            cells.add((WILDCARD, aspect))
        if self.order_by:
            # Order-by attributes resolve through the inheritance closure.
            cells.add((WILDCARD, Aspect.ATTRS))
            cells.add((WILDCARD, Aspect.ISA))
        return frozenset(cells)


@dataclass(frozen=True, eq=False)
class DeleteRelationshipBase(RelationshipOperation):
    """Generic ``delete_*_relationship``.

    Removes the named end *and* its paired inverse declaration -- a lone
    end would leave the schema structurally invalid, so the pair is the
    unit of deletion (the removed inverse is part of the impact).
    """

    kind: ClassVar[RelationshipKind]

    typename: str
    traversal_path: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        get_end_of_kind(schema, self.typename, self.traversal_path, self.kind)

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        owner = schema.edit(self.typename)
        end = owner.remove_relationship(self.traversal_path)
        inverse_owner: InterfaceDef | None = None
        inverse_end: RelationshipEnd | None = None
        if end.inverse_type in schema:
            candidate_owner = schema.edit(end.inverse_type)
            candidate = candidate_owner.relationships.get(end.inverse_name)
            if (
                candidate is not None
                and candidate.target_type == self.typename
                and candidate.inverse_name == self.traversal_path
            ):
                inverse_owner = candidate_owner
                inverse_end = candidate_owner.remove_relationship(end.inverse_name)

        def undo() -> None:
            schema.edit(self.typename).add_relationship(end)
            if inverse_owner is not None and inverse_end is not None:
                schema.edit(inverse_owner.name).add_relationship(inverse_end)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.traversal_path)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # The paired inverse lives in the end's (statically unknown)
        # target type; the wildcard keeps the footprint honest.
        aspect = self._kind_aspect()
        return frozenset({(self.typename, aspect), (WILDCARD, aspect)})

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return self.written_footprint()


def retarget_end(
    schema: Schema,
    owner_name: str,
    path: str,
    new_target_name: str,
    kind: RelationshipKind,
    context: OperationContext,
    check_only: bool = False,
) -> Undo | None:
    """Re-type ``owner::path`` and move its inverse declaration (Fig. 8).

    Semantic stability requires the old and new targets to lie on one
    generalization path of the reference schema.
    """
    end = get_end_of_kind(schema, owner_name, path, kind)
    old_target_name = end.target_type
    if new_target_name == old_target_name:
        raise ConstraintViolation(
            f"{owner_name}::{path} already targets {new_target_name!r}"
        )
    new_target = schema.get(new_target_name)
    context.check_isa_related(
        schema, old_target_name, new_target_name,
        f"re-target of {owner_name}::{path}",
    )
    old_target = schema.get(old_target_name)
    inverse = old_target.relationships.get(end.inverse_name)
    if (
        inverse is None
        or inverse.target_type != owner_name
        or inverse.inverse_name != path
    ):
        raise ConstraintViolation(
            f"{owner_name}::{path}: inverse declaration "
            f"{old_target_name}::{end.inverse_name} is missing or mismatched"
        )
    if not _property_name_free(new_target, end.inverse_name):
        raise ConstraintViolation(
            f"{new_target_name!r} already has a property "
            f"{end.inverse_name!r}; the inverse path cannot move there"
        )
    if kind is not RelationshipKind.ASSOCIATION:
        if end.is_to_many:
            added = (owner_name, new_target_name)
            dropped = (owner_name, old_target_name)
        else:
            added = (new_target_name, owner_name)
            dropped = (old_target_name, owner_name)
        check_hierarchy_stays_acyclic(
            schema, kind, added, dropped, where=f"{owner_name}::{path}"
        )
    if check_only:
        return None

    owner = schema.edit(owner_name)
    new_end = end.with_target_type(new_target_name).with_inverse(
        new_target_name, end.inverse_name
    )
    owner.replace_relationship(new_end)
    moved = schema.edit(old_target_name).remove_relationship(end.inverse_name)
    schema.edit(new_target_name).add_relationship(moved)

    def undo() -> None:
        schema.edit(owner_name).replace_relationship(end)
        schema.edit(new_target_name).remove_relationship(moved.name)
        schema.edit(old_target_name).add_relationship(moved)

    return undo


@dataclass(frozen=True, eq=False)
class ModifyTargetTypeBase(RelationshipOperation):
    """Generic ``modify_*_target_type``.

    Two call shapes are accepted, following the paper itself:

    * the Appendix A grammar form
      ``(typename, path, old_target_type, new_target_type)`` -- re-target
      the end declared in ``typename``;
    * the Section 3.4 prose form ``(typename, path, new_target_type)``
      (``old_target_type`` omitted) -- when ``new_target_type`` is not a
      generalization relative of the end's current target but *is* one of
      ``typename``, the operation is read as *moving the declared end
      itself* to ``new_target_type``, which is exactly a re-target of its
      inverse end (the Figure 8 reading of
      ``modify_relationship_target_type(Employee, works_in_a, Person)``).
    """

    kind: ClassVar[RelationshipKind]

    typename: str
    traversal_path: str
    new_target_type: str
    old_target_type: str | None = None

    def _resolve(self, schema: Schema, context: OperationContext) -> tuple[str, str]:
        """Return (owner, path) of the end whose target actually changes."""
        end = get_end_of_kind(schema, self.typename, self.traversal_path, self.kind)
        schema.get(self.new_target_type)
        if self.old_target_type is not None:
            if end.target_type != self.old_target_type:
                raise ConstraintViolation(
                    f"{self.typename}::{self.traversal_path} targets "
                    f"{end.target_type!r}, not {self.old_target_type!r}"
                )
            return (self.typename, self.traversal_path)
        hierarchy = context.stability_hierarchy(schema)

        def related(first: str, second: str) -> bool:
            if first in hierarchy and second in hierarchy:
                return hierarchy.isa_related(first, second)
            return schema.isa_related(first, second)

        if related(end.target_type, self.new_target_type):
            return (self.typename, self.traversal_path)
        if related(self.typename, self.new_target_type):
            # Move form: this end itself migrates; re-target the inverse.
            return (end.inverse_type, end.inverse_name)
        raise ConstraintViolation(
            f"{self.new_target_type!r} is a generalization relative of "
            f"neither {end.target_type!r} nor {self.typename!r}"
        )

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        owner, path = self._resolve(schema, context)
        retarget_end(
            schema, owner, path, self.new_target_type, self.kind, context,
            check_only=True,
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        owner, path = self._resolve(schema, context)
        undo = retarget_end(
            schema, owner, path, self.new_target_type, self.kind, context
        )
        assert undo is not None
        return undo

    def arguments(self) -> tuple[str, ...]:
        if self.old_target_type is None:
            return (self.typename, self.traversal_path, self.new_target_type)
        return (
            self.typename, self.traversal_path,
            self.old_target_type, self.new_target_type,
        )

    def affected_types(self) -> tuple[str, ...]:
        affected = [self.typename, self.new_target_type]
        if self.old_target_type is not None:
            affected.append(self.old_target_type)
        return tuple(affected)

    def required_names(self) -> tuple[str, ...]:
        # The old target is only matched against the end's declaration;
        # it need not resolve.  The resolved end's inverse may live in a
        # third type, so writes stay wildcard below.
        return tuple(dict.fromkeys((self.typename, self.new_target_type)))

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        aspect = self._kind_aspect()
        return frozenset({
            (self.typename, aspect),
            (self.new_target_type, aspect),
            (WILDCARD, aspect),
        })

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return self.written_footprint() | frozenset({
            (WILDCARD, Aspect.ISA),
            (self.new_target_type, Aspect.ATTRS),
        })


@dataclass(frozen=True, eq=False)
class ModifyCardinalityBase(RelationshipOperation):
    """Generic ``modify_*_cardinality``.

    Changes the target-of-path shape of one end (``set<T>`` -> ``list<T>``,
    ``T`` -> ``set<T>``, ...) without re-targeting it.  For part-of and
    instance-of relationships the grammar restricts the operation to the
    to-many end and the end must stay to-many, preserving the implicit
    1:N.
    """

    kind: ClassVar[RelationshipKind]

    typename: str
    traversal_path: str
    old_target: TypeRef
    new_target: TypeRef

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        end = get_end_of_kind(schema, self.typename, self.traversal_path, self.kind)
        where = f"{self.typename}::{self.traversal_path}"
        if end.target != self.old_target:
            raise ConstraintViolation(
                f"{where} has target {end.target}, not {self.old_target}"
            )
        new_name = _check_target_shape(self.new_target, where)
        if new_name != end.target_type:
            raise ConstraintViolation(
                f"{where}: modify cardinality may not re-target the "
                f"relationship ({end.target_type!r} -> {new_name!r}); use "
                "the target-type operation"
            )
        if self.kind is not RelationshipKind.ASSOCIATION:
            if not end.is_to_many:
                raise ConstraintViolation(
                    f"{where}: cardinality of a {self.kind.value} "
                    "relationship may only change on its to-many end"
                )
            if not isinstance(self.new_target, CollectionType):
                raise ConstraintViolation(
                    f"{where}: the to-many end of a {self.kind.value} "
                    "relationship must keep a collection target (implicit 1:N)"
                )
        if not isinstance(self.new_target, CollectionType) and end.order_by:
            raise ConstraintViolation(
                f"{where}: drop the order_by list before making the end "
                "to-one"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        owner = schema.edit(self.typename)
        end = owner.get_relationship(self.traversal_path)
        owner.replace_relationship(end.with_target(self.new_target))

        def undo() -> None:
            schema.edit(self.typename).replace_relationship(end)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.traversal_path,
            str(self.old_target), str(self.new_target),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)


@dataclass(frozen=True, eq=False)
class ModifyOrderByBase(RelationshipOperation):
    """Generic ``modify_*_order_by`` over one relationship kind."""

    kind: ClassVar[RelationshipKind]

    typename: str
    traversal_path: str
    old_order_by: tuple[str, ...]
    new_order_by: tuple[str, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        end = get_end_of_kind(schema, self.typename, self.traversal_path, self.kind)
        where = f"{self.typename}::{self.traversal_path}"
        if end.order_by != tuple(self.old_order_by):
            raise ConstraintViolation(
                f"{where} has order_by {end.order_by!r}, not "
                f"{tuple(self.old_order_by)!r}"
            )
        if self.new_order_by and not end.is_to_many:
            raise ConstraintViolation(
                f"{where} is to-one; order_by only applies to to-many ends"
            )
        if self.new_order_by and end.target_type in schema:
            target = schema.get(end.target_type)
            available = set(target.attributes)
            available.update(schema.inherited_attributes(end.target_type))
            for attr_name in self.new_order_by:
                if attr_name not in available:
                    raise ConstraintViolation(
                        f"{where}: order_by names unknown attribute "
                        f"{attr_name!r} of {end.target_type!r}"
                    )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        owner = schema.edit(self.typename)
        end = owner.get_relationship(self.traversal_path)
        owner.replace_relationship(end.with_order_by(tuple(self.new_order_by)))

        def undo() -> None:
            schema.edit(self.typename).replace_relationship(end)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.traversal_path,
            render_list(self.old_order_by), render_list(self.new_order_by),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        cells = {(self.typename, self._kind_aspect())}
        if self.new_order_by:
            # The new ordering's attributes resolve through the target's
            # inheritance closure.
            cells.add((WILDCARD, Aspect.ATTRS))
            cells.add((WILDCARD, Aspect.ISA))
        return frozenset(cells)
