"""Translation to the relational model (SQL DDL).

Section 5: "Our approach is not dependent on a DBMS or even a data
model ... there has been work, for example, on modeling in an
object-oriented model and translating the results to other models such
as entity relationship diagrams and relational models."  This module is
that translation for the relational target, so a custom schema produced
by shrink-wrap-based design can be carried straight into a SQL DBMS.

Mapping rules (the classic table-per-class strategy):

* every interface becomes a table; its local attributes become columns;
* generalization: the subtype table holds the supertype's primary key
  as both its own primary key and a foreign key (table-per-class);
* the first declared key becomes the PRIMARY KEY, remaining keys become
  UNIQUE constraints; a keyless root table gets a surrogate ``<name>_id``;
* a to-one relationship end becomes a foreign key column on the owner;
* a many-to-many association becomes a junction table;
* part-of and instance-of links put the foreign key on the *part* /
  *instance* side with ``ON DELETE CASCADE`` — the implicit existence
  dependency of those relationship kinds;
* collection-typed attributes become child tables (the type-constructor
  variation of aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import CollectionType, NamedType, ScalarType, TypeRef

#: Scalar-to-SQL type mapping.
_SQL_TYPES = {
    "boolean": "BOOLEAN",
    "char": "CHAR",
    "octet": "SMALLINT",
    "short": "SMALLINT",
    "long": "INTEGER",
    "float": "REAL",
    "double": "DOUBLE PRECISION",
    "string": "VARCHAR",
    "date": "DATE",
    "time": "TIME",
    "timestamp": "TIMESTAMP",
    "interval": "INTERVAL",
}


@dataclass
class Column:
    """One column of a translated table."""

    name: str
    sql_type: str
    nullable: bool = True

    def render(self) -> str:
        suffix = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.sql_type}{suffix}"


@dataclass
class ForeignKey:
    """One foreign-key constraint."""

    columns: tuple[str, ...]
    referenced_table: str
    referenced_columns: tuple[str, ...]
    on_delete_cascade: bool = False

    def render(self) -> str:
        text = (
            f"FOREIGN KEY ({', '.join(self.columns)}) REFERENCES "
            f"{self.referenced_table} ({', '.join(self.referenced_columns)})"
        )
        if self.on_delete_cascade:
            text += " ON DELETE CASCADE"
        return text


@dataclass
class Table:
    """One translated table."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()
    unique_keys: list[tuple[str, ...]] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    comment: str = ""

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def render(self) -> str:
        lines = [f"CREATE TABLE {self.name} ("]
        body: list[str] = [column.render() for column in self.columns]
        if self.primary_key:
            body.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        body.extend(
            f"UNIQUE ({', '.join(key)})" for key in self.unique_keys
        )
        body.extend(fk.render() for fk in self.foreign_keys)
        lines.extend(
            "    " + entry + ("," if index < len(body) - 1 else "")
            for index, entry in enumerate(body)
        )
        lines.append(");")
        if self.comment:
            lines.insert(0, f"-- {self.comment}")
        return "\n".join(lines)


@dataclass
class RelationalSchema:
    """The translated relational schema."""

    name: str
    tables: list[Table] = field(default_factory=list)

    def table(self, name: str) -> Table:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(name)

    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def render(self) -> str:
        """The full DDL script."""
        header = f"-- relational translation of schema {self.name!r}\n"
        return header + "\n\n".join(table.render() for table in self.tables) + "\n"


def _sql_type(type_ref: TypeRef) -> str:
    if isinstance(type_ref, ScalarType):
        base = _SQL_TYPES[type_ref.name]
        if type_ref.size is not None:
            return f"{base}({type_ref.size})"
        if type_ref.name == "string":
            return "VARCHAR(255)"
        return base
    raise ValueError(f"no direct SQL type for {type_ref}")


#: SQL reserved words that commonly collide with type names; quoted.
_RESERVED = frozenset(
    {
        "order", "group", "user", "table", "select", "from", "where",
        "check", "index", "key", "values", "column", "grant", "role",
    }
)


def _quote(lowered: str) -> str:
    return f'"{lowered}"' if lowered in _RESERVED else lowered


def _table_name(interface_name: str) -> str:
    return _quote(interface_name.lower())


def _composed_name(interface_name: str, suffix: str) -> str:
    return _quote(f"{interface_name.lower()}_{suffix}")


class _Translator:
    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.result = RelationalSchema(schema.name)
        self._pk_cache: dict[str, tuple[str, ...]] = {}

    def translate(self) -> RelationalSchema:
        for interface in self.schema:
            self.result.tables.append(self._translate_interface(interface))
        self._add_relationship_columns()
        return self.result

    # -- primary keys ----------------------------------------------------

    def primary_key_of(self, name: str) -> tuple[str, ...]:
        """The primary-key column names of a type (walking supertypes)."""
        if name in self._pk_cache:
            return self._pk_cache[name]
        interface = self.schema.get(name)
        if interface.supertypes:
            columns = self.primary_key_of(interface.supertypes[0])
        elif interface.keys:
            columns = tuple(interface.keys[0])
        else:
            columns = (f"{_table_name(name)}_id",)
        self._pk_cache[name] = columns
        return columns

    def _pk_column_types(self, name: str) -> list[Column]:
        """Columns realising the primary key of *name* on some table."""
        interface = self.schema.get(name)
        if interface.supertypes:
            return self._pk_column_types(interface.supertypes[0])
        if interface.keys:
            columns = []
            for attr_name in interface.keys[0]:
                attribute = self._find_attribute(name, attr_name)
                columns.append(
                    Column(attr_name, _sql_type(attribute.type), nullable=False)
                )
            return columns
        return [Column(f"{_table_name(name)}_id", "INTEGER", nullable=False)]

    def _find_attribute(self, name: str, attr_name: str):
        interface = self.schema.get(name)
        if attr_name in interface.attributes:
            return interface.attributes[attr_name]
        owner = self.schema.inherited_attributes(name).get(attr_name)
        if owner is None:
            raise KeyError(f"{name}.{attr_name}")
        return self.schema.get(owner).attributes[attr_name]

    # -- tables -----------------------------------------------------------

    def _translate_interface(self, interface: InterfaceDef) -> Table:
        table = Table(
            _table_name(interface.name),
            comment=f"object type {interface.name}",
        )
        pk = self.primary_key_of(interface.name)
        pk_columns = self._pk_column_types(interface.name)
        if interface.supertypes:
            # Table-per-class: the subtype shares the root's key and
            # references its direct supertype.
            table.columns.extend(pk_columns)
            table.primary_key = pk
            table.foreign_keys.append(
                ForeignKey(
                    pk, _table_name(interface.supertypes[0]), pk,
                    on_delete_cascade=True,
                )
            )
        else:
            table.columns.extend(pk_columns)
            table.primary_key = pk
        for attribute in interface.attributes.values():
            if attribute.name in table.column_names():
                continue  # already placed as a key column
            if isinstance(attribute.type, ScalarType):
                table.columns.append(
                    Column(attribute.name, _sql_type(attribute.type))
                )
            elif isinstance(attribute.type, NamedType):
                self._add_reference_column(
                    table, attribute.name, attribute.type.name
                )
            elif isinstance(attribute.type, CollectionType):
                self._add_collection_table(interface, attribute)
        # A root's first key became the primary key; everything else --
        # and every key a subtype declares -- becomes a UNIQUE constraint.
        extra_keys = (
            interface.keys if interface.supertypes else interface.keys[1:]
        )
        table.unique_keys.extend(tuple(key) for key in extra_keys)
        return table

    def _add_reference_column(
        self, table: Table, column_base: str, target: str,
        cascade: bool = False, nullable: bool = True,
    ) -> None:
        target_pk = self.primary_key_of(target)
        target_pk_columns = self._pk_column_types(target)
        fk_columns = []
        for pk_name, pk_column in zip(target_pk, target_pk_columns):
            column_name = f"{column_base}_{pk_name}"
            table.columns.append(
                Column(column_name, pk_column.sql_type, nullable=nullable)
            )
            fk_columns.append(column_name)
        table.foreign_keys.append(
            ForeignKey(
                tuple(fk_columns), _table_name(target), target_pk,
                on_delete_cascade=cascade,
            )
        )

    def _add_collection_table(self, interface: InterfaceDef, attribute) -> None:
        """A child table for a collection-typed attribute."""
        element = attribute.type.element
        child = Table(
            _composed_name(interface.name, attribute.name),
            comment=(
                f"collection attribute {interface.name}.{attribute.name}"
            ),
        )
        self._add_reference_column(
            child, "owner", interface.name, cascade=True, nullable=False
        )
        if isinstance(element, ScalarType):
            child.columns.append(Column("value", _sql_type(element)))
        elif isinstance(element, NamedType):
            self._add_reference_column(child, "value", element.name)
        else:
            raise ValueError(
                f"nested collection attribute "
                f"{interface.name}.{attribute.name} has no relational "
                "translation; flatten it first"
            )
        self.result.tables.append(child)

    # -- relationships ------------------------------------------------------

    def _add_relationship_columns(self) -> None:
        handled: set[frozenset[tuple[str, str]]] = set()
        for owner, end in self.schema.relationship_pairs():
            pair = frozenset(
                {(owner, end.name), (end.inverse_type, end.inverse_name)}
            )
            if pair in handled:
                continue
            handled.add(pair)
            inverse = self.schema.find_inverse(owner, end)
            self._translate_relationship(owner, end, inverse)

    def _translate_relationship(
        self, owner: str, end: RelationshipEnd,
        inverse: RelationshipEnd | None,
    ) -> None:
        inverse_many = inverse.is_to_many if inverse is not None else False
        cascade = end.kind is not RelationshipKind.ASSOCIATION
        if end.is_to_many and inverse_many:
            # Many-to-many: a junction table named after the two paths.
            junction = Table(
                _composed_name(owner, end.name),
                comment=(
                    f"M:N relationship {owner}::{end.name} / "
                    f"{end.inverse_type}::{end.inverse_name}"
                ),
            )
            self._add_reference_column(
                junction, owner.lower(), owner,
                cascade=True, nullable=False,
            )
            self._add_reference_column(
                junction, end.name, end.target_type,
                cascade=True, nullable=False,
            )
            junction.primary_key = tuple(junction.column_names())
            self.result.tables.append(junction)
            return
        if end.is_to_many:
            # The foreign key lives on the to-one side: the target of
            # this end holds a reference back to the owner.
            holder, reference, base = end.target_type, owner, (
                inverse.name if inverse is not None else end.name
            )
        else:
            holder, reference, base = owner, end.target_type, end.name
        table = self.result.table(_table_name(holder))
        self._add_reference_column(table, base, reference, cascade=cascade)


def to_relational(schema: Schema) -> RelationalSchema:
    """Translate *schema* to a relational schema (tables + constraints)."""
    return _Translator(schema).translate()


def to_sql(schema: Schema) -> str:
    """Translate *schema* straight to a SQL DDL script."""
    return to_relational(schema).render()
