"""Tests for the spine-emission / CoW-barrier / compiled-plan checks.

The checks live in :mod:`repro.lint.passes.spine` (the
``tools/check_mutators.py`` shim re-exports them); these tests drive
them over in-memory fixture snippets that must pass and must fail --
missing ``_emit``, ``_cow_barrier`` not the first statement, and a
compiled-plan helper writing a container directly -- plus the shim CLI
on the real tree.
"""

import subprocess
import sys
from pathlib import Path

from repro.lint.loader import Codebase
from repro.lint.passes.spine import (
    compiled_plan_findings,
    cow_findings,
    emission_findings,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SHIM = REPO_ROOT / "tools" / "check_mutators.py"


GOOD_CLASS = '''
class Model:
    def add_thing(self, thing):
        self._cow_barrier()
        self.things.append(thing)
        self._emit("add_thing", (), {})

    def remove_thing(self, thing):
        self._cow_barrier()
        self._drop(thing)

    def _drop(self, thing):
        self.things.remove(thing)
        self._log.emit("remove_thing", (), {})

    def _cow_barrier(self):
        pass

    def lookup(self, name):
        return self.things[name]
'''

SILENT_CLASS = '''
class Model:
    def add_thing(self, thing):
        self._cow_barrier()
        self.things.append(thing)
        self._emit("add_thing", (), {})

    def set_label(self, label):
        self._cow_barrier()
        self.label = label  # no emit anywhere on this path

    def _cow_barrier(self):
        pass
'''

LATE_BARRIER_CLASS = '''
class Model:
    def add_thing(self, thing):
        self._cow_barrier()
        self._emit("add_thing", (), {})

    def set_label(self, label):
        """Docstring is allowed before the barrier, code is not."""
        self.label = label
        self._cow_barrier()
        self._emit("set_label", (), {})
'''

GOOD_WORKSPACE = '''
class Workspace:
    def apply_plan_compiled(self, plan):
        for step_plan in self.expand_applying(plan):
            self._note_scopes(step_plan)

    def _note_scopes(self, step_plan):
        self.notes.extend(step_plan.scopes)

    def expand_applying(self, plan):
        yield plan
'''

DIRTY_WORKSPACE = '''
class Workspace:
    def apply_plan_compiled(self, plan):
        for step_plan in self.expand_applying(plan):
            self._note_scopes(step_plan)
            self._shortcut(step_plan)

    def _note_scopes(self, step_plan):
        self.notes.extend(step_plan.scopes)

    def _shortcut(self, step_plan):
        self.schema.interfaces[step_plan.name] = step_plan.interface

    def expand_applying(self, plan):
        yield plan
'''

MISSING_CALLS_WORKSPACE = '''
class Workspace:
    def apply_plan_compiled(self, plan):
        for step in plan.steps:
            step.apply(self.schema)
'''


def _codebase(source: str) -> Codebase:
    return Codebase.from_sources({"fixture": source})


def test_emitting_mutators_pass():
    assert emission_findings(_codebase(GOOD_CLASS), "fixture", "Model") == []


def test_missing_emit_is_caught_with_anchor():
    findings = emission_findings(_codebase(SILENT_CLASS), "fixture", "Model")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "spine-emission"
    assert finding.symbol == "fixture:Model.set_label"
    # line 8 of the snippet: the def of set_label
    assert finding.line == SILENT_CLASS.splitlines().index(
        "    def set_label(self, label):"
    ) + 1


def test_emit_through_private_helper_counts():
    """remove_thing emits only via self._drop -> self._log.emit."""
    findings = emission_findings(_codebase(GOOD_CLASS), "fixture", "Model")
    assert all(f.symbol != "fixture:Model.remove_thing" for f in findings)


def test_cow_barrier_first_statement_passes():
    assert cow_findings(_codebase(GOOD_CLASS), "fixture", "Model") == []


def test_cow_barrier_not_first_is_caught():
    findings = cow_findings(_codebase(LATE_BARRIER_CLASS), "fixture", "Model")
    assert [f.symbol for f in findings] == ["fixture:Model.set_label"]
    assert findings[0].rule == "cow-barrier"
    assert "first" in findings[0].message


def test_compiled_plan_clean_workspace_passes():
    assert (
        compiled_plan_findings(_codebase(GOOD_WORKSPACE), "fixture") == []
    )


def test_compiled_plan_container_write_is_caught():
    findings = compiled_plan_findings(_codebase(DIRTY_WORKSPACE), "fixture")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "compiled-plan"
    assert finding.symbol == "fixture:Workspace._shortcut"
    assert "subscript" in finding.message
    expected_line = DIRTY_WORKSPACE.splitlines().index(
        "        self.schema.interfaces[step_plan.name] = step_plan.interface"
    ) + 1
    assert finding.line == expected_line


def test_compiled_plan_missing_required_calls_is_caught():
    findings = compiled_plan_findings(
        _codebase(MISSING_CALLS_WORKSPACE), "fixture"
    )
    messages = " ".join(f.message for f in findings)
    assert "expand_applying" in messages
    assert "_note_scopes" in messages


def test_real_tree_is_clean():
    codebase = Codebase.load()
    assert emission_findings(codebase, "repro.model.interface", "InterfaceDef") == []
    assert emission_findings(codebase, "repro.model.schema", "Schema") == []
    assert cow_findings(codebase, "repro.model.interface", "InterfaceDef") == []
    assert compiled_plan_findings(codebase) == []


def test_shim_cli_passes_on_current_tree():
    result = subprocess.run(
        [sys.executable, str(SHIM)],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "public mutators all emit records" in result.stdout
