"""Tests for the population model and ``check_population``.

The checker is the *specification* of what a schema admits (PR 7): each
test pins one constraint family with a minimal admitted population and
a minimal rejected one, mirroring the witness / near-miss pairs the
example generator derives automatically.
"""

import pytest

from repro.instances import (
    Population,
    available_relationships,
    check_population,
)
from repro.odl import parse_schema

WORLD_ODL = """
interface Person {
    extent people;
    keys (id);
    attribute long id;
    attribute string(30) name;
};

interface Employee : Person {
    attribute float salary;
    relationship Department works_in inverse Department::staff;
};

interface Manager : Employee {
};

interface Department {
    extent departments;
    keys (code);
    attribute string(10) code;
    relationship set<Employee> staff inverse Employee::works_in
        order_by (name);
};

interface Assembly {
    part_of relationship set<Part> parts inverse Part::whole;
};

interface Part {
    part_of relationship Assembly whole inverse Assembly::parts;
};

interface Release {
    instance_of relationship set<Install> installs inverse Install::release;
};

interface Install {
    instance_of relationship Release release
        inverse Release::installs;
};
"""


@pytest.fixture
def world():
    schema = parse_schema(WORLD_ODL, name="world")
    schema.validate()
    return schema


def kinds(issues):
    return {issue.kind for issue in issues}


class TestStructural:
    def test_empty_population_is_admitted(self, world):
        assert check_population(world, Population()) == []

    def test_unknown_object_type(self, world):
        pop = Population()
        pop.add("x1", "Nowhere")
        assert kinds(check_population(world, pop)) == {"object-type"}

    def test_unknown_attribute_and_bad_scalar(self, world):
        pop = Population()
        pop.add("p1", "Person", id=1, nickname="zed")
        assert kinds(check_population(world, pop)) == {"attribute"}
        pop2 = Population()
        pop2.add("p1", "Person", id="not-a-long")
        assert kinds(check_population(world, pop2)) == {"attribute"}

    def test_string_size_is_enforced(self, world):
        pop = Population()
        pop.add("d1", "Department", code="x" * 11)
        assert kinds(check_population(world, pop)) == {"attribute"}

    def test_dangling_and_unknown_links(self, world):
        pop = Population()
        pop.add("e1", "Employee", id=1)
        pop.link("e1", "works_in", "ghost")
        assert kinds(check_population(world, pop)) == {"link"}
        pop2 = Population()
        pop2.add("e1", "Employee", id=1)
        pop2.link("e1", "no_such_path", "e1")
        assert kinds(check_population(world, pop2)) == {"link"}

    def test_available_relationships_walks_ancestry(self, world):
        ends = available_relationships(world, "Manager")
        assert "works_in" in ends  # inherited from Employee
        defining, _end = ends["works_in"]
        assert defining == "Employee"


class TestCardinality:
    def test_to_one_admits_one_target(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1, name="ann")
        pop.wire(world, "e1", "works_in", "d1")
        assert check_population(world, pop) == []

    def test_to_one_rejects_two_targets(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("d2", "Department", code="d2")
        pop.add("e1", "Employee", id=1)
        pop.wire(world, "e1", "works_in", "d1")
        pop.wire(world, "e1", "works_in", "d2")
        assert "cardinality" in kinds(check_population(world, pop))

    def test_set_rejects_duplicate_targets(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1, name="a")
        pop.link("d1", "staff", "e1", "e1")
        pop.link("e1", "works_in", "d1")
        assert "cardinality" in kinds(check_population(world, pop))


class TestInverse:
    def test_missing_mirror_is_flagged(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1)
        pop.wire(world, "e1", "works_in", "d1", mirror=False)
        assert kinds(check_population(world, pop)) == {"inverse"}

    def test_wire_mirrors_the_inverse(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1)
        pop.wire(world, "e1", "works_in", "d1")
        assert pop.get("d1").links["staff"] == ("e1",)


class TestKeys:
    def test_distinct_key_values_admitted(self, world):
        pop = Population()
        pop.add("p1", "Person", id=1)
        pop.add("p2", "Person", id=2)
        assert check_population(world, pop) == []

    def test_duplicate_key_rejected(self, world):
        pop = Population()
        pop.add("p1", "Person", id=7)
        pop.add("p2", "Person", id=7)
        assert kinds(check_population(world, pop)) == {"key"}

    def test_key_spans_the_extent_closure(self, world):
        # An Employee is in Person's extent: Person's key applies to it.
        pop = Population()
        pop.add("p1", "Person", id=7)
        pop.add("e1", "Employee", id=7)
        assert kinds(check_population(world, pop)) == {"key"}

    def test_missing_key_value_rejected(self, world):
        pop = Population()
        pop.add("p1", "Person")
        assert kinds(check_population(world, pop)) == {"key"}


class TestOrderBy:
    def _staffed(self, world, first, second):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1, name=first)
        pop.add("e2", "Employee", id=2, name=second)
        pop.link("d1", "staff", "e1", "e2")
        pop.link("e1", "works_in", "d1")
        pop.link("e2", "works_in", "d1")
        return pop

    def test_sorted_sequence_admitted(self, world):
        assert check_population(world, self._staffed(world, "ann", "bob")) == []

    def test_unsorted_sequence_rejected(self, world):
        issues = check_population(world, self._staffed(world, "bob", "ann"))
        assert kinds(issues) == {"order-by"}

    def test_missing_order_attribute_rejected(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("e1", "Employee", id=1)
        pop.wire(world, "d1", "staff", "e1")
        assert "order-by" in kinds(check_population(world, pop))


class TestIsaExtent:
    def test_subtype_member_is_in_target_extent(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("m1", "Manager", id=1, name="ann")
        pop.wire(world, "d1", "staff", "m1")
        assert check_population(world, pop) == []

    def test_unrelated_type_is_not(self, world):
        pop = Population()
        pop.add("d1", "Department", code="d1")
        pop.add("p1", "Person", id=1, name="ann")
        pop.wire(world, "d1", "staff", "p1")
        assert "isa-extent" in kinds(check_population(world, pop))


class TestHierarchies:
    def test_exclusive_part_membership(self, world):
        pop = Population()
        pop.add("a1", "Assembly")
        pop.add("a2", "Assembly")
        pop.add("x1", "Part")
        pop.link("a1", "parts", "x1")
        pop.link("a2", "parts", "x1")
        assert "part-of" in kinds(check_population(world, pop))

    def test_instance_of_exclusive_membership(self, world):
        pop = Population()
        pop.add("r1", "Release")
        pop.add("r2", "Release")
        pop.add("i1", "Install")
        pop.link("r1", "installs", "i1")
        pop.link("r2", "installs", "i1")
        assert "instance-of" in kinds(check_population(world, pop))

    def test_part_of_object_cycle_rejected(self):
        schema = parse_schema(
            "interface Box { part_of relationship set<Box> boxes "
            "inverse Box::holder; "
            "part_of relationship Box holder inverse Box::boxes; };",
            name="boxes",
        )
        pop = Population()
        pop.add("b1", "Box")
        pop.add("b2", "Box")
        pop.wire(schema, "b1", "boxes", "b2")
        pop.wire(schema, "b2", "boxes", "b1")
        issues = check_population(schema, pop)
        assert "part-of" in kinds(issues)

    def test_clean_part_tree_admitted(self, world):
        pop = Population()
        pop.add("a1", "Assembly")
        pop.add("x1", "Part")
        pop.add("x2", "Part")
        pop.wire(world, "a1", "parts", "x1")
        pop.wire(world, "a1", "parts", "x2")
        assert check_population(world, pop) == []


class TestRendering:
    def test_issue_str_and_population_render(self, world):
        pop = Population("w")
        pop.add("p1", "Person", id=1)
        text = pop.render()
        assert text.startswith("w:")
        assert "p1: Person" in text
        pop2 = Population()
        pop2.add("p1", "Person", id=7)
        pop2.add("p2", "Person", id=7)
        issue = check_population(world, pop2)[0]
        assert str(issue).startswith("[key]")

    def test_copy_is_deep_enough(self, world):
        pop = Population()
        pop.add("p1", "Person", id=1)
        dup = pop.copy("dup")
        dup.get("p1").attributes["id"] = 2
        assert pop.get("p1").attributes["id"] == 1
