"""Unit tests for operation-signature operations."""

import pytest

from repro.model.fingerprint import schema_fingerprint
from repro.model.operations import Parameter
from repro.model.types import VOID, named, scalar
from repro.ops.base import (
    ConstraintViolation,
    OperationContext,
    SemanticStabilityError,
)
from repro.ops.operation_ops import (
    AddOperation,
    DeleteOperation,
    ModifyOperation,
    ModifyOperationArgList,
    ModifyOperationExceptionsRaised,
    ModifyOperationReturnType,
)


@pytest.fixture
def schema(small):
    AddOperation(
        "Employee", scalar("float"), "salary",
        (Parameter("in", scalar("short"), "month"),), ("NoSuchMonth",),
    ).apply(small)
    return small


class TestAddOperation:
    def test_added(self, schema):
        operation = schema.get("Employee").get_operation("salary")
        assert operation.signature() == (
            "float salary(in short month) raises (NoSuchMonth)"
        )

    def test_duplicate_rejected(self, schema):
        with pytest.raises(ConstraintViolation):
            AddOperation("Employee", VOID, "salary").apply(schema)

    def test_override_in_subtype_allowed(self, schema):
        """Operation names are unique "except in the case where an
        operation is overridden" (Section 3.2)."""
        AddOperation("Person", scalar("float"), "salary").apply(schema)
        assert "salary" in schema.get("Person").operations
        assert "salary" in schema.get("Employee").operations

    def test_unknown_signature_type_rejected(self, schema):
        with pytest.raises(ConstraintViolation):
            AddOperation("Person", named("Ghost"), "spooky").apply(schema)

    def test_undo(self, small):
        before = schema_fingerprint(small)
        undo = AddOperation("Person", VOID, "reset").apply(small)
        undo()
        assert schema_fingerprint(small) == before

    def test_text_with_args_and_raises(self):
        operation = AddOperation(
            "A", scalar("float"), "f",
            (Parameter("in", scalar("short"), "x"),), ("E",),
        )
        assert operation.to_text() == (
            "add_operation(A, float, f, (in short x), (E))"
        )

    def test_text_minimal(self):
        assert AddOperation("A", VOID, "f").to_text() == "add_operation(A, void, f)"


class TestDeleteOperation:
    def test_delete(self, schema):
        DeleteOperation("Employee", "salary").apply(schema)
        assert "salary" not in schema.get("Employee").operations

    def test_missing_rejected(self, schema):
        from repro.model.errors import UnknownPropertyError

        with pytest.raises(UnknownPropertyError):
            DeleteOperation("Employee", "ghost").apply(schema)

    def test_undo_restores_order(self, schema):
        AddOperation("Employee", VOID, "later").apply(schema)
        undo = DeleteOperation("Employee", "salary").apply(schema)
        undo()
        assert list(schema.get("Employee").operations) == ["salary", "later"]


class TestMoveOperation:
    def test_move_up(self, schema):
        context = OperationContext(reference=schema.copy())
        ModifyOperation("Employee", "salary", "Person").apply(schema, context)
        assert "salary" in schema.get("Person").operations
        assert "salary" not in schema.get("Employee").operations

    def test_move_to_unrelated_rejected(self, schema):
        context = OperationContext(reference=schema.copy())
        with pytest.raises(SemanticStabilityError):
            ModifyOperation("Employee", "salary", "Department").apply(
                schema, context
            )

    def test_move_onto_existing_rejected(self, schema):
        AddOperation("Person", scalar("float"), "salary").apply(schema)
        with pytest.raises(ConstraintViolation):
            ModifyOperation("Employee", "salary", "Person").apply(schema)

    def test_move_undo(self, schema):
        before = schema_fingerprint(schema)
        undo = ModifyOperation("Employee", "salary", "Person").apply(schema)
        undo()
        assert schema_fingerprint(schema) == before


class TestSignatureModifications:
    def test_return_type(self, schema):
        ModifyOperationReturnType(
            "Employee", "salary", scalar("float"), scalar("double")
        ).apply(schema)
        operation = schema.get("Employee").get_operation("salary")
        assert str(operation.return_type) == "double"

    def test_return_type_checks_old(self, schema):
        with pytest.raises(ConstraintViolation):
            ModifyOperationReturnType(
                "Employee", "salary", scalar("long"), scalar("double")
            ).apply(schema)

    def test_arg_list(self, schema):
        new_params = (
            Parameter("in", scalar("short"), "month"),
            Parameter("in", scalar("short"), "year"),
        )
        ModifyOperationArgList(
            "Employee", "salary",
            (Parameter("in", scalar("short"), "month"),), new_params,
        ).apply(schema)
        operation = schema.get("Employee").get_operation("salary")
        assert len(operation.parameters) == 2

    def test_arg_list_checks_old(self, schema):
        with pytest.raises(ConstraintViolation):
            ModifyOperationArgList("Employee", "salary", (), ()).apply(schema)

    def test_arg_list_checks_types_exist(self, schema):
        with pytest.raises(ConstraintViolation):
            ModifyOperationArgList(
                "Employee", "salary",
                (Parameter("in", scalar("short"), "month"),),
                (Parameter("in", named("Ghost"), "g"),),
            ).apply(schema)

    def test_exceptions(self, schema):
        ModifyOperationExceptionsRaised(
            "Employee", "salary", ("NoSuchMonth",), ("NoSuchMonth", "Closed")
        ).apply(schema)
        operation = schema.get("Employee").get_operation("salary")
        assert operation.exceptions == ("NoSuchMonth", "Closed")

    def test_exceptions_check_old(self, schema):
        with pytest.raises(ConstraintViolation):
            ModifyOperationExceptionsRaised(
                "Employee", "salary", (), ("E",)
            ).apply(schema)

    def test_signature_undo(self, schema):
        before = schema_fingerprint(schema)
        undo = ModifyOperationReturnType(
            "Employee", "salary", scalar("float"), scalar("double")
        ).apply(schema)
        undo()
        assert schema_fingerprint(schema) == before
