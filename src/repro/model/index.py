"""Memoized reverse-adjacency indexes over a schema's link graphs.

Every concept-schema extraction, propagation expansion, and consistency
pass bottoms out in :class:`~repro.model.schema.Schema`'s graph queries.
Answering them by scanning all interfaces makes ``descendants`` O(N^2)
and rebuilds the complete part-of edge list on every ``parts`` call.
:class:`SchemaIndex` maintains the reverse direction of each link family
once and answers from dictionaries instead:

* ``subtype_map``     -- supertype name -> direct subtype names,
* ``parts_map``       -- whole name -> direct part names,
* ``wholes_map``      -- part name -> direct whole names,
* ``instance_map``    -- generic name -> direct instance names,
* ``generic_map``     -- instance name -> direct generic names,
* ``part_of_edges`` / ``instance_of_edges`` -- the cached edge triples,
* ``relationship_pairs`` -- the cached (owner, end) listing,
* ``declaration_order``  -- interface name -> declaration position.

**Invalidation contract.**  The index is a subscriber of the schema's
mutation spine (:mod:`repro.model.mutation`): ``Schema.generation`` is
the spine's monotonic ``seq``, bumped by every emitted
:class:`~repro.model.mutation.MutationRecord` -- i.e. by every mutator
on :class:`~repro.model.schema.Schema` and
:class:`~repro.model.interface.InterfaceDef`.  Each cache family is
stamped with the generation it was built at; a query whose stamp no
longer matches rebuilds that family lazily.  Code that mutates schema
content without going through a mutator (direct container assignment)
must call ``Schema.touch()`` itself -- see DESIGN.md §5e.

The module also ships the ``scan_*`` reference implementations: the
original full-scan queries, kept as the executable specification the
index is validated against (property tests) and benchmarked against
(``benchmarks/test_bench_index_scaling.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.model.relationships import RelationshipEnd, RelationshipKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.schema import Schema

#: (one-side owner, many-side target, to-many end) of one hierarchy link.
Edge = tuple[str, str, RelationshipEnd]


# ----------------------------------------------------------------------
# Compatibility re-exports
# ----------------------------------------------------------------------
#
# The aspect vocabulary and the dirty journal moved to the mutation
# spine (repro.model.mutation) when mutations were reified; the legacy
# string constants are now Aspect enum members (StrEnum: they compare
# and hash like the old strings).  Kept importable from here for one
# release.

from repro.model.mutation import (  # noqa: E402,F401 (re-export)
    ALL_ASPECTS as ALL_TOUCH_ASPECTS,
    Aspect,
    DirtyJournal,
    aspect_for_kind,
)

ASPECT_ISA = Aspect.ISA
ASPECT_ATTRS = Aspect.ATTRS
ASPECT_KEYS = Aspect.KEYS
ASPECT_EXTENT = Aspect.EXTENT
ASPECT_OPS = Aspect.OPS
ASPECT_REL_ASSOCIATION = Aspect.REL_ASSOCIATION
ASPECT_REL_PART_OF = Aspect.REL_PART_OF
ASPECT_REL_INSTANCE_OF = Aspect.REL_INSTANCE_OF
ASPECT_MEMBERSHIP = Aspect.MEMBERSHIP


class SchemaIndex:
    """Generation-stamped caches for one schema's graph queries."""

    __slots__ = ("_schema", "_caches", "hits", "misses", "rebuilds")

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        self._caches: dict[str, tuple[int, object]] = {}
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Cache machinery
    # ------------------------------------------------------------------

    def _get(self, family: str, builder: Callable[[], object]) -> object:
        generation = self._schema.generation
        cached = self._caches.get(family)
        if cached is not None:
            if cached[0] == generation:
                self.hits += 1
                return cached[1]
            self.rebuilds += 1
        self.misses += 1
        value = builder()
        self._caches[family] = (generation, value)
        return value

    def invalidate(self) -> None:
        """Drop every cache family (normally generation stamps suffice)."""
        self._caches.clear()

    def memo(self, family: str, builder: Callable[[], object]) -> object:
        """Generation-stamped memoization for derived whole-schema values.

        Callers own the *family* namespace (prefix it); the cached value
        is dropped automatically when the schema's generation moves, so
        the value must be a pure function of schema content.  Used by
        the verification engine to avoid re-fingerprinting an unchanged
        schema between differential checks.
        """
        return self._get(family, builder)

    def stats(self) -> dict[str, int]:
        """Hit / miss / rebuild counters plus current cache residency."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rebuilds": self.rebuilds,
            "cached_families": len(self._caches),
            "generation": self._schema.generation,
        }

    def reset_stats(self) -> None:
        """Zero the counters (benchmarks measure phases separately)."""
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Generalization hierarchy
    # ------------------------------------------------------------------

    def subtype_map(self) -> dict[str, list[str]]:
        """Supertype name -> direct subtypes, in declaration order.

        Keys include dangling supertype names (a subtype may reference a
        type the schema does not define); resolution against the schema
        is the caller's concern.
        """
        return self._get("subtypes", self._build_subtype_map)  # type: ignore[return-value]

    def _build_subtype_map(self) -> dict[str, list[str]]:
        result: dict[str, list[str]] = {}
        for interface in self._schema:
            for supertype in interface.supertypes:
                result.setdefault(supertype, []).append(interface.name)
        return result

    # ------------------------------------------------------------------
    # Part-of / instance-of hierarchies
    # ------------------------------------------------------------------

    def part_of_edges(self) -> list[Edge]:
        """(whole, part, to-parts end) triples, in declaration order."""
        return self._get(  # type: ignore[return-value]
            "part_edges",
            lambda: scan_link_edges(self._schema, RelationshipKind.PART_OF),
        )

    def instance_of_edges(self) -> list[Edge]:
        """(generic, instance, to-instances end) triples."""
        return self._get(  # type: ignore[return-value]
            "instance_edges",
            lambda: scan_link_edges(self._schema, RelationshipKind.INSTANCE_OF),
        )

    def part_of_edge_count(self) -> int:
        """Number of part-of edges without copying the edge list.

        ``Schema.stats()`` used to materialise a fresh edge-list copy
        just to ``len()`` it; this answers from the cached family in
        O(1) once built.
        """
        return len(self.part_of_edges())

    def instance_of_edge_count(self) -> int:
        """Number of instance-of edges without copying the edge list."""
        return len(self.instance_of_edges())

    def parts_map(self) -> dict[str, list[str]]:
        """Whole name -> direct part names."""
        return self._get(  # type: ignore[return-value]
            "parts", lambda: _forward_map(self.part_of_edges())
        )

    def wholes_map(self) -> dict[str, list[str]]:
        """Part name -> direct whole names."""
        return self._get(  # type: ignore[return-value]
            "wholes", lambda: _reverse_map(self.part_of_edges())
        )

    def instance_map(self) -> dict[str, list[str]]:
        """Generic name -> direct instance names."""
        return self._get(  # type: ignore[return-value]
            "instances", lambda: _forward_map(self.instance_of_edges())
        )

    def generic_map(self) -> dict[str, list[str]]:
        """Instance name -> direct generic names."""
        return self._get(  # type: ignore[return-value]
            "generics", lambda: _reverse_map(self.instance_of_edges())
        )

    # ------------------------------------------------------------------
    # Whole-schema listings
    # ------------------------------------------------------------------

    def relationship_pairs(self) -> list[tuple[str, RelationshipEnd]]:
        """Every (owner name, end) pair in declaration order."""
        return self._get(  # type: ignore[return-value]
            "pairs", lambda: scan_relationship_pairs(self._schema)
        )

    def declaration_order(self) -> dict[str, int]:
        """Interface name -> position in declaration order."""
        return self._get(  # type: ignore[return-value]
            "order",
            lambda: {name: i for i, name in enumerate(self._schema.interfaces)},
        )


def _forward_map(edges: list[Edge]) -> dict[str, list[str]]:
    result: dict[str, list[str]] = {}
    for owner, target, _ in edges:
        result.setdefault(owner, []).append(target)
    return result


def _reverse_map(edges: list[Edge]) -> dict[str, list[str]]:
    result: dict[str, list[str]] = {}
    for owner, target, _ in edges:
        result.setdefault(target, []).append(owner)
    return result


# ----------------------------------------------------------------------
# Full-scan reference implementations
# ----------------------------------------------------------------------
#
# These are the pre-index query bodies, preserved verbatim in behaviour.
# The invalidation property tests assert that after any operation stream
# (including undo / redo / reset) every indexed query still equals its
# scan counterpart, and the scaling bench quantifies what the index buys
# over them.


def scan_link_edges(schema: "Schema", kind: RelationshipKind) -> list[Edge]:
    """Directed edges (one-side -> many-side) for part-of/instance-of.

    Only the to-many end contributes an edge so each relationship is
    counted once; the edge runs from the owner of the to-many end (the
    whole / the generic entity) to its target (the part / instance).
    """
    edges: list[Edge] = []
    for interface in schema:
        for end in interface.relationships_of_kind(kind):
            if end.is_to_many:
                edges.append((interface.name, end.target_type, end))
    return edges


def scan_subtypes(schema: "Schema", name: str) -> list[str]:
    """Direct subtypes of *name* by scanning every interface."""
    return [
        interface.name
        for interface in schema
        if name in interface.supertypes
    ]


def scan_descendants(schema: "Schema", name: str) -> set[str]:
    """Transitive subtypes of *name* via repeated full scans."""
    schema.get(name)  # raise for unknown types
    result: set[str] = set()
    frontier = scan_subtypes(schema, name)
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(scan_subtypes(schema, current))
    return result


def scan_ancestors(schema: "Schema", name: str) -> set[str]:
    """Transitive *resolved* supertypes of *name* (dangling names are
    not types and are excluded, mirroring ``Schema.ancestors``)."""
    result: set[str] = set()
    frontier = [
        supertype
        for supertype in schema.get(name).supertypes
        if supertype in schema.interfaces
    ]
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(
            supertype
            for supertype in schema.interfaces[current].supertypes
            if supertype in schema.interfaces
        )
    return result


def scan_generalization_roots(schema: "Schema") -> list[str]:
    """Types with subtypes but no *resolved* supertypes."""
    return [
        interface.name
        for interface in schema
        if not any(s in schema.interfaces for s in interface.supertypes)
        and scan_subtypes(schema, interface.name)
    ]


def scan_parts(schema: "Schema", name: str) -> list[str]:
    """Direct components of *name* by rebuilding the edge list."""
    edges = scan_link_edges(schema, RelationshipKind.PART_OF)
    return [part for whole, part, _ in edges if whole == name]


def scan_wholes(schema: "Schema", name: str) -> list[str]:
    """Direct wholes of *name* by rebuilding the edge list."""
    edges = scan_link_edges(schema, RelationshipKind.PART_OF)
    return [whole for whole, part, _ in edges if part == name]


def scan_aggregation_roots(schema: "Schema") -> list[str]:
    """Wholes that are not themselves parts of anything."""
    edges = scan_link_edges(schema, RelationshipKind.PART_OF)
    wholes = {whole for whole, _, _ in edges}
    parts = {part for _, part, _ in edges}
    return [name for name in schema.type_names() if name in wholes - parts]


def scan_instance_of_roots(schema: "Schema") -> list[str]:
    """Generic entities that are not instances of anything."""
    edges = scan_link_edges(schema, RelationshipKind.INSTANCE_OF)
    generics = {generic for generic, _, _ in edges}
    instances = {inst for _, inst, _ in edges}
    return [name for name in schema.type_names() if name in generics - instances]


def scan_relationship_pairs(
    schema: "Schema",
) -> list[tuple[str, RelationshipEnd]]:
    """Every (owner name, end) pair in declaration order."""
    return [
        (interface.name, end)
        for interface in schema
        for end in interface.relationships.values()
    ]
