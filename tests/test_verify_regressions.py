"""Shrunk fuzzer reproducers, checked in as permanent regressions.

Each test here started life as a differential-fuzzer failure
(``python -m repro.verify``), was delta-debugged to a minimal trace by
:mod:`repro.verify.shrinker`, and is kept in the emitted-reproducer
idiom: drive a workspace through the offending steps, assert the
invariant registry stays clean, then drain the undo log and assert the
reference schema comes back exactly.
"""

import pytest

from repro.catalog import load
from repro.model.errors import SchemaError, UnknownTypeError
from repro.model.fingerprint import (
    memoized_schema_fingerprint,
    schema_fingerprint,
    schemas_equal,
)
from repro.ops.base import OperationError
from repro.ops.composite import ExtractSupertype, IntroduceAbstractSupertype
from repro.ops.language import parse_operation
from repro.repository.workspace import Workspace
from repro.verify.invariants import check_workspace


def _apply(workspace, text, propagate=True):
    """Apply one operation; rejection is a legal no-op in a trace."""
    try:
        workspace.apply(parse_operation(text), propagate=propagate)
    except (OperationError, SchemaError):
        pass


def _drain_and_check(workspace):
    assert not check_workspace(workspace), check_workspace(workspace)
    while workspace.undo_depth:
        workspace.undo_last()
    assert schemas_equal(workspace.schema, workspace.reference), (
        "undoing every step must restore the reference schema"
    )


class TestPartOfCycleAdmission:
    """Fuzzer finding #1: mutually-inverse part-of links closed a cycle.

    ``add_part_of_relationship`` validated each link locally, so A
    part-of B followed by B part-of A was admitted and only noticed by
    ``schema.validate()`` afterwards -- an operation sequence escaping
    the closed language.  Ops now refuse any aggregation / instance-of
    link that would close a cycle (or a self-loop).
    """

    def test_two_step_cycle_rejected(self):
        workspace = Workspace(load("university"))
        # violated (pre-fix): part-of-acyclic
        _apply(workspace, "add_type_definition(A)")
        _apply(workspace, "add_type_definition(B)")
        _apply(
            workspace,
            "add_part_of_relationship(A, set<B>, parts, B::whole)",
        )
        _apply(
            workspace,
            "add_part_of_relationship(B, set<A>, parts, A::whole)",
        )
        _drain_and_check(workspace)

    def test_self_loop_rejected(self):
        workspace = Workspace(load("university"))
        _apply(workspace, "add_type_definition(A)")
        _apply(
            workspace,
            "add_part_of_relationship(A, set<A>, parts, A::whole)",
        )
        _drain_and_check(workspace)

    def test_instance_of_cycle_rejected(self):
        workspace = Workspace(load("university"))
        _apply(workspace, "add_type_definition(A)")
        _apply(workspace, "add_type_definition(B)")
        _apply(
            workspace,
            "add_instance_of_relationship(A, set<B>, versions, B::generic)",
        )
        _apply(
            workspace,
            "add_instance_of_relationship(B, set<A>, versions, A::generic)",
        )
        _drain_and_check(workspace)

    def test_legal_chain_still_admitted(self):
        workspace = Workspace(load("university"))
        for text in (
            "add_type_definition(A)",
            "add_type_definition(B)",
            "add_type_definition(C)",
            "add_part_of_relationship(A, set<B>, parts, B::whole)",
            "add_part_of_relationship(B, set<C>, parts, C::whole)",
        ):
            workspace.apply(parse_operation(text))
        assert workspace.schema.parts("A") == ["B"]
        _drain_and_check(workspace)


class TestExtentGenerationBump:
    """Fuzzer finding #2: extent edits bypassed index invalidation.

    The extent operations assigned ``interface.extent`` directly, so
    the schema's generation counter never moved and every
    generation-stamped cache (including the verification engine's
    memoized fingerprint) kept serving stale answers.
    """

    def test_extent_ops_invalidate_caches(self):
        workspace = Workspace(load("company"))
        memoized_schema_fingerprint(workspace.schema)  # prime the cache
        workspace.apply(parse_operation("delete_extent_name(Person, people)"))
        assert memoized_schema_fingerprint(workspace.schema) == (
            schema_fingerprint(workspace.schema)
        )
        _drain_and_check(workspace)

    def test_undo_of_extent_op_invalidates_too(self):
        workspace = Workspace(load("company"))
        workspace.apply(
            parse_operation("modify_extent_name(Person, people, persons)")
        )
        memoized_schema_fingerprint(workspace.schema)
        workspace.undo_last()
        assert memoized_schema_fingerprint(workspace.schema) == (
            schema_fingerprint(workspace.schema)
        )


class TestBareSupertypeDeleteStrandsKey:
    """Fuzzer finding #3 (shrunk from aatdb seed 22, 32 -> 3 steps).

    ``delete_supertype`` applied bare removed the ISA link even when a
    key or order-by resolved only through it, leaving ``keys-resolve``
    violated.  The op now refuses unless the dependents are gone --
    propagation still cascades them automatically.
    """

    def test_shrunk_reproducer(self):
        workspace = Workspace(load("aatdb"))
        # violated (pre-fix): keys-resolve, feedback-error-free
        try:
            workspace.apply_composite(
                IntroduceAbstractSupertype(
                    supertype_name="GenSuper0006",
                    subtype_names=("Lab", "Map"),
                    lift_common=False,
                )
            )
            workspace.apply_composite(
                ExtractSupertype(
                    source="Map",
                    supertype="GenSuper0006",
                    attribute_names=("name",),
                    operation_names=(),
                )
            )
        except (OperationError, SchemaError):
            pass
        _apply(workspace, "delete_supertype(Map, GenSuper0006)", propagate=False)
        _drain_and_check(workspace)

    def test_propagated_delete_still_works(self):
        workspace = Workspace(load("aatdb"))
        workspace.apply_composite(
            IntroduceAbstractSupertype(
                supertype_name="GenSuper0006",
                subtype_names=("Lab", "Map"),
                lift_common=False,
            )
        )
        workspace.apply_composite(
            ExtractSupertype(
                source="Map",
                supertype="GenSuper0006",
                attribute_names=("name",),
                operation_names=(),
            )
        )
        workspace.apply(parse_operation("delete_supertype(Map, GenSuper0006)"))
        assert not check_workspace(workspace)


class TestWorkspaceAtomicityOnSchemaError:
    """Fuzzer finding #4: model-layer errors skipped the rollback.

    The workspace rolled a failing plan back only for ``OperationError``;
    an op raising a model-layer ``SchemaError`` (e.g. ``UnknownTypeError``
    for a target created by a step that was later removed from a trace)
    escaped the except clause.  All apply/redo/composite paths now treat
    both branches as a rejection with full rollback.
    """

    def test_unknown_type_leaves_workspace_untouched(self):
        workspace = Workspace(load("university"))
        before = schema_fingerprint(workspace.schema)
        with pytest.raises(UnknownTypeError):
            workspace.apply(
                parse_operation("add_extent_name(NoSuchType, things)"),
                propagate=False,
            )
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.undo_depth == 0
        assert not check_workspace(workspace)


class TestForkRewindFallback:
    """PR 6 differential: ``fork(at=)`` rewind fallback vs rewound state.

    The ``fork-rewind-differential`` invariant fabricates a mid-history
    snapshot and checks the lossy-log fallback (`_fork_by_rewind`)
    against a structural copy of the rewound workspace.  These traces
    pin the scenarios the differential exercises: a lossy log, a
    pending redo stack across the fallback, and an out-of-band edit
    landing after the snapshot (which the branch must still reflect --
    out-of-band edits are not position-tracked).
    """

    def _snapshot_after(self, workspace, texts, snapshot_index):
        snapshot = None
        for index, text in enumerate(texts):
            workspace.apply(parse_operation(text))
            if index == snapshot_index:
                snapshot = workspace.snapshot()
        assert snapshot is not None
        return snapshot

    def _rewound_fingerprint(self, workspace, snapshot):
        before = schema_fingerprint(workspace.schema)
        unwound = workspace.undo_to(snapshot)
        expected = schema_fingerprint(workspace.schema)
        for _ in range(unwound):
            workspace.redo()
        assert schema_fingerprint(workspace.schema) == before
        return expected

    def test_lossy_log_fork_matches_rewound_state(self):
        workspace = Workspace(load("university"))
        snapshot = self._snapshot_after(workspace, [
            "add_type_definition(A)",
            "add_attribute(A, long, x)",
            "add_type_definition(B)",
            "add_relationship(A, set<B>, friends, B::friend_of)",
            "delete_type_definition(B)",
        ], snapshot_index=1)
        expected = self._rewound_fingerprint(workspace, snapshot)
        before = schema_fingerprint(workspace.schema)
        workspace.schema.touch()  # out-of-band marker: the log is lossy
        with pytest.warns(RuntimeWarning, match="rewind-and-clone"):
            branch = workspace.fork(at=snapshot)
        assert schema_fingerprint(branch.schema) == expected
        assert branch.undo_depth == 0
        assert schema_fingerprint(workspace.schema) == before
        assert not check_workspace(workspace)

    def test_fallback_preserves_pending_redo_entries(self):
        workspace = Workspace(load("university"))
        snapshot = self._snapshot_after(workspace, [
            "add_type_definition(A)",
            "add_attribute(A, long, x)",
            "add_type_definition(B)",
            "add_attribute(B, long, y)",
        ], snapshot_index=1)
        workspace.undo_last()  # leave add_attribute(B, long, y) redoable
        expected = self._rewound_fingerprint(workspace, snapshot)
        before = schema_fingerprint(workspace.schema)
        workspace.schema.touch()
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork(at=snapshot)
        assert schema_fingerprint(branch.schema) == expected
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.redo_depth == 1
        redone = workspace.redo()
        assert redone is not None

    def test_out_of_band_edit_after_snapshot_reaches_branch(self):
        from repro.model.attributes import Attribute
        from repro.model.types import scalar

        workspace = Workspace(load("university"))
        snapshot = self._snapshot_after(workspace, [
            "add_type_definition(A)",
            "add_attribute(A, long, x)",
            "add_type_definition(B)",
        ], snapshot_index=1)
        # Out-of-band edit: direct container write plus touch().  It is
        # not position-tracked, so the branch reflects it even though it
        # landed after the snapshot (documented fallback semantics).
        workspace.schema.interfaces["A"].attributes["oob"] = Attribute(
            "oob", scalar("long")
        )
        workspace.schema.touch()
        expected = self._rewound_fingerprint(workspace, snapshot)
        with pytest.warns(RuntimeWarning):
            branch = workspace.fork(at=snapshot)
        assert schema_fingerprint(branch.schema) == expected
        assert "oob" in branch.schema.interfaces["A"].attributes


class TestAnalysisMemoAcrossFork:
    """PR 7 satellite: the apply_plan analysis memo must not leak
    across ``fork()`` -- each branch analyzes against its own schema
    after divergent edits.  ``fork()`` drops the memo outright (it is
    keyed to the parent's mutation-log identity), so these are plain
    behavior pins, not bug reproducers.
    """

    def test_fork_drops_the_memo(self):
        from repro.analysis.plan import PlanPreflightError

        workspace = Workspace(load("university"), "parent")
        bad_plan = [parse_operation("add_attribute(Ghost, long, x)")]
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(bad_plan)
        assert workspace._analysis_memo is not None
        branch = workspace.fork("branch")
        assert branch._analysis_memo is None

    def test_branches_analyze_their_own_schema_after_divergence(self):
        from repro.analysis.plan import PlanPreflightError

        workspace = Workspace(load("university"), "parent")
        bad_plan = [parse_operation("add_attribute(Ghost, long, x)")]
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(bad_plan)  # memoized rejection
        branch = workspace.fork("branch")
        # Diverge: the branch grows the missing type, the parent the
        # same-named attribute elsewhere.
        branch.apply(parse_operation("add_type_definition(Ghost)"))
        workspace.apply(parse_operation("add_attribute(Person, long, x)"))
        # The branch must now accept the very plan the parent memoized
        # as rejected...
        branch.apply_plan(bad_plan)
        assert "x" in branch.schema.get("Ghost").attributes
        # ...while the parent keeps rejecting it with a fresh analysis
        # of its own (divergently edited) schema.
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(bad_plan)
        assert "Ghost" not in workspace.schema

    def test_memo_hit_requires_same_log_and_seq(self):
        from repro.analysis.plan import PlanPreflightError

        workspace = Workspace(load("university"), "parent")
        bad_plan = [parse_operation("add_attribute(Ghost, long, x)")]
        for _ in range(2):
            with pytest.raises(PlanPreflightError):
                workspace.apply_plan(bad_plan)
        stats = workspace.schema.stats()
        assert stats["analysis.hits"] >= 1  # second rejection reused
        branch = workspace.fork("branch")
        with pytest.raises(PlanPreflightError):
            branch.apply_plan(bad_plan)
        # The branch recomputed: its first rejection is a miss, and its
        # memo is its own (parent memo object was not inherited).
        assert branch._analysis_memo is not None
        assert branch._analysis_memo is not workspace._analysis_memo
