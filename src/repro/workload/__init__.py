"""Synthetic schema and operation workloads for the benchmarks."""

from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)
from repro.workload.population import generate_population

__all__ = [
    "WorkloadSpec",
    "generate_operations",
    "generate_population",
    "generate_schema",
]
