"""Per-operation validation: incremental dirty-set engine vs full scan.

The paper's loop (Figure 1) validates the custom schema after *every*
operation.  At shrink-wrap scale that per-step full scan dominates the
workspace hot loop, so PR 3 adds the dirty-set engine
(:class:`repro.model.validation_cache.ValidationCache`): each operation's
declared scope plus the interface mutator hooks mark a dirty set, and
only that set (expanded by rule reach) is re-checked.

This bench replays a seeded operation stream against generated workload
schemas at 60-400 interfaces and times the validation call alone, per
step: ``schema.validation.validate()`` on one copy vs the preserved
``validate_schema`` reference on a twin copy applying the same stream.
Equality of the two issue lists is asserted at every step -- the bench
doubles as an end-to-end differential check (the fuzzer carries the same
comparison as the ``incremental-vs-full-validation`` invariant).

Acceptance floor (ISSUE 3): >= 10x at 200 interfaces.  ``make
bench-smoke`` runs the reduced configuration (``REPRO_BENCH_SMOKE=1``:
small sizes, relaxed floor) as a fast regression tripwire.
"""

from __future__ import annotations

import os
import time

from repro.knowledge.propagation import expand
from repro.model.schema import Schema
from repro.model.validation import validate_schema
from repro.ops.base import OperationContext
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (20, 60) if SMOKE else (60, 200, 400)
#: sizes at which the ISSUE's >= 10x floor is enforced
STRICT_SIZE = 200
OPERATIONS = 30 if SMOKE else 120


def _schema(size: int) -> Schema:
    spec = WorkloadSpec(
        types=size,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=max(4, size // 4),
        instance_of_chain=max(3, size // 8),
    )
    return generate_schema(spec)


def _measure(size: int) -> tuple[float, float, dict[str, int], int]:
    """(incremental s, full-scan s, validation counters, steps) at *size*.

    Both copies apply the identical expanded plan; only the validation
    call is timed, accumulated across the whole stream -- exactly the
    per-step cost the workspace loop pays.
    """
    reference = _schema(size)
    operations = generate_operations(reference, OPERATIONS, seed=11)

    incremental = reference.copy("incremental")
    scanned = reference.copy("scanned")
    context = OperationContext(reference=reference)

    incremental.validation.validate()  # build once; steady state is what recurs
    incremental.validation.reset_stats()

    incremental_time = 0.0
    scan_time = 0.0
    steps = 0
    for operation in operations:
        plan = expand(incremental, operation, context)
        for step in plan:
            step.apply(incremental, context)
            names, aspects = step.validation_scope()
            incremental.note_validation_scope(names, aspects)
            step.apply(scanned, context)
            steps += 1

            start = time.perf_counter()
            fast = incremental.validation.validate()
            incremental_time += time.perf_counter() - start

            start = time.perf_counter()
            slow = validate_schema(scanned)
            scan_time += time.perf_counter() - start

            assert fast == slow, (
                f"incremental validation diverged from the full scan after "
                f"{steps} steps at {size} interfaces"
            )
    return incremental_time, scan_time, incremental.validation.stats(), steps


def test_bench_validation_scaling(report, record_bench):
    lines = [
        "per-operation validation: dirty-set engine vs full-scan reference",
        f"mode: {'smoke' if SMOKE else 'full'}; {OPERATIONS} requested "
        "operations, validation timed per applied step",
        "",
        f"{'size':>5} {'steps':>6} {'incremental':>13} {'full scan':>12} "
        f"{'speedup':>9} {'revalidated':>12}",
    ]
    floors_checked = []
    for size in SIZES:
        incremental_time, scan_time, stats, steps = _measure(size)
        speedup = scan_time / incremental_time if incremental_time else float("inf")
        lines.append(
            f"{size:>5} {steps:>6} {incremental_time * 1e3:>11.3f}ms "
            f"{scan_time * 1e3:>10.3f}ms {speedup:>8.1f}x "
            f"{stats['interfaces_revalidated']:>12}"
        )
        lines.append(
            f"      counters: incremental={stats['incremental_validations']} "
            f"clean_hits={stats['clean_hits']} "
            f"full={stats['full_validations']} "
            f"reused={stats['interfaces_reused']}"
        )
        record_bench(
            f"validation_per_op_incremental[{size}]",
            incremental_time / steps,
            types=size,
        )
        record_bench(
            f"validation_per_op_full_scan[{size}]",
            scan_time / steps,
            types=size,
        )
        if size >= STRICT_SIZE:
            floors_checked.append((size, speedup))
            assert speedup >= 10.0, (
                f"validation at {size} interfaces: only {speedup:.1f}x over "
                "the full-scan reference (>= 10x required)"
            )
        elif SMOKE:
            # reduced configuration: regressions that erase the win
            # entirely should still trip the smoke run
            assert speedup >= 1.5, (
                f"validation at {size} interfaces: {speedup:.1f}x; the "
                "dirty-set engine no longer beats the scan in smoke mode"
            )
        # the engine must actually run incrementally: after the initial
        # build, the stream must never force a second full rebuild
        assert stats["full_validations"] == 0, stats
        assert stats["incremental_validations"] >= 1, stats
    lines.append("")
    if floors_checked:
        lines.append(
            "floor: >= 10.0x enforced at "
            + ", ".join(f"{s} types" for s, _ in floors_checked)
        )
    report("validation_scaling", "\n".join(lines))


def test_bench_validation_counters_surface():
    """Schema.stats() carries the hit/miss counters the report quotes."""
    schema = _schema(SIZES[0])
    schema.validation.validate()
    schema.get(schema.type_names()[0]).add_key(("attr1",))
    schema.validation.validate()
    schema.validation.validate()
    stats = schema.stats()
    assert stats["validation_full"] >= 1
    assert stats["validation_incremental"] >= 1
    assert stats["validation_clean_hits"] >= 1
    assert stats["validation_revalidated"] >= 1
