"""A line-oriented REPL for shrink-wrap-based schema design.

Substitutes for the paper's window/menu interface (DESIGN.md records the
substitution): the interaction protocol -- pick a concept schema, issue
restricted operations, receive feedback and impact reports, generate the
custom schema and mapping -- is identical; only the surface is text.

Commands::

    concepts                 list every concept schema
    select <id>              choose a concept schema (e.g. ww:Course)
    view <focal> <name> [<spoke,...>]  register an extra wagon wheel view
    show [<id>]              render a concept schema
    ops [<id>]               list the operations admissible there
    apply <operation(...)>   apply one operation in the current concept
    refactor <composite(...)>  apply a composite (macro) operation
    impact <operation(...)>  preview an operation's impact
    preview <op(...)[; op(...)]>  example data a pending plan admits/forbids
    examples [<type>] [<kind>]  witness + near-miss populations per constraint
    explain [<id>]           plain-prose explanation of a concept schema
    suggest                  repair suggestions for current findings
    alias <path> <name>      record a local name (Type or Type.member)
    aliases                  show the local-name mapping
    relate <X> <Y>           shortest relationship path between two types
    sql                      export the workspace as relational DDL
    er                       export the workspace as an ER model
    document                 generate the Markdown design document
    undo                     undo the last operation
    check                    run the consistency report
    odl [<type>]             print workspace ODL (canonical names)
    odl local [<type>]       print workspace ODL with local names
    script                   print the customization so far
    finish [<name>]          generate custom schema + mapping + report
    help                     this text
    quit                     leave

Run ``python -m repro.designer.cli <schema.odl>`` for an interactive
session, or drive :func:`run_commands` programmatically (the tests and
examples do).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Iterable

from repro.designer.session import DesignSession
from repro.model.errors import ReproError

_HELP = __doc__.split("Commands::", 1)[1].split("Run ``", 1)[0]


def execute(session: DesignSession, line: str) -> str:
    """Execute one command line against *session*; returns the output."""
    line = line.strip()
    if not line or line.startswith("#"):
        return ""
    command, _, argument = line.partition(" ")
    command = command.lower()
    argument = argument.strip()
    try:
        if command == "concepts":
            return session.list_concepts()
        if command == "select":
            return session.select(argument)
        if command == "view":
            parts = argument.split()
            if len(parts) < 2:
                return "usage: view <focal> <name> [<spoke,spoke,...>]"
            focal, view_name = parts[0], parts[1]
            spokes = tuple(parts[2].split(",")) if len(parts) > 2 else None
            concept = session.repository.create_wagon_wheel_view(
                focal, view_name, spoke_paths=spokes
            )
            return f"registered {concept.identifier}"
        if command == "show":
            return session.show(argument or None)
        if command == "ops":
            return session.show_operations(argument or None)
        if command == "apply":
            applied = session.modify(argument)
            recent = session.feedback.messages[-1]
            status = "ok" if applied else "REJECTED"
            return f"{status}: {recent.message}"
        if command == "refactor":
            applied = session.refactor(argument)
            recent = session.feedback.messages[-1]
            status = "ok" if applied else "REJECTED"
            return f"{status}: {recent.message}"
        if command == "impact":
            return session.preview(argument)
        if command == "preview":
            from repro.ops.language import parse_script

            plan = parse_script(argument)
            if not plan:
                return "usage: preview <operation(...)[; operation(...)]>"
            return session.repository.workspace.preview(plan).render()
        if command == "examples":
            from repro.examples.generator import (
                CONSTRAINT_KINDS, significant_examples,
            )

            parts = argument.split()
            interfaces = kinds = None
            for part in parts:
                if part in CONSTRAINT_KINDS:
                    kinds = (kinds or ()) + (part,)
                else:
                    interfaces = (interfaces or ()) + (part,)
            pairs = significant_examples(
                session.repository.workspace.schema,
                interfaces=interfaces, kinds=kinds,
            )
            if not pairs:
                return "(no example pairs for that selection)"
            return "\n\n".join(pair.render() for pair in pairs)
        if command == "explain":
            return session.explain(argument or None)
        if command == "suggest":
            return session.suggest()
        if command == "alias":
            path, _, local_name = argument.partition(" ")
            return session.set_alias(path.strip(), local_name.strip())
        if command == "aliases":
            return session.aliases()
        if command == "relate":
            from repro.analysis.paths import find_path, render_path

            source, _, target = argument.partition(" ")
            source, target = source.strip(), target.strip()
            schema = session.repository.workspace.schema
            return render_path(
                find_path(schema, source, target), source, target
            )
        if command == "sql":
            from repro.translate.relational import to_sql

            return to_sql(session.repository.workspace.schema)
        if command == "er":
            from repro.translate.er import to_er_text

            return to_er_text(session.repository.workspace.schema)
        if command == "document":
            from repro.designer.docgen import document_repository

            return document_repository(session.repository)
        if command == "undo":
            return session.undo()
        if command == "check":
            return session.check()
        if command == "odl":
            if argument.split()[:1] == ["local"]:
                from repro.odl.printer import print_interface, print_schema

                display = session.repository.display_schema()
                remainder = argument.partition(" ")[2].strip()
                if remainder:
                    if remainder not in display:
                        remainder = session.repository.local_names.local_type_name(
                            remainder
                        )
                    return print_interface(display.get(remainder))
                return print_schema(display)
            return session.show_odl(argument or None)
        if command == "script":
            return session.repository.customization_script() or "(no changes)"
        if command == "finish":
            return session.finish(argument or None).render()
        if command == "help":
            return _HELP.strip()
        if command in ("quit", "exit"):
            raise EOFError
        return f"unknown command {command!r}; try 'help'"
    except EOFError:
        raise
    except ReproError as exc:
        return f"error: {exc}"


def run_commands(session: DesignSession, lines: Iterable[str]) -> list[str]:
    """Run a scripted command sequence; returns per-command outputs."""
    outputs: list[str] = []
    for line in lines:
        try:
            outputs.append(execute(session, line))
        except EOFError:
            break
    return outputs


def main(argv: list[str] | None = None) -> int:
    """Interactive entry point: ``python -m repro.designer.cli file.odl``."""
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.designer.cli <schema.odl>")
        return 2
    text = Path(args[0]).read_text(encoding="utf-8")
    session = DesignSession.from_odl(text, name=Path(args[0]).stem)
    print(f"loaded shrink wrap schema {Path(args[0]).stem!r}; try 'concepts'")
    while True:
        try:
            line = input("designer> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = execute(session, line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    raise SystemExit(main())
