"""Text renderers for schemas and concept schemas.

The paper's tool is graphical (OMT notation, Figure 2); we substitute
ASCII renderings with the same information content -- focal points,
spokes, ISA trees, parts explosions, instance-of chains -- plus a
Graphviz DOT exporter for anyone who wants pictures.  Each renderer
corresponds to one of the paper's figures:

* :func:`render_wagon_wheel` -- Figure 3 (Course Offering wagon wheel);
* :func:`render_generalization` -- Figure 4 (Student hierarchy);
* :func:`render_aggregation` -- Figure 5 (House parts explosion);
* :func:`render_instance_of` -- Figure 6 (software version chain);
* :func:`render_object_graph` -- Figures 9-11 (object types and their
  interconnections).
"""

from __future__ import annotations

from repro.concepts.aggregation import AggregationHierarchy
from repro.concepts.base import ConceptKind, ConceptSchema
from repro.concepts.generalization import GeneralizationHierarchy
from repro.concepts.instance_of import InstanceOfHierarchy
from repro.concepts.wagon_wheel import WagonWheel
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema

_KIND_ARROW = {
    RelationshipKind.ASSOCIATION: "--",
    RelationshipKind.PART_OF: "<>-",
    RelationshipKind.INSTANCE_OF: "..",
}


def render_wagon_wheel(wheel: WagonWheel) -> str:
    """The focal type with its attribute and relationship spokes."""
    lines = [f"wagon wheel: {wheel.focal}"]
    interface = wheel.focal_interface
    if interface is not None:
        if interface.extent:
            lines.append(f"  extent: {interface.extent}")
        for key in interface.keys:
            lines.append(f"  key: ({', '.join(key)})")
        for attribute in interface.attributes.values():
            lines.append(f"  o {attribute.name}: {attribute.type}")
        for operation in interface.operations.values():
            lines.append(f"  () {operation.signature()}")
    for spoke in wheel.spokes:
        arrow = _KIND_ARROW[spoke.kind]
        many = "*" if spoke.to_many else "1"
        lines.append(
            f"  {arrow}{spoke.path_name}[{many}]--> {spoke.target_type}"
        )
    if wheel.supertype_rim:
        lines.append("  ISA: " + ", ".join(wheel.supertype_rim))
    if wheel.subtype_rim:
        lines.append("  subtypes: " + ", ".join(wheel.subtype_rim))
    return "\n".join(lines)


def render_generalization(hierarchy: GeneralizationHierarchy) -> str:
    """The ISA tree, root on top, subtypes indented (Figure 4 style)."""
    lines = [f"generalization hierarchy: {hierarchy.root}"]

    def walk(node: str, depth: int, seen: frozenset[str]) -> None:
        lines.append("  " * depth + f"  {node}")
        for child in hierarchy.children(node):
            if child not in seen:
                walk(child, depth + 1, seen | {child})

    walk(hierarchy.root, 0, frozenset({hierarchy.root}))
    return "\n".join(lines)


def render_aggregation(hierarchy: AggregationHierarchy) -> str:
    """The indented parts explosion (Figure 5 style)."""
    lines = [f"aggregation hierarchy: {hierarchy.root}"]
    for level, type_name in hierarchy.bill_of_materials():
        lines.append("  " * level + f"  <> {type_name}")
    return "\n".join(lines)


def render_instance_of(hierarchy: InstanceOfHierarchy) -> str:
    """The instance-of chain, most generic first (Figure 6 style)."""
    lines = [f"instance-of hierarchy: {hierarchy.root}"]
    if hierarchy.is_linear():
        lines.append("  " + " ..> ".join(hierarchy.chain()))
    else:
        for edge in hierarchy.edges:
            lines.append(f"  {edge.generic} ..> {edge.instance}")
    return "\n".join(lines)


def render_concept(concept: ConceptSchema) -> str:
    """Dispatch to the kind-specific renderer."""
    if isinstance(concept, WagonWheel):
        return render_wagon_wheel(concept)
    if isinstance(concept, GeneralizationHierarchy):
        return render_generalization(concept)
    if isinstance(concept, AggregationHierarchy):
        return render_aggregation(concept)
    if isinstance(concept, InstanceOfHierarchy):
        return render_instance_of(concept)
    raise TypeError(f"unknown concept schema type: {type(concept).__name__}")


def render_object_graph(schema: Schema) -> str:
    """Object types and their interconnections (Figures 9-11 style).

    One line per type, listing outgoing links; each relationship pair is
    listed once, from the end that declares the to-many direction (or
    the alphabetically first owner for one-one / many-many pairs).
    """
    lines = [f"object types of {schema.name}:"]
    listed: set[frozenset[tuple[str, str]]] = set()
    for interface in schema:
        links: list[str] = []
        if interface.supertypes:
            links.append("ISA " + ", ".join(interface.supertypes))
        for end in interface.relationships.values():
            pair = frozenset(
                {(interface.name, end.name), (end.inverse_type, end.inverse_name)}
            )
            if pair in listed:
                continue
            listed.add(pair)
            arrow = _KIND_ARROW[end.kind]
            many = "*" if end.is_to_many else "1"
            links.append(f"{arrow}{end.name}[{many}]--> {end.target_type}")
        suffix = f"  ({'; '.join(links)})" if links else ""
        lines.append(f"  {interface.name}{suffix}")
    return "\n".join(lines)


def to_dot(schema: Schema, graph_name: str | None = None) -> str:
    """Export the object-type graph as Graphviz DOT.

    Generalization edges are drawn with empty arrowheads (OMT triangle),
    part-of with diamonds, instance-of dashed -- mirroring the Figure 2
    notation legend.
    """
    name = graph_name or schema.name
    lines = [f'digraph "{name}" {{', "  node [shape=box];"]
    for interface in schema:
        lines.append(f'  "{interface.name}";')
    for interface in schema:
        for supertype in interface.supertypes:
            lines.append(
                f'  "{interface.name}" -> "{supertype}" '
                "[arrowhead=empty, label=ISA];"
            )
    listed: set[frozenset[tuple[str, str]]] = set()
    for owner, end in schema.relationship_pairs():
        pair = frozenset({(owner, end.name), (end.inverse_type, end.inverse_name)})
        if pair in listed:
            continue
        listed.add(pair)
        style = {
            RelationshipKind.ASSOCIATION: "",
            RelationshipKind.PART_OF: ", arrowtail=diamond, dir=both",
            RelationshipKind.INSTANCE_OF: ", style=dashed",
        }[end.kind]
        lines.append(
            f'  "{owner}" -> "{end.target_type}" '
            f'[label="{end.name}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def concept_listing(concepts: list[ConceptSchema]) -> str:
    """Tabular listing of concept schemas, grouped by kind."""
    lines: list[str] = []
    for kind in ConceptKind:
        group = [c for c in concepts if c.kind is kind]
        if not group:
            continue
        lines.append(f"{kind.label()} concept schemas:")
        lines.extend(f"  {c.describe()}" for c in group)
    return "\n".join(lines)
