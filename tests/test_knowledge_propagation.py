"""Unit tests for propagation rules (repro.knowledge.propagation)."""

from repro.knowledge.propagation import direct_cascades, expand
from repro.model.fingerprint import schemas_equal
from repro.odl.parser import parse_schema
from repro.ops.base import FREE_CONTEXT, OperationContext
from repro.ops.attribute_ops import DeleteAttribute, ModifyAttribute
from repro.ops.type_ops import DeleteTypeDefinition
from repro.ops.type_property_ops import DeleteSupertype, ModifySupertype


def apply_plan(schema, operation, context=FREE_CONTEXT):
    plan = expand(schema, operation, context)
    for step in plan:
        step.apply(schema, context)
    return plan


class TestDeleteTypeCascades:
    def test_relationship_pairs_removed(self, small):
        plan = apply_plan(small, DeleteTypeDefinition("Department"))
        assert "Department" not in small
        assert "works_in" not in small.get("Employee").relationships
        assert [op.op_name for op in plan] == [
            "delete_relationship", "delete_type_definition",
        ]
        small.validate()

    def test_supertype_links_removed(self, small):
        # Person is a supertype and the inherited attributes back a key
        # and an ordering; everything cascades.
        apply_plan(small, DeleteTypeDefinition("Person"))
        assert "Person" not in small
        assert small.get("Employee").supertypes == []
        small.validate()

    def test_attribute_typed_with_deleted_type(self):
        schema = parse_schema(
            """
            interface Money {};
            interface A { attribute Money cost; };
            """,
            name="s",
        )
        plan = apply_plan(schema, DeleteTypeDefinition("Money"))
        assert "cost" not in schema.get("A").attributes
        assert plan[0].op_name == "delete_attribute"
        schema.validate()

    def test_operation_signature_using_deleted_type(self):
        schema = parse_schema(
            """
            interface Money {};
            interface A { Money price(in Money base); };
            """,
            name="s",
        )
        apply_plan(schema, DeleteTypeDefinition("Money"))
        assert "price" not in schema.get("A").operations
        schema.validate()

    def test_figure7_time_slot_simplification(self, university):
        """Section 3.4: correspondence courses remove the time slot."""
        context = OperationContext(reference=university.copy())
        plan = apply_plan(
            university, DeleteTypeDefinition("Time_Slot"), context
        )
        assert "Time_Slot" not in university
        assert "offered_during" not in university.get(
            "Course_Offering"
        ).relationships
        assert plan[-1].op_name == "delete_type_definition"
        university.validate()

    def test_genome_strain_deletion(self, acedb):
        plan = apply_plan(acedb, DeleteTypeDefinition("Strain"))
        assert "found_in" not in acedb.get("Allele").relationships
        assert "maintains" not in acedb.get("Lab").relationships
        acedb.validate()
        assert len(plan) == 3  # two relationship pairs + the type


class TestAttributeCascades:
    def test_key_dropped_with_attribute(self, small):
        plan = apply_plan(small, DeleteAttribute("Person", "id"))
        assert small.get("Person").keys == []
        assert plan[0].op_name == "delete_key_list"
        small.validate()

    def test_order_by_trimmed_with_attribute(self, small):
        apply_plan(small, DeleteAttribute("Person", "name"))
        end = small.get("Department").get_relationship("staff")
        assert end.order_by == ()
        small.validate()

    def test_subtype_key_on_inherited_attribute(self):
        schema = parse_schema(
            """
            interface A { attribute long x; };
            interface B : A { keys (x); };
            """,
            name="s",
        )
        apply_plan(schema, DeleteAttribute("A", "x"))
        assert schema.get("B").keys == []
        schema.validate()

    def test_no_cascades_for_unused_attribute(self, small):
        assert direct_cascades(small, DeleteAttribute("Employee", "salary")) == []

    def test_downward_move_trims_hidden_uses(self):
        schema = parse_schema(
            """
            interface A { attribute long x; };
            interface B : A { keys (x); };
            interface C : A {};
            """,
            name="s",
        )
        # Moving x down into C hides it from B, whose key must go.
        plan = apply_plan(schema, ModifyAttribute("A", "x", "C"))
        assert schema.get("B").keys == []
        assert "x" in schema.get("C").attributes
        assert plan[0].op_name == "delete_key_list"
        schema.validate()

    def test_upward_move_has_no_cascades(self, small):
        assert (
            direct_cascades(small, ModifyAttribute("Employee", "salary", "Person"))
            == []
        )


class TestSupertypeCascades:
    def test_key_on_formerly_inherited_attribute(self, small):
        # Employee keys on inherited id, then the ISA link goes away.
        small.get("Employee").add_key(("id",))
        plan = apply_plan(small, DeleteSupertype("Employee", "Person"))
        assert small.get("Employee").keys == []
        assert plan[0].op_name == "delete_key_list"
        small.validate()

    def test_order_by_on_formerly_inherited_attribute(self, small):
        apply_plan(small, DeleteSupertype("Employee", "Person"))
        assert small.get("Department").get_relationship("staff").order_by == ()
        small.validate()

    def test_modify_supertype_cascades_like_delete(self, small):
        apply_plan(small, ModifySupertype("Employee", ("Person",), ()))
        assert small.get("Department").get_relationship("staff").order_by == ()
        small.validate()

    def test_other_inheritance_path_preserves_uses(self):
        schema = parse_schema(
            """
            interface A { attribute long x; };
            interface A2 { attribute long x2; };
            interface B : A, A2 { keys (x); };
            """,
            name="s",
        )
        plan = apply_plan(schema, DeleteSupertype("B", "A2"))
        # x is still inherited through A; the key survives.
        assert schema.get("B").keys == [("x",)]
        assert [op.op_name for op in plan] == ["delete_supertype"]


class TestExpandSemantics:
    def test_plan_replays_on_fresh_copy(self, university):
        original = university.copy()
        plan = expand(
            university, DeleteTypeDefinition("Person"),
            OperationContext(reference=original),
        )
        # Expanding must not mutate the input schema.
        assert schemas_equal(university, original)
        for step in plan:
            step.apply(university)
        university.validate()

    def test_requested_operation_is_last(self, small):
        plan = expand(small, DeleteTypeDefinition("Department"), FREE_CONTEXT)
        assert plan[-1] == DeleteTypeDefinition("Department")
