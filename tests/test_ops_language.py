"""Unit tests for the Appendix A operation language parser."""

import pytest

from repro.model.operations import Parameter
from repro.model.types import named, scalar, set_of
from repro.odl.lexer import OdlSyntaxError
from repro.ops.language import parse_operation, parse_script
from repro.ops.attribute_ops import AddAttribute, ModifyAttributeSize
from repro.ops.operation_ops import AddOperation
from repro.ops.registry import OPERATION_CLASSES
from repro.ops.relationship_ops import (
    AddRelationship,
    ModifyRelationshipTargetType,
)
from repro.ops.type_property_ops import ModifySupertype


class TestBasicForms:
    def test_add_type_definition(self):
        operation = parse_operation("add_type_definition(Course)")
        assert operation.op_name == "add_type_definition"
        assert operation.typename == "Course"

    def test_add_attribute(self):
        operation = parse_operation("add_attribute(Course, string(30), title)")
        assert operation == AddAttribute("Course", scalar("string", 30), "title")

    def test_add_attribute_with_explicit_size(self):
        """The grammar's optional [ <size> ] argument."""
        operation = parse_operation("add_attribute(Course, string, 30, title)")
        assert operation == AddAttribute("Course", scalar("string", 30), "title")

    def test_add_attribute_size_on_named_type_rejected(self):
        with pytest.raises(OdlSyntaxError):
            parse_operation("add_attribute(Course, Dept, 30, title)")

    def test_add_relationship(self):
        operation = parse_operation(
            "add_relationship(Department, set<Employee>, has, "
            "Employee::works_in_a)"
        )
        assert operation == AddRelationship(
            "Department", set_of("Employee"), "has", "Employee", "works_in_a"
        )

    def test_add_relationship_with_order_by(self):
        operation = parse_operation(
            "add_relationship(D, set<E>, has, E::w, (name, id))"
        )
        assert operation.order_by == ("name", "id")

    def test_modify_target_type_three_args(self):
        operation = parse_operation(
            "modify_relationship_target_type(Employee, works_in_a, Person)"
        )
        assert operation == ModifyRelationshipTargetType(
            "Employee", "works_in_a", "Person"
        )
        assert operation.old_target_type is None

    def test_modify_target_type_four_args(self):
        operation = parse_operation(
            "modify_relationship_target_type(Department, has, Employee, Person)"
        )
        assert operation.old_target_type == "Employee"
        assert operation.new_target_type == "Person"

    def test_modify_supertype(self):
        operation = parse_operation("modify_supertype(TA, (Student), ())")
        assert operation == ModifySupertype("TA", ("Student",), ())

    def test_modify_attribute_size_zero_means_none(self):
        operation = parse_operation("modify_attribute_size(A, name, 30, 0)")
        assert operation == ModifyAttributeSize("A", "name", 30, None)

    def test_add_operation_full(self):
        operation = parse_operation(
            "add_operation(Employee, float, salary, (in short month), "
            "(NoSuchMonth))"
        )
        assert operation == AddOperation(
            "Employee", scalar("float"), "salary",
            (Parameter("in", scalar("short"), "month"),), ("NoSuchMonth",),
        )

    def test_add_operation_exceptions_only(self):
        """An identifier list in fourth position is the raises clause."""
        operation = parse_operation("add_operation(A, void, f, (E1, E2))")
        assert operation.parameters == ()
        assert operation.exceptions == ("E1", "E2")

    def test_add_operation_empty_params(self):
        operation = parse_operation("add_operation(A, void, f, ())")
        assert operation.parameters == ()
        assert operation.exceptions == ()

    def test_add_part_of(self):
        operation = parse_operation(
            "add_part_of_relationship(House, set<Wall>, walls, Wall::of_house)"
        )
        assert operation.op_name == "add_part_of_relationship"

    def test_modify_cardinality(self):
        operation = parse_operation(
            "modify_relationship_cardinality(D, has, set<E>, list<E>)"
        )
        assert operation.old_target == set_of("E")
        assert str(operation.new_target) == "list<E>"

    def test_modify_order_by_empty_lists(self):
        operation = parse_operation(
            "modify_relationship_order_by(D, has, (name), ())"
        )
        assert operation.old_order_by == ("name",)
        assert operation.new_order_by == ()


class TestErrors:
    def test_unknown_operation(self):
        with pytest.raises(OdlSyntaxError) as info:
            parse_operation("rename_type(A, B)")
        assert "unknown operation" in str(info.value)

    def test_trailing_garbage(self):
        with pytest.raises(OdlSyntaxError):
            parse_operation("add_type_definition(A) extra")

    def test_missing_comma(self):
        with pytest.raises(OdlSyntaxError):
            parse_operation("add_attribute(A string, x)")

    def test_missing_close_paren(self):
        with pytest.raises(OdlSyntaxError):
            parse_operation("add_type_definition(A")

    def test_bad_parameter_direction(self):
        with pytest.raises(OdlSyntaxError):
            parse_operation("add_operation(A, void, f, (byref short x))")


class TestScripts:
    def test_newline_separated(self):
        script = parse_script(
            """
            add_type_definition(A)
            add_attribute(A, long, x)
            """
        )
        assert [op.op_name for op in script] == [
            "add_type_definition", "add_attribute",
        ]

    def test_semicolon_separated(self):
        script = parse_script(
            "add_type_definition(A); add_type_definition(B);"
        )
        assert len(script) == 2

    def test_comments_allowed(self):
        script = parse_script(
            """
            // introduce the schedule
            add_type_definition(Schedule)
            """
        )
        assert len(script) == 1

    def test_empty_script(self):
        assert parse_script("") == []


def _example_instance(cls):
    """Build a representative instance of each operation class."""
    from repro.model.types import list_of

    samples = {
        "add_type_definition": lambda: cls("A"),
        "delete_type_definition": lambda: cls("A"),
        "add_supertype": lambda: cls("A", "B"),
        "delete_supertype": lambda: cls("A", "B"),
        "modify_supertype": lambda: cls("A", ("B",), ("C", "D")),
        "add_extent_name": lambda: cls("A", "as_"),
        "delete_extent_name": lambda: cls("A", "as_"),
        "modify_extent_name": lambda: cls("A", "old", "new"),
        "add_key_list": lambda: cls("A", ("x", "y")),
        "delete_key_list": lambda: cls("A", ("x",)),
        "modify_key_list": lambda: cls("A", ("x",), ("x", "y")),
        "add_attribute": lambda: cls("A", scalar("string", 9), "x"),
        "delete_attribute": lambda: cls("A", "x"),
        "modify_attribute": lambda: cls("A", "x", "B"),
        "modify_attribute_type": lambda: cls(
            "A", "x", scalar("long"), named("B")
        ),
        "modify_attribute_size": lambda: cls("A", "x", 3, 9),
        "add_relationship": lambda: cls(
            "A", set_of("B"), "bs", "B", "a", ("x",)
        ),
        "delete_relationship": lambda: cls("A", "bs"),
        "modify_relationship_target_type": lambda: cls("A", "bs", "C", "B"),
        "modify_relationship_cardinality": lambda: cls(
            "A", "bs", set_of("B"), list_of("B")
        ),
        "modify_relationship_order_by": lambda: cls("A", "bs", ("x",), ()),
        "add_operation": lambda: cls(
            "A", scalar("float"), "f",
            (Parameter("in", scalar("short"), "x"),), ("E",),
        ),
        "delete_operation": lambda: cls("A", "f"),
        "modify_operation": lambda: cls("A", "f", "B"),
        "modify_operation_return_type": lambda: cls(
            "A", "f", scalar("float"), scalar("double")
        ),
        "modify_operation_arg_list": lambda: cls(
            "A", "f", (), (Parameter("in", scalar("short"), "x"),)
        ),
        "modify_operation_exceptions_raised": lambda: cls(
            "A", "f", ("E",), ()
        ),
        "add_part_of_relationship": lambda: cls(
            "A", set_of("B"), "parts", "B", "whole"
        ),
        "delete_part_of_relationship": lambda: cls("A", "parts"),
        "modify_part_of_target_type": lambda: cls("A", "parts", "C", "B"),
        "modify_part_of_cardinality": lambda: cls(
            "A", "parts", set_of("B"), list_of("B")
        ),
        "modify_part_of_order_by": lambda: cls("A", "parts", (), ("x",)),
        "add_instance_of_relationship": lambda: cls(
            "A", set_of("B"), "insts", "B", "gen"
        ),
        "delete_instance_of_relationship": lambda: cls("A", "insts"),
        "modify_instance_of_target_type": lambda: cls("A", "insts", "C", "B"),
        "modify_instance_of_cardinality": lambda: cls(
            "A", "insts", set_of("B"), list_of("B")
        ),
        "modify_instance_of_order_by": lambda: cls("A", "insts", (), ("x",)),
    }
    return samples[cls.op_name]()


@pytest.mark.parametrize(
    "cls", OPERATION_CLASSES, ids=[c.op_name for c in OPERATION_CLASSES]
)
def test_every_operation_round_trips_through_the_language(cls):
    """``parse_operation(op.to_text()) == op`` for every operation kind."""
    operation = _example_instance(cls)
    assert parse_operation(operation.to_text()) == operation
