"""Tests for schema complexity metrics and the decomposition payoff."""

from repro.analysis.metrics import decomposition_payoff, schema_metrics
from repro.odl.parser import parse_schema


class TestSchemaMetrics:
    def test_university_metrics(self, university):
        metrics = schema_metrics(university)
        assert metrics.interfaces == 16
        assert metrics.max_generalization_depth == 4
        assert metrics.isolated_types == 0
        assert metrics.constructs > 50

    def test_empty_schema(self):
        metrics = schema_metrics(parse_schema("", name="empty"))
        assert metrics.interfaces == 0
        assert metrics.constructs == 0
        assert metrics.max_relationship_fanout == 0

    def test_isolated_types_counted(self):
        schema = parse_schema(
            "interface A {}; interface B : A {}; interface C {};", name="s"
        )
        assert schema_metrics(schema).isolated_types == 1

    def test_fanout(self, university):
        # Course_Offering carries seven relationship ends.
        assert schema_metrics(university).max_relationship_fanout == 7

    def test_render(self, university):
        rendered = schema_metrics(university).render()
        assert "max generalization depth" in rendered
        assert "16" in rendered


class TestDecompositionPayoff:
    def test_each_concept_is_a_fraction_of_the_whole(self, university):
        payoff = decomposition_payoff(university)
        assert payoff.global_types == 16
        assert payoff.concept_count == 18
        # The paper's point: each point of view is far smaller than the
        # global schema the designer would otherwise face.
        assert payoff.mean_concept_fraction < 0.5
        assert payoff.largest_concept_types <= payoff.global_types

    def test_payoff_on_acedb(self, acedb):
        payoff = decomposition_payoff(acedb)
        assert payoff.mean_concept_fraction < 0.5

    def test_render(self, university):
        rendered = decomposition_payoff(university).render()
        assert "concept schemas" in rendered
        assert "%" in rendered
