"""Pass registration and the single-run driver.

A pass is a named callable over a :class:`LintContext`; registering it
declares the stable rule ids it may emit and the contract sentence the
``--list`` output and DESIGN.md §5k table show.  ``run_passes`` executes
every registered pass over one shared :class:`Codebase` load -- the
whole point of the framework is that six contract checks cost one parse
of the tree, not six.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.lint.findings import Finding
from repro.lint.loader import Codebase


@dataclass
class LintContext:
    """Everything a pass needs: the shared AST load + repo anchors."""

    codebase: Codebase
    src_root: Path  #: directory containing the ``repro`` package


@dataclass(frozen=True)
class LintPass:
    pass_id: str
    rules: tuple[str, ...]
    contract: str  #: one-line statement of the contract the pass proves
    run: Callable[[LintContext], list[Finding]] = field(compare=False)


_PASSES: dict[str, LintPass] = {}


def register_pass(
    pass_id: str, rules: Iterable[str], contract: str
) -> Callable[[Callable[[LintContext], list[Finding]]], Callable]:
    """Decorator: register *func* as the pass named *pass_id*."""

    def decorate(func: Callable[[LintContext], list[Finding]]) -> Callable:
        if pass_id in _PASSES:
            raise ValueError(f"duplicate lint pass {pass_id!r}")
        _PASSES[pass_id] = LintPass(
            pass_id=pass_id, rules=tuple(rules), contract=contract, run=func
        )
        return func

    return decorate


def all_passes() -> list[LintPass]:
    """Every registered pass, importing the bundled ones on first use."""
    import repro.lint.passes  # noqa: F401  -- registration side effect

    return [_PASSES[name] for name in sorted(_PASSES)]


def run_passes(
    context: LintContext, only: Iterable[str] | None = None
) -> tuple[list[Finding], list[dict[str, object]]]:
    """Run passes (all, or the *only* subset) and collect findings.

    Returns the findings plus a per-pass report ``[{id, findings,
    contract}, ...]`` for the JSON output; a pass that raises is
    converted into an ``error[lint-internal]`` finding rather than
    aborting the run, so one broken pass cannot mask the others.
    """
    selected = all_passes()
    if only is not None:
        wanted = set(only)
        unknown = wanted - {p.pass_id for p in selected}
        if unknown:
            raise KeyError(f"unknown pass(es): {sorted(unknown)}")
        selected = [p for p in selected if p.pass_id in wanted]
    findings: list[Finding] = []
    reports: list[dict[str, object]] = []
    for lint_pass in selected:
        try:
            produced = lint_pass.run(context)
        except Exception as exc:  # pragma: no cover - defensive
            produced = [
                Finding(
                    rule="lint-internal",
                    path=str(context.src_root),
                    line=1,
                    symbol=lint_pass.pass_id,
                    message=f"pass crashed: {exc!r}",
                )
            ]
        findings.extend(produced)
        reports.append(
            {
                "id": lint_pass.pass_id,
                "contract": lint_pass.contract,
                "rules": list(lint_pass.rules),
                "findings": len(produced),
            }
        )
    return findings, reports
