"""Tests for the local-name mapping (the Section 5 naming extension)."""

import pytest

from repro.model.errors import SchemaError
from repro.odl.printer import print_schema
from repro.repository.localnames import LocalNameMap, apply_local_names
from repro.repository.repository import SchemaRepository


class TestLocalNameMap:
    def test_alias_type(self, small):
        names = LocalNameMap()
        names.set_alias("Person", "Kunde", small)
        assert names.local_type_name("Person") == "Kunde"
        assert names.local_type_name("Employee") == "Employee"
        assert names.canonical("Kunde") == "Person"

    def test_alias_member(self, small):
        names = LocalNameMap()
        names.set_alias("Person.name", "full_name", small)
        assert names.local_member_name("Person", "name") == "full_name"
        assert names.local_member_name("Person", "id") == "id"

    def test_unknown_path_rejected(self, small):
        names = LocalNameMap()
        with pytest.raises(SchemaError):
            names.set_alias("Person.ghost", "x", small)
        from repro.model.errors import UnknownTypeError

        with pytest.raises(UnknownTypeError):
            names.set_alias("Ghost", "x", small)

    def test_type_collision_rejected(self, small):
        names = LocalNameMap()
        with pytest.raises(SchemaError):
            names.set_alias("Person", "Employee", small)

    def test_member_collision_rejected(self, small):
        names = LocalNameMap()
        with pytest.raises(SchemaError):
            names.set_alias("Person.name", "id", small)

    def test_local_name_collision_rejected(self, small):
        names = LocalNameMap()
        names.set_alias("Person", "Kunde", small)
        with pytest.raises(SchemaError):
            names.set_alias("Department", "Kunde", small)

    def test_re_alias_same_path_allowed(self, small):
        names = LocalNameMap()
        names.set_alias("Person", "Kunde", small)
        names.set_alias("Person", "Klient", small)
        assert names.local_type_name("Person") == "Klient"

    def test_remove_alias(self, small):
        names = LocalNameMap()
        names.set_alias("Person", "Kunde", small)
        names.remove_alias("Person")
        assert names.local_type_name("Person") == "Person"
        with pytest.raises(SchemaError):
            names.remove_alias("Person")

    def test_render(self, small):
        names = LocalNameMap()
        assert "no local names" in names.render()
        names.set_alias("Person", "Kunde", small)
        assert "Person -> Kunde" in names.render()


class TestApplyLocalNames:
    def test_type_rename_propagates_everywhere(self, small):
        names = LocalNameMap()
        names.set_alias("Person", "Kunde", small)
        display = apply_local_names(small, names)
        assert "Kunde" in display and "Person" not in display
        assert display.get("Employee").supertypes == ["Kunde"]
        display.validate()

    def test_relationship_rename_fixes_inverse(self, small):
        names = LocalNameMap()
        names.set_alias("Employee.works_in", "arbeitet_in", small)
        display = apply_local_names(small, names)
        end = display.get("Employee").get_relationship("arbeitet_in")
        assert end.target_type == "Department"
        inverse = display.get("Department").get_relationship("staff")
        assert inverse.inverse_name == "arbeitet_in"
        display.validate()

    def test_attribute_rename_fixes_keys_and_order_by(self, small):
        names = LocalNameMap()
        names.set_alias("Person.id", "ident", small)
        names.set_alias("Person.name", "full_name", small)
        display = apply_local_names(small, names)
        assert display.get("Person").keys == [("ident",)]
        # Department.staff orders by Employee's *inherited* name; the
        # provider is Person, so the alias applies.
        end = display.get("Department").get_relationship("staff")
        assert end.order_by == ("full_name",)
        display.validate()

    def test_shadowing_attribute_not_renamed(self, small):
        from repro.model.attributes import Attribute
        from repro.model.types import scalar

        small.get("Employee").add_attribute(Attribute("name", scalar("long")))
        names = LocalNameMap()
        names.set_alias("Person.name", "full_name", small)
        display = apply_local_names(small, names)
        # Employee's own shadowing attribute keeps its name, and the
        # ordering on staff (targeting Employee) resolves to the shadow.
        assert "name" in display.get("Employee").attributes
        end = display.get("Department").get_relationship("staff")
        assert end.order_by == ("name",)

    def test_display_round_trips_as_odl(self, small):
        names = LocalNameMap()
        names.set_alias("Person", "Kunde", small)
        names.set_alias("Employee.works_in", "arbeitet_in", small)
        from repro.odl.parser import parse_schema

        display = apply_local_names(small, names)
        reparsed = parse_schema(print_schema(display), name="display")
        reparsed.validate()


class TestRepositoryIntegration:
    def test_display_schema(self, small):
        repository = SchemaRepository(small)
        repository.local_names.set_alias(
            "Person", "Kunde", repository.workspace.schema
        )
        display = repository.display_schema()
        assert "Kunde" in display

    def test_aliases_persist(self, small, tmp_path):
        from repro.repository.persistence import (
            load_repository,
            save_repository,
        )

        repository = SchemaRepository(small)
        repository.local_names.set_alias(
            "Person", "Kunde", repository.workspace.schema
        )
        path = tmp_path / "repo.json"
        save_repository(repository, path)
        restored = load_repository(path)
        assert restored.local_names.local_type_name("Person") == "Kunde"

    def test_cli_alias_commands(self, small):
        from repro.designer.cli import execute
        from repro.designer.session import DesignSession

        session = DesignSession(SchemaRepository(small))
        assert "locally known as Kunde" in execute(session, "alias Person Kunde")
        assert "Person -> Kunde" in execute(session, "aliases")
        localized = execute(session, "odl local Person")
        assert localized.startswith("interface Kunde")
        canonical = execute(session, "odl Person")
        assert canonical.startswith("interface Person")
