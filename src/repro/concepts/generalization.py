"""Generalization hierarchy concept schemas.

"A generalization hierarchy specifies the object types that participate
in subtype/supertype relationships ... Each generalization concept schema
describes all subclasses of the root type and allows the schema designer
to consider the inheritance patterns, distinctly from the various wagon
wheels." (Section 3.3.2)

One concept schema is extracted per hierarchy *root* (a type with
subtypes but no supertypes).  The paper's single-root assumption
(Section 3.2) is honoured softly: a multi-root ISA component yields one
concept schema per root, and schema validation emits a
``multi-root-hierarchy`` warning suggesting an abstract supertype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind, ConceptSchema
from repro.model.schema import Schema


@dataclass(frozen=True)
class IsaEdge:
    """One subtype -> supertype link of the hierarchy."""

    subtype: str
    supertype: str

    def describe(self) -> str:
        return f"{self.subtype} ISA {self.supertype}"


@dataclass(frozen=True)
class GeneralizationHierarchy(ConceptSchema):
    """A rooted view of one inheritance hierarchy."""

    edges: tuple[IsaEdge, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", ConceptKind.GENERALIZATION)

    @property
    def root(self) -> str:
        """The unique root type of this hierarchy (alias of ``anchor``)."""
        return self.anchor

    def children(self, type_name: str) -> list[str]:
        """Direct subtypes of *type_name* within this hierarchy."""
        return [e.subtype for e in self.edges if e.supertype == type_name]

    def parents(self, type_name: str) -> list[str]:
        """Direct supertypes of *type_name* within this hierarchy."""
        return [e.supertype for e in self.edges if e.subtype == type_name]

    def depth(self) -> int:
        """Longest root-to-leaf path length (0 for a lone root)."""

        def walk(node: str, seen: frozenset[str]) -> int:
            subtypes = [c for c in self.children(node) if c not in seen]
            if not subtypes:
                return 0
            return 1 + max(walk(c, seen | {c}) for c in subtypes)

        return walk(self.root, frozenset({self.root}))

    def inheritance_paths(self) -> list[list[str]]:
        """All root-to-leaf paths, each listed root first.

        These are the "inheritance paths between object types" the
        concept schema exists to make visible.
        """
        paths: list[list[str]] = []

        def walk(node: str, path: list[str]) -> None:
            subtypes = [c for c in self.children(node) if c not in path]
            if not subtypes:
                paths.append(list(path))
                return
            for child in subtypes:
                walk(child, path + [child])

        walk(self.root, [self.root])
        return paths


def extract_generalization_hierarchy(
    schema: Schema, root: str
) -> GeneralizationHierarchy:
    """Extract the hierarchy rooted at *root*.

    Members are the root and all its transitive subtypes; edges are every
    ISA link between two members.  (With multiple inheritance a member
    may also have supertypes outside this hierarchy -- those edges belong
    to the hierarchy of their own root.)
    """
    members = {root} | schema.descendants(root)
    # Visit only the members (declaration order preserved via the index)
    # instead of scanning every interface per root.
    order = schema.index.declaration_order()
    edges = tuple(
        IsaEdge(name, supertype)
        for name in sorted(members, key=order.__getitem__)
        for supertype in schema.get(name).supertypes
        if supertype in members
    )
    return GeneralizationHierarchy(
        anchor=root, members=frozenset(members), edges=edges
    )


def extract_all_generalization_hierarchies(
    schema: Schema,
) -> list[GeneralizationHierarchy]:
    """One hierarchy per generalization root, in declaration order."""
    return [
        extract_generalization_hierarchy(schema, root)
        for root in schema.generalization_roots()
    ]
