"""Unit tests for attribute operations."""

import pytest

from repro.model.fingerprint import schema_fingerprint
from repro.model.types import named, scalar
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.base import (
    ConstraintViolation,
    OperationContext,
    SemanticStabilityError,
)


class TestAddAttribute:
    def test_add(self, small):
        AddAttribute("Person", scalar("date"), "dob").apply(small)
        assert small.get("Person").get_attribute("dob").type == scalar("date")

    def test_duplicate_name_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddAttribute("Person", scalar("long"), "name").apply(small)

    def test_relationship_name_clash_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddAttribute("Employee", scalar("long"), "works_in").apply(small)

    def test_undefined_domain_type_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddAttribute("Person", named("Ghost"), "spooky").apply(small)

    def test_undo(self, small):
        before = schema_fingerprint(small)
        undo = AddAttribute("Person", scalar("date"), "dob").apply(small)
        undo()
        assert schema_fingerprint(small) == before

    def test_text_form(self):
        operation = AddAttribute("A", scalar("string", 30), "name")
        assert operation.to_text() == "add_attribute(A, string(30), name)"


class TestDeleteAttribute:
    def test_delete(self, small):
        DeleteAttribute("Employee", "salary").apply(small)
        assert "salary" not in small.get("Employee").attributes

    def test_missing_rejected(self, small):
        from repro.model.errors import UnknownPropertyError

        with pytest.raises(UnknownPropertyError):
            DeleteAttribute("Person", "ghost").apply(small)

    def test_key_use_blocks_bare_delete(self, small):
        with pytest.raises(ConstraintViolation) as info:
            DeleteAttribute("Person", "id").apply(small)
        assert "key" in str(info.value)

    def test_order_by_use_blocks_bare_delete(self, small):
        # Department.staff orders by Employee's inherited 'name'.
        with pytest.raises(ConstraintViolation) as info:
            DeleteAttribute("Person", "name").apply(small)
        assert "order_by" in str(info.value)

    def test_shadowed_attribute_does_not_block(self, small):
        # Give Employee its own 'name'; deleting Person.name then leaves
        # the ordering on Department.staff satisfied by the shadow.
        AddAttribute("Employee", scalar("string", 10), "name").apply(small)
        DeleteAttribute("Person", "name").apply(small)
        assert "name" not in small.get("Person").attributes

    def test_undo_restores_declaration_order(self, small):
        # Remove the blocking key first, then delete and undo.
        small.get("Person").remove_key(("id",))
        undo = DeleteAttribute("Person", "id").apply(small)
        undo()
        assert list(small.get("Person").attributes) == ["id", "name"]


class TestModifyAttributeMove:
    def test_move_up_hierarchy(self, small):
        context = OperationContext(reference=small.copy())
        ModifyAttribute("Employee", "salary", "Person").apply(small, context)
        assert "salary" in small.get("Person").attributes
        assert "salary" not in small.get("Employee").attributes

    def test_move_down_hierarchy(self, small):
        context = OperationContext(reference=small.copy())
        ModifyAttribute("Person", "name", "Employee").apply(small, context)
        assert "name" in small.get("Employee").attributes

    def test_move_to_unrelated_type_rejected(self, small):
        context = OperationContext(reference=small.copy())
        with pytest.raises(SemanticStabilityError):
            ModifyAttribute("Employee", "salary", "Department").apply(
                small, context
            )

    def test_move_to_same_type_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyAttribute("Person", "name", "Person").apply(small)

    def test_move_to_occupied_name_rejected(self, small):
        AddAttribute("Person", scalar("float"), "salary").apply(small)
        with pytest.raises(ConstraintViolation):
            ModifyAttribute("Employee", "salary", "Person").apply(small)

    def test_stability_uses_reference_hierarchy(self, small):
        """Moves are bounded by the *shrink wrap* hierarchy (Section 3.2)."""
        reference = small.copy()
        context = OperationContext(reference=reference)
        # Sever the ISA link in the workspace only; the reference still
        # relates the two types, so the move remains legal.
        small.get("Employee").remove_supertype("Person")
        ModifyAttribute("Employee", "salary", "Person").apply(small, context)
        assert "salary" in small.get("Person").attributes

    def test_move_undo(self, small):
        before = schema_fingerprint(small)
        undo = ModifyAttribute("Employee", "salary", "Person").apply(small)
        undo()
        assert schema_fingerprint(small) == before


class TestModifyAttributeValue:
    def test_retype(self, small):
        ModifyAttributeType(
            "Person", "id", scalar("long"), scalar("string", 12)
        ).apply(small)
        assert small.get("Person").get_attribute("id").type == scalar(
            "string", 12
        )

    def test_retype_checks_old_type(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyAttributeType(
                "Person", "id", scalar("short"), scalar("long")
            ).apply(small)

    def test_resize(self, small):
        ModifyAttributeSize("Person", "name", 30, 60).apply(small)
        assert small.get("Person").get_attribute("name").size == 60

    def test_resize_checks_old_size(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyAttributeSize("Person", "name", 10, 60).apply(small)

    def test_resize_non_scalar_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyAttributeSize("Employee", "salary", None, 10).apply(small)

    def test_resize_to_unbounded(self, small):
        ModifyAttributeSize("Person", "name", 30, None).apply(small)
        assert small.get("Person").get_attribute("name").size is None

    def test_value_undo(self, small):
        before = schema_fingerprint(small)
        undo = ModifyAttributeSize("Person", "name", 30, 60).apply(small)
        undo()
        assert schema_fingerprint(small) == before
