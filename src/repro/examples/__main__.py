"""CLI: print significant examples for a catalog or ODL schema.

Usage::

    python -m repro.examples university
    python -m repro.examples university --interface Course_Offering
    python -m repro.examples path/to/schema.odl --kind key --kind order-by
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from repro.catalog import SCHEMA_BUILDERS, load
from repro.examples.generator import CONSTRAINT_KINDS, significant_examples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.examples",
        description=(
            "Generate minimal witness and near-miss populations for every "
            "instance-level constraint of a schema."
        ),
    )
    parser.add_argument(
        "schema",
        help=(
            "a catalog schema name "
            f"({', '.join(SCHEMA_BUILDERS)}) or a .odl file"
        ),
    )
    parser.add_argument(
        "--interface", action="append", default=None,
        help="restrict to constraint sites of this interface (repeatable)",
    )
    parser.add_argument(
        "--kind", action="append", default=None, choices=CONSTRAINT_KINDS,
        help="restrict to this constraint family (repeatable)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print only the per-kind pair counts",
    )
    options = parser.parse_args(argv)
    if options.schema in SCHEMA_BUILDERS:
        schema = load(options.schema)
    else:
        from repro.odl import parse_schema

        path = Path(options.schema)
        if not path.exists():
            print(f"unknown schema {options.schema!r}", file=sys.stderr)
            return 2
        schema = parse_schema(
            path.read_text(encoding="utf-8"), name=path.stem
        )
    pairs = significant_examples(
        schema, interfaces=options.interface, kinds=options.kind
    )
    counts = Counter(pair.kind for pair in pairs)
    if not options.summary:
        for pair in pairs:
            print(pair.render())
            print()
    summary = ", ".join(
        f"{kind}: {counts.get(kind, 0)}" for kind in CONSTRAINT_KINDS
    )
    print(f"{len(pairs)} example pair(s) -- {summary}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
