"""Tests for additional wagon wheel views (several wheels per type)."""

import pytest

from repro.concepts.wagon_wheel import extract_wagon_wheel_view
from repro.model.errors import SchemaError
from repro.repository.repository import SchemaRepository
from repro.ops.language import parse_operation


class TestExtraction:
    def test_view_identifier_carries_name(self, university):
        view = extract_wagon_wheel_view(
            university, "Course_Offering", "scheduling",
            spoke_paths=("offered_during", "duration_of"),
        )
        assert view.identifier == "ww:Course_Offering#scheduling"
        assert view.view == "scheduling"

    def test_spoke_filtering(self, university):
        view = extract_wagon_wheel_view(
            university, "Course_Offering", "scheduling",
            spoke_paths=("offered_during", "duration_of"),
        )
        assert {s.target_type for s in view.spokes} == {"Time_Slot", "Length"}
        assert "Book" not in view.members
        assert "Time_Slot" in view.members

    def test_attribute_filtering_preserves_consistent_keys(self, university):
        view = extract_wagon_wheel_view(
            university, "Course", "naming", spoke_paths=(),
            attribute_names=("number", "title"),
        )
        assert list(view.focal_interface.attributes) == ["number", "title"]
        assert view.focal_interface.keys == [("number",)]
        narrower = extract_wagon_wheel_view(
            university, "Course", "untitled", spoke_paths=(),
            attribute_names=("title",),
        )
        # The key on number cannot survive a view without number.
        assert narrower.focal_interface.keys == []

    def test_none_keeps_everything(self, university):
        from repro.concepts.wagon_wheel import extract_wagon_wheel

        full = extract_wagon_wheel(university, "Course_Offering")
        view = extract_wagon_wheel_view(
            university, "Course_Offering", "everything"
        )
        assert view.spokes == full.spokes
        assert view.members == full.members

    def test_unknown_spoke_rejected(self, university):
        with pytest.raises(SchemaError):
            extract_wagon_wheel_view(
                university, "Course_Offering", "bad", spoke_paths=("ghost",)
            )

    def test_unknown_attribute_rejected(self, university):
        with pytest.raises(SchemaError):
            extract_wagon_wheel_view(
                university, "Course_Offering", "bad",
                attribute_names=("ghost",),
            )

    def test_empty_view_name_rejected(self, university):
        with pytest.raises(SchemaError):
            extract_wagon_wheel_view(university, "Course_Offering", "")


class TestRepositoryIntegration:
    def test_view_addressable_like_any_concept(self, university):
        repository = SchemaRepository(university)
        repository.create_wagon_wheel_view(
            "Course_Offering", "scheduling",
            spoke_paths=("offered_during", "duration_of"),
        )
        concept = repository.concept("ww:Course_Offering#scheduling")
        assert concept.covers_type("Time_Slot")

    def test_duplicate_view_rejected(self, university):
        repository = SchemaRepository(university)
        repository.create_wagon_wheel_view("Course", "v1", spoke_paths=())
        with pytest.raises(SchemaError):
            repository.create_wagon_wheel_view("Course", "v1", spoke_paths=())

    def test_operations_through_a_view_are_restricted(self, university):
        from repro.ops.base import InadmissibleOperationError

        repository = SchemaRepository(university)
        repository.create_wagon_wheel_view("Course", "v1", spoke_paths=())
        with pytest.raises(InadmissibleOperationError):
            repository.apply(
                parse_operation("add_supertype(Course, Person)"),
                concept_id="ww:Course#v1",
            )
        repository.apply(
            parse_operation("add_attribute(Course, short, level)"),
            concept_id="ww:Course#v1",
        )
        assert "level" in repository.workspace.schema.get("Course").attributes

    def test_view_reflects_workspace_state(self, university):
        repository = SchemaRepository(university)
        repository.apply(
            parse_operation("add_attribute(Course, short, level)")
        )
        view = repository.create_wagon_wheel_view(
            "Course", "levels", spoke_paths=(), attribute_names=("level",)
        )
        assert "level" in view.focal_interface.attributes


class TestViewPersistence:
    def test_views_survive_save_and_load(self, university, tmp_path):
        from repro.repository.persistence import (
            load_repository,
            save_repository,
        )

        repository = SchemaRepository(university, custom_name="viewed")
        repository.create_wagon_wheel_view(
            "Course_Offering", "scheduling",
            spoke_paths=("offered_during", "duration_of"),
        )
        repository.apply(
            parse_operation("delete_attribute(Course_Offering, room)"),
            concept_id="ww:Course_Offering#scheduling",
        )
        path = tmp_path / "repo.json"
        save_repository(repository, path)
        restored = load_repository(path)
        concept = restored.concept("ww:Course_Offering#scheduling")
        assert {s.target_type for s in concept.spokes} == {
            "Time_Slot", "Length"
        }
        assert restored.workspace.log[0].concept_id == (
            "ww:Course_Offering#scheduling"
        )

    def test_view_created_mid_script_sees_same_state(self, university, tmp_path):
        from repro.repository.persistence import (
            load_repository,
            save_repository,
        )

        repository = SchemaRepository(university, custom_name="viewed")
        # The spoke this view filters on only exists after the first op.
        repository.apply(
            parse_operation(
                "add_relationship(Course_Offering, Department, hosted_by, "
                "Department::hosts)"
            )
        )
        repository.create_wagon_wheel_view(
            "Course_Offering", "hosting", spoke_paths=("hosted_by",)
        )
        path = tmp_path / "repo.json"
        save_repository(repository, path)
        restored = load_repository(path)
        concept = restored.concept("ww:Course_Offering#hosting")
        assert {s.path_name for s in concept.spokes} == {"hosted_by"}


class TestModuleWrapper:
    def test_module_sets_schema_name(self):
        from repro.odl.parser import parse_schema

        schema = parse_schema(
            "module Univ { interface A {}; interface B : A {}; };"
        )
        assert schema.name == "Univ"
        assert schema.type_names() == ["A", "B"]

    def test_module_requires_closing_brace(self):
        from repro.odl.lexer import OdlSyntaxError
        from repro.odl.parser import parse_schema

        with pytest.raises(OdlSyntaxError):
            parse_schema("module Univ { interface A {};")

    def test_unwrapped_schemas_still_parse(self):
        from repro.odl.parser import parse_schema

        assert parse_schema("interface A {};", name="n").name == "n"
