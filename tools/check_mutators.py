#!/usr/bin/env python
"""Static check: every public mutator lands a record on the spine.

The mutation spine only works as a single source of change truth if no
mutator forgets to emit -- exactly the per-layer-hook bug class the
refactor deleted.  This script parses ``interface.py`` and ``schema.py``
with the stdlib ``ast`` and asserts that every public mutator method
(``add_*`` / ``remove_*`` / ``replace_*`` / ``set_*`` / ``insert_*`` /
``reorder_*`` / ``touch*``) on :class:`InterfaceDef` / :class:`Schema`
reaches a ``self._emit(...)`` or ``self._log.emit(...)`` call, directly
or through other methods of the same class (fixpoint over ``self.``
calls, so ``Schema.add_interface -> self._adopt -> self._log.emit``
counts).

Copy-on-write schemas (DESIGN.md 5j) add a second obligation on
``InterfaceDef``: borrowers (forks, wagon wheels, payload freezes)
settle at the *moment before* the first divergent write, so every
public mutator must run ``self._cow_barrier()`` as its literal first
statement (after the docstring).  A mutator that bypasses the fault
hook would silently write through shared CoW state; the check makes
that an error.

It also checks the compiled-plan fast path:
``Workspace.apply_plan_compiled`` promises the same ``MutationRecord``
stream as per-op application, which holds only if every mutation flows
through ``expand_applying`` (the ops' own ``step.apply``) followed by
``self._note_scopes``.  The check asserts both calls are present and
that neither the method nor any ``Workspace`` helper reachable from it
calls a mutator-prefixed method or writes model containers directly --
either would put records on the spine the per-op path does not (or,
worse, mutate without a record at all).

Run via ``make lint`` and CI; exits 1 listing every silent mutator.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro" / "model"

#: file -> class whose mutators must emit
TARGETS = {
    "interface.py": "InterfaceDef",
    "schema.py": "Schema",
}

MUTATOR_PREFIXES = (
    "add_",
    "remove_",
    "replace_",
    "set_",
    "insert_",
    "reorder_",
    "touch",
)

WORKSPACE_PATH = SRC.parent / "repository" / "workspace.py"
COMPILED_ENTRY = "apply_plan_compiled"

#: classes whose mutators must run the CoW fault hook first
COW_BARRIER_TARGETS = {"interface.py": "InterfaceDef"}


def _is_emit_call(node: ast.Call) -> bool:
    """True for ``self._emit(...)`` or ``self._log.emit(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "_emit":
        return isinstance(func.value, ast.Name) and func.value.id == "self"
    if func.attr == "emit":
        inner = func.value
        return (
            isinstance(inner, ast.Attribute)
            and inner.attr == "_log"
            and isinstance(inner.value, ast.Name)
            and inner.value.id == "self"
        )
    return False


def _self_calls(function: ast.FunctionDef) -> set[str]:
    """Names of other ``self.method(...)`` calls inside *function*."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                names.add(target.attr)
    return names


def _methods_of(tree: ast.Module, class_name: str) -> dict[str, ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
    raise SystemExit(f"class {class_name} not found")


def _emitting_methods(methods: dict[str, ast.FunctionDef]) -> set[str]:
    """Fixpoint: methods that reach an emit call through ``self.``."""
    emitting = {
        name
        for name, function in methods.items()
        if any(
            isinstance(node, ast.Call) and _is_emit_call(node)
            for node in ast.walk(function)
        )
    }
    changed = True
    while changed:
        changed = False
        for name, function in methods.items():
            if name in emitting:
                continue
            if _self_calls(function) & emitting:
                emitting.add(name)
                changed = True
    return emitting


def _reachable_methods(
    methods: dict[str, ast.FunctionDef], entry: str
) -> dict[str, ast.FunctionDef]:
    """*entry* plus every same-class method reachable via ``self.``."""
    frontier = [entry]
    reached: dict[str, ast.FunctionDef] = {}
    while frontier:
        name = frontier.pop()
        if name in reached or name not in methods:
            continue
        reached[name] = methods[name]
        frontier.extend(_self_calls(methods[name]))
    return reached


def _calls_in(function: ast.FunctionDef) -> list[ast.Call]:
    return [
        node for node in ast.walk(function) if isinstance(node, ast.Call)
    ]


def _call_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _starts_with_cow_barrier(function: ast.FunctionDef) -> bool:
    """True when ``self._cow_barrier()`` is the first real statement."""
    body = function.body
    index = 0
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        index = 1  # skip the docstring
    if index >= len(body):
        return False
    statement = body[index]
    return (
        isinstance(statement, ast.Expr)
        and isinstance(statement.value, ast.Call)
        and isinstance(statement.value.func, ast.Attribute)
        and statement.value.func.attr == "_cow_barrier"
        and isinstance(statement.value.func.value, ast.Name)
        and statement.value.func.value.id == "self"
    )


def check_cow_barriers() -> list[str]:
    """Every public InterfaceDef mutator faults CoW borrowers first.

    The barrier must be the *first* statement: a mutator that validates,
    raises, or -- worse -- writes before settling would let a fork or
    snapshot observe (or miss) a half-applied change.
    """
    failures: list[str] = []
    for filename, class_name in COW_BARRIER_TARGETS.items():
        path = SRC / filename
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        methods = _methods_of(tree, class_name)
        for name in sorted(methods):
            if name.startswith("_") or not name.startswith(MUTATOR_PREFIXES):
                continue
            if not _starts_with_cow_barrier(methods[name]):
                failures.append(
                    f"{path}:{methods[name].lineno}: {class_name}.{name} "
                    "does not run self._cow_barrier() as its first "
                    "statement; the mutator bypasses the CoW fault hook"
                )
    return failures


def check_compiled_plan(path: Path = WORKSPACE_PATH) -> list[str]:
    """The compiled-plan path mutates only through the sanctioned calls.

    ``apply_plan_compiled`` must reach ``expand_applying`` (every
    mutation is a ``step.apply`` inside it, emitting the same records
    the per-op path emits) and ``self._note_scopes`` (the same per-step
    scope notes).  Conversely, no method reachable from it may call a
    mutator-prefixed method or store/delete through a subscript -- any
    such channel would skew the record stream away from per-op parity.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    methods = _methods_of(tree, "Workspace")
    if COMPILED_ENTRY not in methods:
        return [f"{path}: Workspace.{COMPILED_ENTRY} not found"]
    entry = methods[COMPILED_ENTRY]
    failures: list[str] = []
    called = {_call_name(call) for call in _calls_in(entry)}
    for required in ("expand_applying", "_note_scopes"):
        if required not in called:
            failures.append(
                f"{path}:{entry.lineno}: Workspace.{COMPILED_ENTRY} no "
                f"longer calls {required}; the compiled pass must mutate "
                "through expand_applying and note each step's scope"
            )
    for name, function in sorted(_reachable_methods(
        methods, COMPILED_ENTRY
    ).items()):
        for call in _calls_in(function):
            target = _call_name(call)
            if target is not None and target.startswith(MUTATOR_PREFIXES):
                failures.append(
                    f"{path}:{call.lineno}: Workspace.{name} (reachable "
                    f"from {COMPILED_ENTRY}) calls mutator {target!r}; "
                    "compiled plans must mutate only via expand_applying"
                )
        for node in ast.walk(function):
            targets: list[ast.expr] = []
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if isinstance(target, ast.Subscript):
                    failures.append(
                        f"{path}:{node.lineno}: Workspace.{name} "
                        f"(reachable from {COMPILED_ENTRY}) writes a "
                        "container by subscript; compiled plans must not "
                        "mutate model state outside expand_applying"
                    )
    return failures


def main() -> int:
    failures: list[str] = []
    checked = 0
    for filename, class_name in TARGETS.items():
        path = SRC / filename
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        methods = _methods_of(tree, class_name)
        emitting = _emitting_methods(methods)
        for name in sorted(methods):
            if name.startswith("_") or not name.startswith(MUTATOR_PREFIXES):
                continue
            checked += 1
            if name not in emitting:
                failures.append(
                    f"{path}:{methods[name].lineno}: "
                    f"{class_name}.{name} mutates without emitting a "
                    "MutationRecord (self._emit / self._log.emit unreachable)"
                )
    cow_failures = check_cow_barriers()
    compiled_failures = check_compiled_plan()
    if failures or cow_failures or compiled_failures:
        if failures:
            print("\n".join(failures), file=sys.stderr)
            print(
                f"\n{len(failures)} silent mutator(s); every public mutator "
                "must land a record on the mutation spine (DESIGN.md 5e).",
                file=sys.stderr,
            )
        if cow_failures:
            print("\n".join(cow_failures), file=sys.stderr)
            print(
                f"\n{len(cow_failures)} CoW bypass(es); every InterfaceDef "
                "mutator must settle borrowers via self._cow_barrier() "
                "before writing (DESIGN.md 5j).",
                file=sys.stderr,
            )
        if compiled_failures:
            print("\n".join(compiled_failures), file=sys.stderr)
            print(
                f"\n{len(compiled_failures)} compiled-plan violation(s); "
                "apply_plan_compiled must emit the per-op record stream "
                "(DESIGN.md 5g).",
                file=sys.stderr,
            )
        return 1
    print(
        f"check_mutators: {checked} public mutators all emit records and "
        "run the CoW barrier first; compiled-plan path mutates only via "
        "expand_applying"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
