"""Tests for the completeness analysis (Tables 2/3, Section 3.5)."""

import pytest

from repro.analysis.completeness import (
    TABLE2_ADDITIONS,
    TABLE3_MODIFICATIONS,
    add_only_script,
    coverage_gaps,
    delete_only_script,
    format_table,
    full_rebuild_script,
    table2_rows,
    table3_rows,
)
from repro.catalog import SCHEMA_BUILDERS
from repro.knowledge.propagation import expand
from repro.model.fingerprint import schemas_equal
from repro.model.schema import Schema
from repro.ops.base import OperationContext
from repro.ops.registry import OPERATIONS_BY_NAME


class TestCoverageTables:
    def test_no_gaps(self):
        """Every Table 2/3 operation exists in the registry."""
        assert coverage_gaps() == []

    def test_every_candidate_has_an_add(self):
        for row in table2_rows("add"):
            assert row.implemented, row

    def test_delete_table_mirrors_add_table(self):
        """Paper: deletion operations are identical with 'add' -> 'delete'."""
        for add_row, delete_row in zip(table2_rows("add"), table2_rows("delete")):
            assert delete_row.operation == "delete" + add_row.operation[3:]
            assert delete_row.implemented

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            table2_rows("modify")

    def test_name_rows_have_no_modify(self):
        """Names are never modifiable (name equivalence)."""
        name_rows = [
            row for row in table3_rows()
            if row.sub_candidate in ("Type name", "Traversal path name",
                                     "Inverse path name")
        ]
        assert name_rows
        assert all(row.operation is None for row in name_rows)

    def test_every_registry_modify_appears_in_table3(self):
        table_ops = {
            row.operation for row in table3_rows() if row.operation
        }
        registry_modifies = {
            name for name, cls in OPERATIONS_BY_NAME.items()
            if cls.action == "modify"
        }
        assert registry_modifies == table_ops

    def test_every_registry_add_appears_in_table2(self):
        table_ops = {row.operation for row in table2_rows("add")}
        registry_adds = {
            name for name, cls in OPERATIONS_BY_NAME.items()
            if cls.action == "add"
        }
        assert registry_adds == table_ops

    def test_tables_cover_26_candidates(self):
        assert len(TABLE2_ADDITIONS) == 26
        assert len(TABLE3_MODIFICATIONS) == 26

    def test_format_table(self):
        rendered = format_table(table2_rows("add"), "Table 2")
        assert rendered.startswith("Table 2")
        assert "add_type_definition" in rendered


def _apply_with_propagation(schema, plan, reference):
    context = OperationContext(reference=reference)
    for operation in plan:
        for step in expand(schema, operation, context):
            step.apply(schema, context)


class TestReachability:
    """Section 3.5: any schema is reachable with add/delete alone."""

    @pytest.mark.parametrize("name", sorted(SCHEMA_BUILDERS))
    def test_add_only_script_builds_catalog_schema(self, name):
        target = SCHEMA_BUILDERS[name]()
        scratch = Schema("empty")
        _apply_with_propagation(scratch, add_only_script(target), target)
        assert schemas_equal(scratch, target)

    @pytest.mark.parametrize("name", ["university", "acedb", "lumber_yard"])
    def test_delete_only_script_empties_schema(self, name):
        source = SCHEMA_BUILDERS[name]()
        scratch = source.copy()
        _apply_with_propagation(scratch, delete_only_script(source), source)
        assert len(scratch) == 0

    def test_full_rebuild_reaches_any_target(self):
        source = SCHEMA_BUILDERS["university"]()
        target = SCHEMA_BUILDERS["acedb"]()
        scratch = source.copy()
        _apply_with_propagation(
            scratch, full_rebuild_script(source, target), source
        )
        assert schemas_equal(scratch, target)
