"""Unit tests for the workspace (apply / undo / redo / log)."""

import pytest

from repro.concepts.base import ConceptKind
from repro.concepts.decompose import decompose
from repro.model.attributes import Attribute
from repro.model.fingerprint import schema_fingerprint, schemas_equal
from repro.model.types import NamedType, scalar
from repro.ops.attribute_ops import AddAttribute, DeleteAttribute
from repro.ops.base import ConstraintViolation, InadmissibleOperationError
from repro.ops.type_ops import DeleteTypeDefinition
from repro.ops.type_property_ops import AddSupertype
from repro.repository.workspace import Workspace


@pytest.fixture
def workspace(small):
    return Workspace(small, name="small_custom")


class TestApply:
    def test_apply_changes_workspace_not_reference(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        assert "dob" in workspace.schema.get("Person").attributes
        assert "dob" not in workspace.reference.get("Person").attributes

    def test_propagation_by_default(self, workspace):
        entry = workspace.apply(DeleteTypeDefinition("Department"))
        assert len(entry.plan) == 2
        workspace.schema.validate()

    def test_propagation_disabled_fails_on_referenced_type(self, workspace):
        with pytest.raises(ConstraintViolation):
            workspace.apply(DeleteTypeDefinition("Department"), propagate=False)
        # The failed apply must leave the workspace untouched.
        assert schemas_equal(workspace.schema, workspace.reference)
        assert workspace.log == []

    def test_concept_admissibility_enforced(self, workspace):
        wheel = decompose(workspace.reference).by_identifier("ww:Person")
        with pytest.raises(InadmissibleOperationError):
            workspace.apply(AddSupertype("Department", "Person"), concept=wheel)
        assert workspace.log == []

    def test_concept_admissible_operation_passes(self, workspace):
        wheel = decompose(workspace.reference).by_identifier("ww:Person")
        entry = workspace.apply(
            AddAttribute("Person", scalar("date"), "dob"), concept=wheel
        )
        assert entry.concept_id == "ww:Person"

    def test_apply_kind_checked(self, workspace):
        with pytest.raises(InadmissibleOperationError):
            workspace.apply_kind_checked(
                AddSupertype("Department", "Person"), ConceptKind.WAGON_WHEEL
            )
        workspace.apply_kind_checked(
            AddSupertype("Department", "Person"), ConceptKind.GENERALIZATION
        )
        assert "Person" in workspace.schema.get("Department").supertypes

    def test_feedback_collected(self, workspace):
        entry = workspace.apply(DeleteTypeDefinition("Person"))
        assert any(m.code == "delete-supertype-of" for m in entry.feedback)
        assert any(m.code == "cascaded" for m in entry.feedback)

    def test_mid_plan_failure_rolls_back(self, workspace, monkeypatch):
        """If a later plan step fails, earlier steps are undone."""
        from repro.ops import type_ops

        original_apply = type_ops.DeleteTypeDefinition.apply

        def exploding_apply(self, schema, context=None):
            raise ConstraintViolation("injected failure")

        monkeypatch.setattr(
            type_ops.DeleteTypeDefinition, "apply", exploding_apply
        )
        before = schema_fingerprint(workspace.schema)
        with pytest.raises(ConstraintViolation):
            workspace.apply(DeleteTypeDefinition("Department"))
        monkeypatch.setattr(
            type_ops.DeleteTypeDefinition, "apply", original_apply
        )
        assert schema_fingerprint(workspace.schema) == before


class TestHistory:
    def test_undo_last(self, workspace):
        before = schema_fingerprint(workspace.schema)
        workspace.apply(DeleteTypeDefinition("Department"))
        entry = workspace.undo_last()
        assert entry is not None
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.log == []

    def test_undo_empty(self, workspace):
        assert workspace.undo_last() is None

    def test_redo(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        after = schema_fingerprint(workspace.schema)
        workspace.undo_last()
        workspace.redo()
        assert schema_fingerprint(workspace.schema) == after
        assert len(workspace.log) == 1

    def test_redo_preserves_propagated_flag(self, workspace):
        workspace.apply(
            AddAttribute("Person", scalar("date"), "dob"), propagate=False
        )
        workspace.undo_last()
        entry = workspace.redo()
        assert entry is not None
        assert entry.propagated is False

    def test_failed_redo_rolls_back_and_keeps_redo_stack(self, workspace):
        """A step that fails mid-redo must not leave earlier steps applied."""
        # Deleting Department cascades: plan is [delete relationship ends,
        # delete type].  After the undo, wire in a *new* reference to
        # Department so the final plan step fails validation while the
        # cascade step has already been applied.
        workspace.apply(DeleteTypeDefinition("Department"))
        assert len(workspace.log[-1].plan) > 1
        workspace.undo_last()
        workspace.schema.get("Person").add_attribute(
            Attribute("dept_ref", NamedType("Department"))
        )
        before = schema_fingerprint(workspace.schema)
        with pytest.raises(ConstraintViolation):
            workspace.redo()
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.log == []
        # The entry stays redoable: clear the blocker and redo succeeds.
        workspace.schema.get("Person").remove_attribute("dept_ref")
        entry = workspace.redo()
        assert entry is not None
        assert "Department" not in workspace.schema

    def test_redo_cleared_by_new_apply(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        workspace.undo_last()
        workspace.apply(AddAttribute("Person", scalar("date"), "hired"))
        assert workspace.redo() is None

    def test_reset(self, workspace):
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        workspace.reset()
        assert schemas_equal(workspace.schema, workspace.reference)
        assert workspace.log == []

    def test_script_round_trips_through_language(self, workspace):
        from repro.ops.language import parse_script

        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        workspace.apply(DeleteAttribute("Employee", "salary"))
        script = workspace.script()
        assert parse_script(script) == workspace.applied_operations()

    def test_history_describes_cascades(self, workspace):
        workspace.apply(DeleteTypeDefinition("Department"))
        assert "(+1 cascaded)" in workspace.history()
