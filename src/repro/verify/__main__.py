"""``python -m repro.verify`` -- run the verification campaign."""

from repro.verify.runner import main

raise SystemExit(main())
