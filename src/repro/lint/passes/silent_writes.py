"""Silent-mutation detection: model content changes only via mutators.

The mutation spine is the single source of change truth: caches,
fingerprints, dirty journals, and event-sourced history all subscribe
to it.  A direct write to a model content field from outside the owning
class (``interface.attributes["x"] = ...`` in some helper, or
``schema.interfaces.pop(name)`` in a service) mutates state with no
record on the spine -- every subscriber goes silently stale.  This is
the bug class the spine refactor exists to delete, so the pass bans the
syntax outright across all of ``src/repro/``.

Checked channels (see :func:`repro.lint.callgraph.attribute_writes`):
plain/augmented assignment, subscript store/delete, attribute delete,
and in-place container methods (``.append`` / ``.update`` / ...).

A write is allowed only when it is lexically inside a method of the
class that owns the field -- ``InterfaceDef`` for the six content
fields, ``Schema`` for the ``interfaces`` membership dict -- because
that is where the emit-on-mutate contract is enforced by the spine
pass.  Same-named fields on *other* classes (a plan's ``operations``,
a population's ``attributes``) are exempt when written through ``self``
in a class whose own slots/fields declare the name; anything else needs
a baseline entry with a justification.
"""

from __future__ import annotations

import ast

from repro.lint.callgraph import attribute_writes
from repro.lint.findings import Finding
from repro.lint.loader import Codebase, ModuleInfo
from repro.lint.registry import LintContext, register_pass

#: owning class -> the slotted content fields only its mutators may write
MODEL_OWNERS: dict[str, frozenset[str]] = {
    "InterfaceDef": frozenset(
        {
            "supertypes",
            "extent",
            "keys",
            "attributes",
            "relationships",
            "operations",
        }
    ),
    "Schema": frozenset({"interfaces"}),
}

GUARDED_ATTRS = frozenset().union(*MODEL_OWNERS.values())


def _own_field_names(node: ast.ClassDef) -> set[str]:
    """Field names a class declares as its own state.

    Class-level annotated/plain assignments (dataclass fields, class
    vars) plus ``__slots__`` entries: a class that declares ``operations``
    itself may write ``self.operations`` without touching the model.
    """
    names: set[str] = set()
    for item in node.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            names.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__slots__":
                        if isinstance(item.value, (ast.Tuple, ast.List, ast.Set)):
                            for element in item.value.elts:
                                if isinstance(element, ast.Constant) and isinstance(
                                    element.value, str
                                ):
                                    names.add(element.value)
                    else:
                        names.add(target.id)
    return names


def _functions_with_context(
    info: ModuleInfo,
) -> list[tuple[ast.ClassDef | None, ast.AST]]:
    """Top-level functions and class methods, with their owning class."""
    out: list[tuple[ast.ClassDef | None, ast.AST]] = []
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((None, node))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((node, item))
    return out


def _class_name_of(codebase: Codebase, info: ModuleInfo, name: str) -> str | None:
    """*name* resolved to a class name (local or imported), else ``None``."""
    if name in info.classes:
        return name
    imported = info.imports.get(name)
    if imported is not None and imported[1] is not None:
        source = codebase.module(imported[0])
        if source is not None and imported[1] in source.classes:
            return imported[1]
        # even unparsed external classes are known not to be model owners
        if imported[1][:1].isupper():
            return imported[1]
    return None


def _local_receiver_types(
    codebase: Codebase, info: ModuleInfo, func: ast.AST
) -> dict[str, str]:
    """Variable -> class for ``x = ClassName(...)`` constructor locals.

    Enough typing to tell a fresh ``ErEntity`` (whose ``attributes`` is
    its own field) from an ``InterfaceDef``; anything the inference
    cannot see stays untyped and is judged by the strict rule.
    """
    types: dict[str, str] = {}
    for child in ast.walk(func):
        if (
            isinstance(child, ast.Assign)
            and len(child.targets) == 1
            and isinstance(child.targets[0], ast.Name)
            and isinstance(child.value, ast.Call)
            and isinstance(child.value.func, ast.Name)
        ):
            class_name = _class_name_of(codebase, info, child.value.func.id)
            if class_name is not None:
                types[child.targets[0].id] = class_name
    return types


def silent_write_findings(codebase: Codebase) -> list[Finding]:
    findings: list[Finding] = []
    for module_name in sorted(codebase.modules):
        info = codebase.modules[module_name]
        for class_node, func in _functions_with_context(info):
            class_name = class_node.name if class_node is not None else None
            own_fields = (
                _own_field_names(class_node) if class_node is not None else set()
            )
            receiver_types = _local_receiver_types(codebase, info, func)
            for stmt, receiver, attr, channel in attribute_writes(func):
                if attr not in GUARDED_ATTRS:
                    continue
                # the owning class's own methods are the sanctioned site
                if class_name is not None and attr in MODEL_OWNERS.get(
                    class_name, frozenset()
                ):
                    continue
                # self.<attr> in a class that declares the field itself is
                # that class's own state, not the model's
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "self"
                    and attr in own_fields
                ):
                    continue
                # a receiver constructed from a known non-model class is
                # that class's own state (ErEntity.attributes etc.)
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id in receiver_types
                    and receiver_types[receiver.id] not in MODEL_OWNERS
                ):
                    continue
                owners = sorted(
                    owner for owner, attrs in MODEL_OWNERS.items() if attr in attrs
                )
                holder = (
                    f"{class_name}.{func.name}" if class_name else func.name
                )
                findings.append(
                    Finding(
                        rule="silent-write",
                        path=info.path,
                        line=stmt.lineno,
                        symbol=f"{module_name}:{holder}",
                        message=(
                            f"writes .{attr} via {channel} outside "
                            f"{' / '.join(owners)}; model content must change "
                            "through the owning class's mutators so a "
                            "MutationRecord lands on the spine"
                        ),
                    )
                )
    return findings


@register_pass(
    "silent-writes",
    rules=("silent-write",),
    contract=(
        "no code outside InterfaceDef/Schema writes model content fields "
        "directly (every content change lands a record on the spine)"
    ),
)
def run(context: LintContext) -> list[Finding]:
    return silent_write_findings(context.codebase)
