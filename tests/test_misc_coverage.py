"""Targeted tests for smaller code paths not covered elsewhere."""

import pytest

from repro.concepts.decompose import decompose
from repro.model.errors import SchemaError
from repro.ops.base import OperationContext, SemanticStabilityError


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_api_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_alls_are_accurate(self):
        import importlib

        for module_name in (
            "repro.model", "repro.odl", "repro.concepts", "repro.ops",
            "repro.repository", "repro.knowledge", "repro.designer",
            "repro.catalog", "repro.analysis", "repro.workload",
            "repro.translate",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"


class TestDecompositionAddConcept:
    def test_add_hierarchy_concepts(self, university, house, software):
        from repro.concepts.aggregation import extract_aggregation_hierarchy
        from repro.concepts.generalization import (
            extract_generalization_hierarchy,
        )
        from repro.concepts.instance_of import extract_instance_of_hierarchy

        decomposition = decompose(university)
        before = len(decomposition.all_concepts())
        # A sub-hierarchy rooted below the real root is a new concept.
        decomposition.add_concept(
            extract_generalization_hierarchy(university, "Student")
        )
        assert len(decomposition.all_concepts()) == before + 1
        assert decomposition.by_identifier("gh:Student").root == "Student"

        house_decomposition = decompose(house)
        house_decomposition.add_concept(
            extract_aggregation_hierarchy(house, "Roof")
        )
        assert house_decomposition.by_identifier("ah:Roof")

        software_decomposition = decompose(software)
        software_decomposition.add_concept(
            extract_instance_of_hierarchy(software, "Application_Version")
        )
        assert software_decomposition.by_identifier("ih:Application_Version")

    def test_duplicate_identifier_rejected(self, university):
        from repro.concepts.wagon_wheel import extract_wagon_wheel

        decomposition = decompose(university)
        with pytest.raises(SchemaError):
            decomposition.add_concept(
                extract_wagon_wheel(university, "Course")
            )

    def test_unknown_concept_type_rejected(self, university):
        decomposition = decompose(university)
        with pytest.raises(SchemaError):
            decomposition.add_concept(object())  # type: ignore[arg-type]


class TestStabilityContextFallback:
    def test_new_types_checked_against_workspace(self, small):
        """Types absent from the reference hierarchy fall back to the
        current schema's hierarchy for the stability check."""
        from repro.ops.attribute_ops import AddAttribute, ModifyAttribute
        from repro.ops.type_ops import AddTypeDefinition
        from repro.ops.type_property_ops import AddSupertype
        from repro.model.types import scalar

        context = OperationContext(reference=small.copy())
        AddTypeDefinition("Contractor").apply(small, context)
        AddSupertype("Contractor", "Person").apply(small, context)
        AddAttribute("Contractor", scalar("float"), "day_rate").apply(
            small, context
        )
        ModifyAttribute("Contractor", "day_rate", "Person").apply(
            small, context
        )
        assert "day_rate" in small.get("Person").attributes

    def test_unrelated_new_type_still_rejected(self, small):
        from repro.ops.attribute_ops import ModifyAttribute
        from repro.ops.type_ops import AddTypeDefinition

        context = OperationContext(reference=small.copy())
        AddTypeDefinition("Island").apply(small, context)
        with pytest.raises(SemanticStabilityError):
            ModifyAttribute("Person", "name", "Island").apply(small, context)


class TestWorkspaceComposites:
    def test_composite_through_concept_kind_restriction(self, small):
        from repro.concepts.decompose import decompose as dec
        from repro.ops.composite import SplitBySubtyping
        from repro.repository.workspace import Workspace

        workspace = Workspace(small)
        concept = dec(small).by_identifier("gh:Person")
        entries = workspace.apply_composite(
            SplitBySubtyping("Employee", "Manager", attribute_names=("salary",)),
            concept=concept,
        )
        assert all(entry.concept_id == "gh:Person" for entry in entries)
        assert "salary" in workspace.schema.get("Manager").attributes

    def test_composite_inadmissible_in_wrong_concept(self, small):
        from repro.concepts.decompose import decompose as dec
        from repro.ops.base import InadmissibleOperationError
        from repro.ops.composite import SplitBySubtyping
        from repro.repository.workspace import Workspace

        workspace = Workspace(small)
        wheel = dec(small).by_identifier("ww:Person")
        with pytest.raises(InadmissibleOperationError):
            workspace.apply_composite(
                SplitBySubtyping(
                    "Employee", "Manager", attribute_names=("salary",)
                ),
                concept=wheel,
            )
        # The failed composite left nothing behind.
        assert workspace.log == []
        assert "Manager" not in workspace.schema
