#!/usr/bin/env python
"""Thin shim over the ``spine`` lint pass (see ``repro.lint``).

The spine-emission / CoW-barrier / compiled-plan checks this script
used to implement inline now live in
:mod:`repro.lint.passes.spine`, sharing the framework's AST load and
call-graph resolver with every other contract pass.  The entry point
survives so ``python tools/check_mutators.py`` keeps working; prefer
``python -m repro.lint`` (or ``make lint``), which runs all passes in
one invocation.

The re-exported helpers (``emission_findings``, ``cow_findings``,
``compiled_plan_findings``) operate on a shared
:class:`~repro.lint.loader.Codebase`; ``tests/test_check_mutators.py``
drives them over fixture snippets.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.passes.spine import (  # noqa: E402,F401  -- re-exports
    MUTATOR_PREFIXES,
    compiled_plan_findings,
    cow_findings,
    emission_findings,
)
from repro.lint.shims import run_shim  # noqa: E402


def main() -> int:
    return run_shim("check_mutators")


if __name__ == "__main__":
    raise SystemExit(main())
