"""Operation-signature operations (methods of interface definitions).

Wagon wheels own add/delete and the signature modifications (return
type, argument list, exceptions raised); moving an operation to another
object type (``modify_operation``) is a generalization hierarchy
operation bounded by semantic stability, like attribute moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind
from repro.model.mutation import Aspect
from repro.model.operations import Operation, Parameter
from repro.model.schema import Schema
from repro.model.types import TypeRef, referenced_interfaces
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    OperationContext,
    SchemaOperation,
    Undo,
    render_list,
)
from repro.ops.effects import WILDCARD

_WW = frozenset({ConceptKind.WAGON_WHEEL})
_GH = frozenset({ConceptKind.GENERALIZATION})


def _check_signature_types(
    schema: Schema, return_type: TypeRef, parameters: tuple[Parameter, ...],
    where: str,
) -> None:
    used: set[str] = set(referenced_interfaces(return_type))
    for parameter in parameters:
        used |= referenced_interfaces(parameter.type)
    for name in sorted(used):
        if name not in schema:
            raise ConstraintViolation(
                f"{where}: signature references undefined type {name!r}"
            )


def _render_parameters(parameters: tuple[Parameter, ...]) -> str:
    return f"({', '.join(str(p) for p in parameters)})"


def _signature_names(
    return_type: TypeRef, parameters: tuple[Parameter, ...]
) -> tuple[str, ...]:
    """Interface names a signature references (for effect signatures)."""
    used: set[str] = set(referenced_interfaces(return_type))
    for parameter in parameters:
        used |= referenced_interfaces(parameter.type)
    return tuple(sorted(used))


@dataclass(frozen=True, eq=False)
class AddOperation(SchemaOperation):
    """``add_operation(typename, return_type, name[, (args)][, (raises)])``."""

    op_name = "add_operation"
    touched_aspects = frozenset({Aspect.OPS})
    instance_neutral = True
    candidate = "Operation"
    sub_candidate = "Name"
    action = "add"
    admissible_in = _WW

    typename: str
    return_type: TypeRef
    operation_name: str
    parameters: tuple[Parameter, ...] = field(default_factory=tuple)
    exceptions: tuple[str, ...] = field(default_factory=tuple)

    def _build(self) -> Operation:
        return Operation(
            self.operation_name, self.return_type,
            tuple(self.parameters), tuple(self.exceptions),
        )

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if self.operation_name in interface.operations:
            raise ConstraintViolation(
                f"{self.typename!r} already has operation "
                f"{self.operation_name!r}"
            )
        self._build()  # raises InvalidModelError on malformed signatures
        _check_signature_types(
            schema, self.return_type, tuple(self.parameters),
            f"operation {self.typename}.{self.operation_name}",
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).add_operation(self._build())

        def undo() -> None:
            schema.edit(self.typename).remove_operation(self.operation_name)

        return undo

    def arguments(self) -> tuple[str, ...]:
        args = [self.typename, str(self.return_type), self.operation_name]
        if self.parameters or self.exceptions:
            args.append(_render_parameters(tuple(self.parameters)))
        if self.exceptions:
            args.append(render_list(self.exceptions))
        return tuple(args)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def required_names(self) -> tuple[str, ...]:
        return (self.typename, *_signature_names(
            self.return_type, tuple(self.parameters)
        ))


@dataclass(frozen=True, eq=False)
class DeleteOperation(SchemaOperation):
    """``delete_operation(typename, operation_name)``."""

    op_name = "delete_operation"
    touched_aspects = frozenset({Aspect.OPS})
    instance_neutral = True
    candidate = "Operation"
    sub_candidate = "Name"
    action = "delete"
    admissible_in = _WW

    typename: str
    operation_name: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        schema.get(self.typename).get_operation(self.operation_name)

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        position = list(interface.operations).index(self.operation_name)
        removed = interface.remove_operation(self.operation_name)

        def undo() -> None:
            owner = schema.edit(self.typename)
            owner.add_operation(removed)
            _restore_operation_position(owner, self.operation_name, position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.operation_name)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)


@dataclass(frozen=True, eq=False)
class ModifyOperation(SchemaOperation):
    """``modify_operation(typename, operation_name, new_typename)``.

    Moves the operation up or down the generalization hierarchy (the
    grammar's comment: "move operation up/down gen hier.").  The target
    may already define a same-named operation only when that is an
    override being collapsed -- we treat that as a conflict and reject,
    matching the paper's uniqueness assumption ("operation names are
    unique as well, except in the case where an operation is
    overridden").
    """

    op_name = "modify_operation"
    touched_aspects = frozenset({Aspect.OPS})
    instance_neutral = True
    candidate = "Operation"
    sub_candidate = "Name"
    action = "modify"
    admissible_in = _GH

    typename: str
    operation_name: str
    new_typename: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        schema.get(self.typename).get_operation(self.operation_name)
        target = schema.get(self.new_typename)
        if self.new_typename == self.typename:
            raise ConstraintViolation(
                f"operation {self.operation_name!r} already resides in "
                f"{self.typename!r}"
            )
        context.check_isa_related(
            schema, self.typename, self.new_typename,
            f"move of operation {self.operation_name!r}",
        )
        if self.operation_name in target.operations:
            raise ConstraintViolation(
                f"{self.new_typename!r} already has operation "
                f"{self.operation_name!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        source = schema.edit(self.typename)
        position = list(source.operations).index(self.operation_name)
        moved = source.remove_operation(self.operation_name)
        schema.edit(self.new_typename).add_operation(moved)

        def undo() -> None:
            schema.edit(self.new_typename).remove_operation(self.operation_name)
            owner = schema.edit(self.typename)
            owner.add_operation(moved)
            _restore_operation_position(owner, self.operation_name, position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.operation_name, self.new_typename)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename, self.new_typename)

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # Semantic stability reads the generalization hierarchy.
        return self.written_footprint() | frozenset({
            (WILDCARD, Aspect.ISA),
        })


@dataclass(frozen=True, eq=False)
class ModifyOperationReturnType(SchemaOperation):
    """``modify_operation_return_type(typename, name, old, new)``."""

    op_name = "modify_operation_return_type"
    touched_aspects = frozenset({Aspect.OPS})
    instance_neutral = True
    candidate = "Operation"
    sub_candidate = "Return type"
    action = "modify"
    admissible_in = _WW

    typename: str
    operation_name: str
    old_return_type: TypeRef
    new_return_type: TypeRef

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        operation = schema.get(self.typename).get_operation(self.operation_name)
        if operation.return_type != self.old_return_type:
            raise ConstraintViolation(
                f"operation {self.typename}.{self.operation_name} returns "
                f"{operation.return_type}, not {self.old_return_type}"
            )
        _check_signature_types(
            schema, self.new_return_type, (),
            f"operation {self.typename}.{self.operation_name}",
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        old = interface.get_operation(self.operation_name)
        interface.replace_operation(old.with_return_type(self.new_return_type))

        def undo() -> None:
            schema.edit(self.typename).replace_operation(old)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.operation_name,
            str(self.old_return_type), str(self.new_return_type),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def required_names(self) -> tuple[str, ...]:
        return (self.typename, *_signature_names(self.new_return_type, ()))


@dataclass(frozen=True, eq=False)
class ModifyOperationArgList(SchemaOperation):
    """``modify_operation_arg_list(typename, name, (old...), (new...))``."""

    op_name = "modify_operation_arg_list"
    touched_aspects = frozenset({Aspect.OPS})
    instance_neutral = True
    candidate = "Operation"
    sub_candidate = "Argument list"
    action = "modify"
    admissible_in = _WW

    typename: str
    operation_name: str
    old_parameters: tuple[Parameter, ...]
    new_parameters: tuple[Parameter, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        operation = schema.get(self.typename).get_operation(self.operation_name)
        if operation.parameters != tuple(self.old_parameters):
            raise ConstraintViolation(
                f"operation {self.typename}.{self.operation_name} has "
                f"arguments {_render_parameters(operation.parameters)}, not "
                f"{_render_parameters(tuple(self.old_parameters))}"
            )
        operation.with_parameters(tuple(self.new_parameters))  # shape check
        _check_signature_types(
            schema, operation.return_type, tuple(self.new_parameters),
            f"operation {self.typename}.{self.operation_name}",
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        old = interface.get_operation(self.operation_name)
        interface.replace_operation(old.with_parameters(tuple(self.new_parameters)))

        def undo() -> None:
            schema.edit(self.typename).replace_operation(old)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.operation_name,
            _render_parameters(tuple(self.old_parameters)),
            _render_parameters(tuple(self.new_parameters)),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def required_names(self) -> tuple[str, ...]:
        names: set[str] = set()
        for parameter in self.new_parameters:
            names |= referenced_interfaces(parameter.type)
        return (self.typename, *sorted(names))


@dataclass(frozen=True, eq=False)
class ModifyOperationExceptionsRaised(SchemaOperation):
    """``modify_operation_exceptions_raised(typename, name, (old), (new))``."""

    op_name = "modify_operation_exceptions_raised"
    touched_aspects = frozenset({Aspect.OPS})
    instance_neutral = True
    candidate = "Operation"
    sub_candidate = "Exceptions Raised"
    action = "modify"
    admissible_in = _WW

    typename: str
    operation_name: str
    old_exceptions: tuple[str, ...]
    new_exceptions: tuple[str, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        operation = schema.get(self.typename).get_operation(self.operation_name)
        if operation.exceptions != tuple(self.old_exceptions):
            raise ConstraintViolation(
                f"operation {self.typename}.{self.operation_name} raises "
                f"{operation.exceptions!r}, not {tuple(self.old_exceptions)!r}"
            )
        operation.with_exceptions(tuple(self.new_exceptions))  # shape check

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        old = interface.get_operation(self.operation_name)
        interface.replace_operation(old.with_exceptions(tuple(self.new_exceptions)))

        def undo() -> None:
            schema.edit(self.typename).replace_operation(old)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.operation_name,
            render_list(self.old_exceptions), render_list(self.new_exceptions),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)


def _restore_operation_position(interface, name: str, position: int) -> None:
    """Re-order an interface's operation dict after an undo insertion."""
    names = list(interface.operations)
    names.remove(name)
    names.insert(position, name)
    interface.reorder_operations(names)
