"""Propagation rules: the changes that follow from a given change.

Section 5, activity 9: "Definition of a set of rules to show the
designer the impact of the proposed modification operation (i.e., all of
the changes that follow from a given change)."

Destructive operations often leave the schema structurally invalid when
taken alone -- deleting an object type strands the relationships that
target it, deleting an attribute strands the keys and order-by lists that
name it, and removing an ISA link strands keys on formerly-inherited
attributes.  :func:`expand` turns one requested operation into the full
ordered plan: every cascaded operation first (depth-first, so cascades of
cascades come earlier still), the requested operation last.  Each plan
step is itself an operation of the Appendix A language, so the workspace
log and the impact report show exactly what happened, and undo reverses
the entire plan.
"""

from __future__ import annotations

from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import referenced_interfaces
from repro.ops.base import OperationContext, SchemaOperation
from repro.ops.attribute_ops import DeleteAttribute, ModifyAttribute
from repro.ops.instance_of_ops import (
    DeleteInstanceOfRelationship,
    ModifyInstanceOfOrderBy,
)
from repro.ops.operation_ops import DeleteOperation
from repro.ops.part_of_ops import DeletePartOfRelationship, ModifyPartOfOrderBy
from repro.ops.relationship_ops import (
    DeleteRelationship,
    ModifyRelationshipOrderBy,
)
from repro.ops.type_ops import DeleteTypeDefinition
from repro.ops.type_property_ops import (
    DeleteKeyList,
    DeleteSupertype,
    ModifySupertype,
    attributes_visible_with_supertypes,
)

_DELETE_END_OPS = {
    RelationshipKind.ASSOCIATION: DeleteRelationship,
    RelationshipKind.PART_OF: DeletePartOfRelationship,
    RelationshipKind.INSTANCE_OF: DeleteInstanceOfRelationship,
}

_ORDER_BY_OPS = {
    RelationshipKind.ASSOCIATION: ModifyRelationshipOrderBy,
    RelationshipKind.PART_OF: ModifyPartOfOrderBy,
    RelationshipKind.INSTANCE_OF: ModifyInstanceOfOrderBy,
}

#: The only operation classes :func:`direct_cascades` ever cascades for.
#: Every other class expands to itself alone, which lets :func:`expand`
#: skip the scratch copy entirely -- the dominant cost of applying a
#: long plan of non-destructive operations on a large schema.
_CASCADING_OPS = (
    DeleteTypeDefinition,
    DeleteAttribute,
    ModifyAttribute,
    DeleteSupertype,
    ModifySupertype,
)


def expand(
    schema: Schema,
    operation: SchemaOperation,
    context: OperationContext,
) -> list[SchemaOperation]:
    """Return the full plan for *operation*: cascades first, then it.

    The plan is computed against a scratch copy of *schema*; nothing is
    mutated.  Applying the plan in order on the real schema succeeds
    whenever each step's own constraints hold.

    Operations that can never cascade skip the scratch copy and return
    ``[operation]`` directly; an invalid such operation then rejects
    when the plan is applied (same exception, same rollback) rather
    than during expansion.
    """
    if not isinstance(operation, _CASCADING_OPS):
        return [operation]
    # A CoW fork instead of an eager copy: the scratch starts out
    # sharing every interface with *schema*, and only the types the
    # cascading plan actually touches materialise (via ``Schema.edit``
    # in the op bodies) -- O(changed) instead of O(types) per expansion.
    scratch = schema.fork()
    try:
        plan: list[SchemaOperation] = []
        _expand_into(scratch, operation, context, plan, depth=0)
        return plan
    finally:
        # The scratch dies here; eagerly unregister its CoW borrow so
        # later mutations of *schema* stop paying the settle walk.
        scratch.release_cow()


def expand_applying(
    schema: Schema,
    operation: SchemaOperation,
    context: OperationContext,
    before_step=None,
) -> tuple[list[SchemaOperation], list]:
    """Single-pass :func:`expand`: compute the plan while applying it.

    Cascades are computed against the *live* schema -- each one is
    applied as soon as it is known, so the next ``direct_cascades`` call
    sees exactly the state the scratch copy would have reached -- which
    skips the scratch copy entirely, the dominant cost of expanding
    destructive ops on a large schema.  On any failure every applied
    step is undone and the error re-raised; *schema* is then untouched.

    ``before_step(step)``, when given, runs just before each step
    applies (the workspace collects cautions there).  Returns the
    ``(plan, undos)`` pair the workspace logs.
    """
    plan: list[SchemaOperation] = []
    undos: list = []
    try:
        _expand_applying_into(
            schema, operation, context, plan, undos, before_step, depth=0
        )
    except BaseException:
        for undo in reversed(undos):
            undo()
        raise
    return plan, undos


def _expand_applying_into(
    schema: Schema,
    operation: SchemaOperation,
    context: OperationContext,
    plan: list[SchemaOperation],
    undos: list,
    before_step,
    depth: int,
) -> None:
    if depth > 100:
        raise RuntimeError(
            f"propagation for {operation.to_text()} did not converge"
        )
    if isinstance(operation, _CASCADING_OPS):
        for cascade in direct_cascades(schema, operation):
            _expand_applying_into(
                schema, cascade, context, plan, undos, before_step,
                depth + 1,
            )
    if before_step is not None:
        before_step(operation)
    undos.append(operation.apply(schema, context))
    plan.append(operation)


def direct_cascades(
    schema: Schema, operation: SchemaOperation
) -> list[SchemaOperation]:
    """The immediate follow-up operations *operation* requires.

    These are computed from the current schema state; cascades may
    themselves require further cascades (handled by :func:`expand`).
    """
    if isinstance(operation, DeleteTypeDefinition):
        return _cascades_for_delete_type(schema, operation.typename)
    if isinstance(operation, DeleteAttribute):
        return _cascades_for_lost_attribute(
            schema, operation.typename, operation.attribute_name
        )
    if isinstance(operation, ModifyAttribute):
        # Moving an attribute *down* the hierarchy makes it unavailable
        # to the old owner's other subtrees; dependent keys and order-by
        # lists that lose sight of it must be dropped first.
        return _cascades_for_attribute_move(
            schema, operation.typename, operation.attribute_name,
            operation.new_typename,
        )
    if isinstance(operation, DeleteSupertype):
        return _cascades_for_lost_supertype(
            schema, operation.typename, operation.supertype
        )
    if isinstance(operation, ModifySupertype):
        cascades: list[SchemaOperation] = []
        for supertype in operation.old_supertypes:
            if supertype not in operation.new_supertypes:
                cascades.extend(
                    _cascades_for_lost_supertype(
                        schema, operation.typename, supertype
                    )
                )
        return cascades
    return []


def _expand_into(
    scratch: Schema,
    operation: SchemaOperation,
    context: OperationContext,
    plan: list[SchemaOperation],
    depth: int,
) -> None:
    if depth > 100:  # cycles are impossible for shrinking cascades; guard anyway
        raise RuntimeError(
            f"propagation for {operation.to_text()} did not converge"
        )
    for cascade in direct_cascades(scratch, operation):
        _expand_into(scratch, cascade, context, plan, depth + 1)
    operation.apply(scratch, context)
    plan.append(operation)


def _cascades_for_delete_type(
    schema: Schema, typename: str
) -> list[SchemaOperation]:
    """Everything referencing *typename* must go (or be re-wired) first.

    An end, attribute, operation or supertype entry involving *typename*
    implies its owner references *typename*, so both walks restrict to
    the index's incremental reverse-reference set (plus *typename*
    itself for its own ends) instead of scanning every property of
    every interface; the emitted cascade order is unchanged.
    """
    cascades: list[SchemaOperation] = []
    referencers = schema.index.referencers_of(typename)
    involved = referencers | {typename}
    handled_pairs: set[frozenset[tuple[str, str]]] = set()
    for interface in schema:
        owner = interface.name
        if owner not in involved:
            continue
        for end in interface.relationships.values():
            involves = (
                owner == typename
                or end.target_type == typename
                or end.inverse_type == typename
            )
            if not involves:
                continue
            pair = frozenset(
                {(owner, end.name), (end.inverse_type, end.inverse_name)}
            )
            if pair in handled_pairs:
                continue
            handled_pairs.add(pair)
            cascades.append(_DELETE_END_OPS[end.kind](owner, end.name))
    for interface in schema:
        if interface.name == typename or interface.name not in referencers:
            continue
        for attribute in list(interface.attributes.values()):
            if typename in referenced_interfaces(attribute.type):
                cascades.append(
                    DeleteAttribute(interface.name, attribute.name)
                )
        for op_def in list(interface.operations.values()):
            used = set(referenced_interfaces(op_def.return_type))
            for parameter in op_def.parameters:
                used |= referenced_interfaces(parameter.type)
            if typename in used:
                cascades.append(DeleteOperation(interface.name, op_def.name))
        if typename in interface.supertypes:
            cascades.append(DeleteSupertype(interface.name, typename))
    return cascades


def _cascades_for_lost_attribute(
    schema: Schema, typename: str, attribute_name: str
) -> list[SchemaOperation]:
    """Keys and order-by lists that name a disappearing attribute."""
    from repro.ops.attribute_ops import attribute_losers

    cascades: list[SchemaOperation] = []
    losers = attribute_losers(schema, typename, attribute_name)
    for name in sorted(losers):
        interface = schema.get(name)
        for key in list(interface.keys):
            if attribute_name in key:
                cascades.append(DeleteKeyList(name, key))
    for owner, end in schema.index.ends_targeting(losers):
        if attribute_name in end.order_by:
            new_order = tuple(a for a in end.order_by if a != attribute_name)
            cascades.append(
                _ORDER_BY_OPS[end.kind](owner, end.name, end.order_by, new_order)
            )
    return cascades


def _cascades_for_attribute_move(
    schema: Schema, typename: str, attribute_name: str, new_typename: str
) -> list[SchemaOperation]:
    """A downward move hides the attribute from types outside the subtree."""
    from repro.ops.attribute_ops import attribute_losers

    if new_typename in schema.ancestors(typename):
        return []  # an upward move widens visibility; nothing can dangle
    keeps = {new_typename} | schema.descendants(new_typename)
    cascades: list[SchemaOperation] = []
    losers = attribute_losers(schema, typename, attribute_name) - keeps
    for name in sorted(losers):
        interface = schema.get(name)
        for key in list(interface.keys):
            if attribute_name in key:
                cascades.append(DeleteKeyList(name, key))
    for owner, end in schema.index.ends_targeting(losers):
        if attribute_name in end.order_by:
            new_order = tuple(a for a in end.order_by if a != attribute_name)
            cascades.append(
                _ORDER_BY_OPS[end.kind](owner, end.name, end.order_by, new_order)
            )
    return cascades


def _cascades_for_lost_supertype(
    schema: Schema, typename: str, supertype: str
) -> list[SchemaOperation]:
    """Dropping an ISA link strands keys/orderings on inherited attributes."""
    if supertype not in schema or typename not in schema:
        return []
    # Attributes the subtree would still see through other paths survive:
    # compare visibility with and without the dropped link, as a plain
    # ancestry walk (no scratch copy of the schema).
    current = tuple(schema.get(typename).supertypes)
    remaining = tuple(s for s in current if s != supertype)
    cascades: list[SchemaOperation] = []
    affected = {typename} | schema.descendants(typename)
    ends_by_target: dict[str, list] | None = None
    for name in sorted(affected):
        interface = schema.get(name)
        before = attributes_visible_with_supertypes(
            schema, name, typename, current
        )
        after = attributes_visible_with_supertypes(
            schema, name, typename, remaining
        )
        lost = before - after
        if not lost:
            continue
        for key in list(interface.keys):
            if set(key) & lost:
                cascades.append(DeleteKeyList(name, key))
        if ends_by_target is None:
            ends_by_target = {}
            for owner, end in schema.index.ends_targeting(affected):
                ends_by_target.setdefault(end.target_type, []).append(
                    (owner, end)
                )
        for owner, end in ends_by_target.get(name, ()):
            dangling = [a for a in end.order_by if a in lost]
            if dangling:
                new_order = tuple(a for a in end.order_by if a not in lost)
                cascades.append(
                    _ORDER_BY_OPS[end.kind](
                        owner, end.name, end.order_by, new_order
                    )
                )
    return cascades
