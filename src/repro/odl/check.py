"""Standalone extended-ODL checker: parse, validate, report, suggest.

Usage::

    python -m repro.odl.check schema.odl [more.odl ...]

Exit status: 0 when every file parses and has no error-severity issues,
1 otherwise.  For each finding, the matching repair suggestions of the
knowledge component are listed.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.knowledge.suggestions import suggest_repairs
from repro.model.errors import SchemaError
from repro.model.validation import SEVERITY_ERROR
from repro.odl.lexer import OdlSyntaxError
from repro.odl.parser import parse_schema


def check_text(text: str, name: str) -> tuple[bool, list[str]]:
    """Check one ODL document; returns (ok, report lines)."""
    lines: list[str] = []
    try:
        schema = parse_schema(text, name=name)
    except (OdlSyntaxError, SchemaError) as exc:
        return False, [f"{name}: parse error: {exc}"]
    issues = schema.validation.validate()
    errors = [issue for issue in issues if issue.severity == SEVERITY_ERROR]
    warnings = [issue for issue in issues if issue.severity != SEVERITY_ERROR]
    stats = schema.stats()
    lines.append(
        f"{name}: {stats['interfaces']} interfaces, "
        f"{stats['attributes']} attributes, "
        f"{stats['relationship_ends']} relationship ends"
    )
    for issue in errors + warnings:
        lines.append(f"  {issue}")
    if errors:
        suggestions = suggest_repairs(schema)
        if suggestions:
            lines.append("  suggested repairs:")
            lines.extend(f"    {suggestion}" for suggestion in suggestions)
    if not errors and not warnings:
        lines.append("  ok")
    return not errors, lines


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.odl.check <schema.odl> [...]")
        return 2
    all_ok = True
    for path_text in args:
        path = Path(path_text)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            print(f"{path}: cannot read: {exc}")
            all_ok = False
            continue
        ok, lines = check_text(text, name=path.stem)
        all_ok &= ok
        print("\n".join(lines))
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
