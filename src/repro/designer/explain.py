"""The explanation facility for concept schemas.

One of the paper's proposed extensions (Section 5): "An explanation
facility for the existing concept schemas can be created to explain the
information represented in the concept schema to the designer."  The
functions here verbalise each concept schema kind -- and individual
modification operations -- in plain prose, so a designer reading an
unfamiliar shrink wrap schema gets the modelling told back in sentences
rather than notation.
"""

from __future__ import annotations

from repro.concepts.aggregation import AggregationHierarchy
from repro.concepts.base import ConceptSchema
from repro.concepts.generalization import GeneralizationHierarchy
from repro.concepts.instance_of import InstanceOfHierarchy
from repro.concepts.wagon_wheel import WagonWheel
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema


def _list_phrase(items: list[str]) -> str:
    """Join names into an English list: 'a', 'a and b', 'a, b, and c'."""
    if not items:
        return ""
    if len(items) == 1:
        return items[0]
    if len(items) == 2:
        return f"{items[0]} and {items[1]}"
    return ", ".join(items[:-1]) + f", and {items[-1]}"


def explain_wagon_wheel(wheel: WagonWheel) -> str:
    """Verbalise one wagon wheel: the focal type and its spokes."""
    interface = wheel.focal_interface
    sentences: list[str] = []
    opening = f"{wheel.focal} is an object type"
    if wheel.supertype_rim:
        opening += f"; it is a kind of {_list_phrase(list(wheel.supertype_rim))}"
    sentences.append(opening + ".")
    if interface is not None:
        if interface.attributes:
            described = [
                f"{attribute.name} ({attribute.type})"
                for attribute in interface.attributes.values()
            ]
            sentences.append(
                f"It records {_list_phrase(described)}."
            )
        if interface.extent:
            key_phrase = ""
            if interface.keys:
                keys = _list_phrase(
                    ["(" + ", ".join(key) + ")" for key in interface.keys]
                )
                key_phrase = f", identified by key {keys}"
            sentences.append(
                f"All instances are collected in the extent "
                f"{interface.extent!r}{key_phrase}."
            )
        for operation in interface.operations.values():
            sentences.append(
                f"It offers the operation {operation.signature()}."
            )
    for spoke in wheel.spokes:
        many = "many" if spoke.to_many else "exactly one"
        if spoke.kind is RelationshipKind.PART_OF:
            if spoke.to_many:
                sentences.append(
                    f"It is a whole consisting of {spoke.target_type} parts "
                    f"(via {spoke.path_name})."
                )
            else:
                sentences.append(
                    f"It is a component part of {spoke.target_type} "
                    f"(via {spoke.path_name})."
                )
        elif spoke.kind is RelationshipKind.INSTANCE_OF:
            if spoke.to_many:
                sentences.append(
                    f"It is a generic specification with many "
                    f"{spoke.target_type} instances (via {spoke.path_name})."
                )
            else:
                sentences.append(
                    f"Each one is an instance of {spoke.target_type} "
                    f"(via {spoke.path_name})."
                )
        else:
            sentences.append(
                f"It is related to {many} {spoke.target_type} through "
                f"{spoke.path_name}."
            )
    if wheel.subtype_rim:
        sentences.append(
            f"Its specialisations are {_list_phrase(list(wheel.subtype_rim))}."
        )
    return " ".join(sentences)


def explain_generalization(
    hierarchy: GeneralizationHierarchy, schema: Schema | None = None
) -> str:
    """Verbalise one generalization hierarchy and its inheritance."""
    sentences = [
        f"{hierarchy.root} is the root of a generalization hierarchy of "
        f"{len(hierarchy.members)} object types."
    ]
    for member in sorted(hierarchy.members):
        children = hierarchy.children(member)
        if children:
            sentences.append(
                f"{member} is specialised into {_list_phrase(sorted(children))}."
            )
    if schema is not None:
        leaves = sorted(
            member
            for member in hierarchy.members
            if not hierarchy.children(member)
        )
        for leaf in leaves[:3]:  # a few concrete inheritance examples
            inherited = schema.inherited_attributes(leaf)
            foreign = sorted(
                f"{attr} (from {owner})"
                for attr, owner in inherited.items()
                if owner != leaf
            )
            if foreign:
                sentences.append(
                    f"A {leaf} inherits {_list_phrase(foreign)}."
                )
    return " ".join(sentences)


def explain_aggregation(hierarchy: AggregationHierarchy) -> str:
    """Verbalise one parts explosion."""
    sentences = [
        f"{hierarchy.root} is the root of an aggregation (part-of) "
        f"hierarchy of {len(hierarchy.members)} object types."
    ]
    for member in sorted(hierarchy.members):
        parts = hierarchy.parts_of(member)
        if parts:
            sentences.append(
                f"A {member} consists of {_list_phrase(sorted(parts))}."
            )
    return " ".join(sentences)


def explain_instance_of(hierarchy: InstanceOfHierarchy) -> str:
    """Verbalise one instance-of chain."""
    sentences = [
        f"{hierarchy.root} heads an instance-of hierarchy of "
        f"{len(hierarchy.members)} object types."
    ]
    if hierarchy.is_linear():
        chain = hierarchy.chain()
        for generic, instance in zip(chain, chain[1:]):
            sentences.append(
                f"Each {generic} is a generic specification with many "
                f"{instance} instances."
            )
    else:
        for edge in hierarchy.edges:
            sentences.append(
                f"Each {edge.generic} has many {edge.instance} instances."
            )
    return " ".join(sentences)


def explain_concept(
    concept: ConceptSchema, schema: Schema | None = None
) -> str:
    """Dispatch to the kind-specific explainer."""
    if isinstance(concept, WagonWheel):
        return explain_wagon_wheel(concept)
    if isinstance(concept, GeneralizationHierarchy):
        return explain_generalization(concept, schema)
    if isinstance(concept, AggregationHierarchy):
        return explain_aggregation(concept)
    if isinstance(concept, InstanceOfHierarchy):
        return explain_instance_of(concept)
    raise TypeError(f"unknown concept schema type: {type(concept).__name__}")
