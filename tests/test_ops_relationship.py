"""Unit tests for association relationship operations."""

import pytest

from repro.model.fingerprint import schema_fingerprint
from repro.model.types import named, set_of
from repro.odl.printer import print_schema
from repro.ops.base import (
    ConstraintViolation,
    OperationContext,
    SemanticStabilityError,
)
from repro.ops.relationship_ops import (
    AddRelationship,
    DeleteRelationship,
    ModifyRelationshipCardinality,
    ModifyRelationshipOrderBy,
    ModifyRelationshipTargetType,
)


class TestAddRelationship:
    def test_auto_creates_inverse(self, small):
        AddRelationship(
            "Person", named("Department"), "home_dept", "Department", "residents"
        ).apply(small)
        inverse = small.get("Department").get_relationship("residents")
        assert inverse.target_type == "Person"
        assert not inverse.is_to_many  # default inverse is to-one
        small.validate()

    def test_pairs_with_predeclared_inverse(self, small):
        AddRelationship(
            "Person", named("Department"), "home_dept", "Department", "residents"
        ).apply(small)
        # Adding the second direction explicitly must be idempotent-safe:
        # the end already exists, so a fresh add of the same path fails.
        with pytest.raises(ConstraintViolation):
            AddRelationship(
                "Department", set_of("Person"), "residents", "Person",
                "home_dept",
            ).apply(small)

    def test_inverse_must_live_in_target(self, small):
        with pytest.raises(ConstraintViolation) as info:
            AddRelationship(
                "Person", named("Department"), "home_dept", "Person", "x"
            ).apply(small)
        assert "target type" in str(info.value)

    def test_path_name_collision_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddRelationship(
                "Person", named("Department"), "name", "Department", "x"
            ).apply(small)

    def test_inverse_name_collision_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddRelationship(
                "Person", named("Department"), "home_dept", "Department", "code"
            ).apply(small)

    def test_order_by_validated_against_target(self, small):
        with pytest.raises(ConstraintViolation):
            AddRelationship(
                "Department", set_of("Person"), "residents", "Person",
                "home_dept", ("ghost",),
            ).apply(small)

    def test_order_by_accepted(self, small):
        AddRelationship(
            "Department", set_of("Person"), "residents", "Person",
            "home_dept", ("name",),
        ).apply(small)
        end = small.get("Department").get_relationship("residents")
        assert end.order_by == ("name",)

    def test_undo_removes_both_ends(self, small):
        before = schema_fingerprint(small)
        undo = AddRelationship(
            "Person", named("Department"), "home_dept", "Department", "residents"
        ).apply(small)
        undo()
        assert schema_fingerprint(small) == before


class TestDeleteRelationship:
    def test_deletes_pair(self, small):
        DeleteRelationship("Employee", "works_in").apply(small)
        assert "works_in" not in small.get("Employee").relationships
        assert "staff" not in small.get("Department").relationships
        small.validate()

    def test_delete_from_either_end(self, small):
        DeleteRelationship("Department", "staff").apply(small)
        assert "works_in" not in small.get("Employee").relationships

    def test_unknown_path_rejected(self, small):
        from repro.model.errors import UnknownPropertyError

        with pytest.raises(UnknownPropertyError):
            DeleteRelationship("Employee", "ghost").apply(small)

    def test_kind_checked(self, house):
        with pytest.raises(ConstraintViolation):
            DeleteRelationship("House", "structure").apply(house)

    def test_undo_restores_pair(self, small):
        before = schema_fingerprint(small)
        undo = DeleteRelationship("Employee", "works_in").apply(small)
        undo()
        assert schema_fingerprint(small) == before


class TestModifyTargetType:
    def test_figure8_grammar_form(self, company):
        """The Appendix A four-argument form re-targets Department::has."""
        context = OperationContext(reference=company.copy())
        ModifyRelationshipTargetType(
            "Department", "has", "Person", old_target_type="Employee"
        ).apply(company, context)
        end = company.get("Department").get_relationship("has")
        assert str(end.target) == "set<Person>"
        assert end.inverse_type == "Person"
        assert "works_in_a" in company.get("Person").relationships
        assert "works_in_a" not in company.get("Employee").relationships
        company.validate()

    def test_figure8_prose_form(self, company):
        """Section 3.4's three-argument call produces the same result."""
        context = OperationContext(reference=company.copy())
        ModifyRelationshipTargetType("Employee", "works_in_a", "Person").apply(
            company, context
        )
        rendered = print_schema(company)
        assert "relationship set<Person> has inverse Person::works_in_a" in rendered
        assert (
            "relationship Department works_in_a inverse Department::has"
            in print_schema(company)
        )

    def test_prose_and_grammar_forms_agree(self, company):
        grammar_side = company.copy()
        prose_side = company.copy()
        reference = company.copy()
        ModifyRelationshipTargetType(
            "Department", "has", "Person", old_target_type="Employee"
        ).apply(grammar_side, OperationContext(reference=reference))
        ModifyRelationshipTargetType("Employee", "works_in_a", "Person").apply(
            prose_side, OperationContext(reference=reference)
        )
        assert schema_fingerprint(grammar_side) == schema_fingerprint(prose_side)

    def test_retarget_down_the_hierarchy(self, company):
        # First widen to Person, then narrow back down to Student.
        context = OperationContext(reference=company.copy())
        ModifyRelationshipTargetType(
            "Department", "has", "Person", old_target_type="Employee"
        ).apply(company, context)
        ModifyRelationshipTargetType(
            "Department", "has", "Student", old_target_type="Person"
        ).apply(company, context)
        assert (
            company.get("Department").get_relationship("has").target_type
            == "Student"
        )
        company.validate()

    def test_unrelated_target_rejected(self, company):
        context = OperationContext(reference=company.copy())
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipTargetType(
                "Employee", "works_in_a", "Department"
            ).apply(company, context)

    def test_wrong_old_target_rejected(self, company):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipTargetType(
                "Department", "has", "Person", old_target_type="Student"
            ).apply(company)

    def test_sibling_move_violates_stability(self, company):
        """Employee and Student are siblings, not on one ISA path."""
        context = OperationContext(reference=company.copy())
        with pytest.raises(SemanticStabilityError):
            ModifyRelationshipTargetType(
                "Department", "has", "Student", old_target_type="Employee"
            ).apply(company, context)

    def test_occupied_inverse_name_rejected(self, company):
        from repro.model.attributes import Attribute
        from repro.model.types import scalar

        company.get("Person").add_attribute(
            Attribute("works_in_a", scalar("long"))
        )
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipTargetType(
                "Department", "has", "Person", old_target_type="Employee"
            ).apply(company)

    def test_undo(self, company):
        before = schema_fingerprint(company)
        undo = ModifyRelationshipTargetType(
            "Employee", "works_in_a", "Person"
        ).apply(company)
        undo()
        assert schema_fingerprint(company) == before

    def test_text_forms(self):
        three = ModifyRelationshipTargetType("E", "w", "P")
        four = ModifyRelationshipTargetType("D", "has", "P", old_target_type="E")
        assert three.to_text() == "modify_relationship_target_type(E, w, P)"
        assert four.to_text() == "modify_relationship_target_type(D, has, E, P)"


class TestModifyCardinality:
    def test_many_to_one(self, small):
        # Drop the ordering first; a to-one end cannot be ordered.
        ModifyRelationshipOrderBy("Department", "staff", ("name",), ()).apply(
            small
        )
        ModifyRelationshipCardinality(
            "Department", "staff", set_of("Employee"), named("Employee")
        ).apply(small)
        assert not small.get("Department").get_relationship("staff").is_to_many

    def test_one_to_many(self, small):
        ModifyRelationshipCardinality(
            "Employee", "works_in", named("Department"), set_of("Department")
        ).apply(small)
        assert small.get("Employee").get_relationship("works_in").is_to_many

    def test_collection_kind_change(self, small):
        from repro.model.types import list_of

        ModifyRelationshipCardinality(
            "Department", "staff", set_of("Employee"), list_of("Employee")
        ).apply(small)
        assert (
            small.get("Department").get_relationship("staff").collection_kind
            == "list"
        )

    def test_retarget_through_cardinality_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipCardinality(
                "Department", "staff", set_of("Employee"), set_of("Person")
            ).apply(small)

    def test_wrong_old_target_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipCardinality(
                "Department", "staff", named("Employee"), set_of("Employee")
            ).apply(small)

    def test_ordered_end_cannot_become_to_one(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipCardinality(
                "Department", "staff", set_of("Employee"), named("Employee")
            ).apply(small)


class TestModifyOrderBy:
    def test_replace(self, small):
        ModifyRelationshipOrderBy(
            "Department", "staff", ("name",), ("name", "id")
        ).apply(small)
        end = small.get("Department").get_relationship("staff")
        assert end.order_by == ("name", "id")

    def test_old_list_checked(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipOrderBy(
                "Department", "staff", (), ("name",)
            ).apply(small)

    def test_unknown_attribute_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipOrderBy(
                "Department", "staff", ("name",), ("ghost",)
            ).apply(small)

    def test_to_one_end_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            ModifyRelationshipOrderBy(
                "Employee", "works_in", (), ("code",)
            ).apply(small)

    def test_undo(self, small):
        before = schema_fingerprint(small)
        undo = ModifyRelationshipOrderBy(
            "Department", "staff", ("name",), ()
        ).apply(small)
        undo()
        assert schema_fingerprint(small) == before
