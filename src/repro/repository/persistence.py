"""JSON persistence for schema repositories.

The paper's prototype stored the repository in ObjectStore; we
substitute a plain-file serialisation (see DESIGN.md).  The format is
deliberately replay-based: the shrink wrap schema is stored as extended
ODL and the customization as the operation-language script, so a loaded
repository reconstructs its workspace by re-applying the script -- the
same artifacts a designer reads are the persistence format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.model.errors import SchemaError
from repro.odl.printer import print_schema
from repro.ops.language import parse_operation
from repro.repository.repository import SchemaRepository

#: Bumped on incompatible format changes.
FORMAT_VERSION = 1


def repository_to_dict(repository: SchemaRepository) -> dict:
    """Serialise a repository to a JSON-ready dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "shrink_wrap_name": repository.shrink_wrap.name,
        "shrink_wrap_odl": print_schema(repository.shrink_wrap),
        "custom_name": repository.workspace.schema.name,
        "operations": [
            {
                "text": entry.requested.to_text(),
                "concept_id": entry.concept_id,
                "propagated": entry.propagated,
            }
            for entry in repository.workspace.log
        ],
        "local_names": dict(repository.local_names.aliases),
        "views": [dict(record) for record in repository.view_records],
    }


def repository_from_dict(data: dict) -> SchemaRepository:
    """Rebuild a repository from :func:`repository_to_dict` output.

    The customization script is re-applied step by step; a script that
    no longer applies (hand-edited file, incompatible library change)
    raises through the normal operation errors.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported repository format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    repository = SchemaRepository.from_odl(
        data["shrink_wrap_odl"],
        name=data["shrink_wrap_name"],
        custom_name=data["custom_name"],
    )
    # Wagon wheel views were registered at specific points of the
    # customization; recreate each one as soon as the workspace reaches
    # the position it was extracted at, so the views (and the operations
    # issued through them) see the same state as in the original session.
    pending_views = sorted(
        data.get("views", []), key=lambda record: record["position"]
    )

    def replay_views() -> None:
        while pending_views and pending_views[0]["position"] <= len(
            repository.workspace.log
        ):
            record = pending_views.pop(0)
            spokes = record.get("spoke_paths")
            attributes = record.get("attribute_names")
            repository.create_wagon_wheel_view(
                record["focal"],
                record["view_name"],
                tuple(spokes) if spokes is not None else None,
                tuple(attributes) if attributes is not None else None,
            )

    replay_views()
    for record in data["operations"]:
        operation = parse_operation(record["text"])
        repository.apply(
            operation,
            concept_id=record.get("concept_id"),
            propagate=record.get("propagated", True),
        )
        replay_views()
    for path, local_name in data.get("local_names", {}).items():
        repository.local_names.set_alias(
            path, local_name, repository.workspace.schema
        )
    return repository


def save_repository(repository: SchemaRepository, path: str | Path) -> None:
    """Write the repository to *path* as JSON."""
    payload = json.dumps(repository_to_dict(repository), indent=2)
    Path(path).write_text(payload + "\n", encoding="utf-8")


def load_repository(path: str | Path) -> SchemaRepository:
    """Read a repository previously written by :func:`save_repository`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return repository_from_dict(data)
