"""Table 1: operations on ODL schema definitions per concept schema type.

Regenerates the admissibility matrix from the operation registry and
checks the paper's structural claims: wagon wheels carry the largest
share of modifications; supertype, attribute-move, operation-move, and
relationship-retarget operations live in generalization hierarchies; the
part-of and instance-of modify operations live in their own hierarchy
concept schemas; and no concept schema offers a rename (name
equivalence).
"""

from repro.concepts import ConceptKind
from repro.ops.registry import (
    admissible_operations,
    format_table1,
    table1_matrix,
)


def _cell(matrix, candidate, sub_candidate, kind):
    for row in matrix:
        if (row["candidate"], row["sub_candidate"]) == (candidate, sub_candidate):
            return row[kind.value]
    raise AssertionError(f"missing row {candidate}/{sub_candidate}")


def test_bench_table1(benchmark, report):
    matrix = benchmark(table1_matrix)
    report("table1_operation_admissibility", format_table1())

    ww, gh = ConceptKind.WAGON_WHEEL, ConceptKind.GENERALIZATION
    ah, ih = ConceptKind.AGGREGATION, ConceptKind.INSTANCE_OF

    # Object types can be added and deleted in every concept schema type.
    assert _cell(matrix, "Interface Definition", "Type name", ww) == "AD"
    assert _cell(matrix, "Interface Definition", "Type name", gh) == "AD"
    assert _cell(matrix, "Interface Definition", "Type name", ah) == "AD"
    assert _cell(matrix, "Interface Definition", "Type name", ih) == "AD"

    # "The complete set of operations for the type properties, extent
    # name and key list, are allowed" in wagon wheels.
    assert _cell(matrix, "Type Properties", "Extent name", ww) == "ADM"
    assert _cell(matrix, "Type Properties", "Key list", ww) == "ADM"

    # Supertype re-wiring belongs to generalization hierarchies.
    assert _cell(matrix, "Type Properties", "Supertype (ISA)", gh) == "ADM"
    assert _cell(matrix, "Type Properties", "Supertype (ISA)", ww) == ""

    # Moves (attribute, operation, relationship target) are
    # generalization hierarchy operations.
    assert _cell(matrix, "Attribute", "Name", gh) == "M"
    assert _cell(matrix, "Operation", "Name", gh) == "M"
    assert _cell(matrix, "Relationship", "Target type", gh) == "M"

    # Part-of / instance-of adds live in wagon wheels AND their own
    # hierarchies; their modifies only in the hierarchies.
    assert _cell(matrix, "Part-of Relationship", "Traversal path name", ww) == "AD"
    assert _cell(matrix, "Part-of Relationship", "Traversal path name", ah) == "AD"
    assert _cell(matrix, "Part-of Relationship", "One way cardinality", ah) == "M"
    assert _cell(matrix, "Part-of Relationship", "One way cardinality", ww) == ""
    assert _cell(matrix, "Instance-of Relationship", "Target type", ih) == "M"

    # "The largest portion of the modifications are supported in wagon
    # wheel concept schemas."
    counts = {
        kind: len(admissible_operations(kind)) for kind in ConceptKind
    }
    assert counts[ww] == max(counts.values())
