"""Tests for the synthetic workload generator."""

from repro.knowledge.propagation import expand
from repro.model.fingerprint import schema_fingerprint
from repro.ops.base import OperationContext
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


class TestGenerateSchema:
    def test_requested_size(self):
        schema = generate_schema(WorkloadSpec(types=25, seed=1))
        assert len(schema) == 25

    def test_schema_is_valid(self):
        generate_schema(WorkloadSpec(types=40, seed=2)).validate()

    def test_deterministic(self):
        first = generate_schema(WorkloadSpec(types=15, seed=3))
        second = generate_schema(WorkloadSpec(types=15, seed=3))
        assert schema_fingerprint(first) == schema_fingerprint(second)

    def test_seed_changes_output(self):
        first = generate_schema(WorkloadSpec(types=15, seed=3))
        second = generate_schema(WorkloadSpec(types=15, seed=4))
        assert schema_fingerprint(first) != schema_fingerprint(second)

    def test_features_present(self):
        schema = generate_schema(WorkloadSpec(types=30, seed=5))
        stats = schema.stats()
        assert stats["supertype_links"] > 0
        assert stats["part_of_links"] == 3
        assert stats["instance_of_links"] == 2
        assert stats["relationship_ends"] > 10

    def test_features_can_be_disabled(self):
        spec = WorkloadSpec(
            types=10, isa_fraction=0.0, association_density=0.0,
            part_of_chain=0, instance_of_chain=0, seed=0,
        )
        stats = generate_schema(spec).stats()
        assert stats["supertype_links"] == 0
        assert stats["relationship_ends"] == 0


class TestGenerateOperations:
    def test_requested_count(self):
        schema = generate_schema(WorkloadSpec(types=20, seed=1))
        operations = generate_operations(schema, 40, seed=2)
        assert len(operations) == 40

    def test_operations_replay_cleanly(self):
        schema = generate_schema(WorkloadSpec(types=20, seed=1))
        operations = generate_operations(schema, 40, seed=2)
        scratch = schema.copy("replay")
        context = OperationContext(reference=schema)
        for operation in operations:
            for step in expand(scratch, operation, context):
                step.apply(scratch, context)
        scratch.validate()

    def test_deterministic(self):
        schema = generate_schema(WorkloadSpec(types=20, seed=1))
        first = generate_operations(schema, 25, seed=7)
        second = generate_operations(schema, 25, seed=7)
        assert [op.to_text() for op in first] == [
            op.to_text() for op in second
        ]

    def test_source_schema_untouched(self):
        schema = generate_schema(WorkloadSpec(types=20, seed=1))
        before = schema_fingerprint(schema)
        generate_operations(schema, 30, seed=2)
        assert schema_fingerprint(schema) == before

    def test_mix_includes_destructive_operations(self):
        schema = generate_schema(WorkloadSpec(types=20, seed=1))
        operations = generate_operations(schema, 80, seed=3)
        names = {op.op_name for op in operations}
        assert "delete_attribute" in names or "delete_relationship" in names
