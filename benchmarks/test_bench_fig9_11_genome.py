"""Figures 9-11 and the Section 4 case study: the ACEDB family.

Reports the three object-type graphs, the classes common to all three
schemas, the family's pairwise affinities, and the per-derivation
operation counts and reuse ratios -- the quantitative reading of "the
object types have the same name and ... much of the structure is the
same".  A synthesis pass derives the AAtDB script mechanically and
compares it against the naive delete-all/add-all baseline.
"""

from repro.analysis.completeness import full_rebuild_script
from repro.analysis.similarity import affinity_report
from repro.analysis.synthesis import synthesize_operations
from repro.catalog import (
    aatdb_repository,
    acedb_schema,
    common_classes,
    sacchdb_repository,
)
from repro.designer.render import render_object_graph


def derive_family():
    return aatdb_repository(), sacchdb_repository()


def test_bench_fig9_11_genome(benchmark, report):
    aatdb_repo, sacchdb_repo = benchmark(derive_family)
    acedb = acedb_schema()
    aatdb = aatdb_repo.custom_schema
    sacchdb = sacchdb_repo.custom_schema
    assert aatdb is not None and sacchdb is not None

    shared = common_classes()
    acedb_aatdb = affinity_report(acedb, aatdb)
    acedb_sacchdb = affinity_report(acedb, sacchdb)

    lines = [
        render_object_graph(acedb),
        "",
        render_object_graph(sacchdb),
        "",
        render_object_graph(aatdb),
        "",
        f"classes common to all three schemas ({len(shared)}): "
        + ", ".join(sorted(shared)),
        "",
        f"ACEDB -> AAtDB:   {len(aatdb_repo.workspace.log)} requested ops, "
        f"reuse ratio {aatdb_repo.mapping.reuse_ratio():.2f}, "
        f"schema affinity {acedb_aatdb.schema_affinity:.2f}",
        f"ACEDB -> SacchDB: {len(sacchdb_repo.workspace.log)} requested ops, "
        f"reuse ratio {sacchdb_repo.mapping.reuse_ratio():.2f}, "
        f"schema affinity {acedb_sacchdb.schema_affinity:.2f}",
    ]
    report("fig9_11_acedb_family", "\n".join(lines))

    # The paper's observations, as assertions on the shape:
    # 1. a substantial set of same-named classes across all three;
    assert len(shared) >= 8
    # 2. strain (animal) vs phenotype (plant) terminology;
    assert "Strain" in acedb and "Strain" in sacchdb
    assert "Phenotype" in aatdb and "Strain" not in aatdb
    # 3. much of the structure is the same: high affinity and reuse;
    assert acedb_aatdb.mean_type_affinity > 0.8
    assert aatdb_repo.mapping.reuse_ratio() > 0.7
    assert sacchdb_repo.mapping.reuse_ratio() > 0.7
    # 4. far fewer operations than designing from scratch: the scripts
    #    are a fraction of the delete-all/add-all baseline.
    assert len(aatdb_repo.workspace.log) < len(
        full_rebuild_script(acedb, aatdb)
    ) / 2


def test_bench_genome_synthesis(benchmark, report):
    """Mechanically re-derive the AAtDB customization script by diff."""
    acedb = acedb_schema()
    aatdb = aatdb_repository().custom_schema
    assert aatdb is not None

    plan = benchmark(synthesize_operations, acedb, aatdb)
    rebuild = full_rebuild_script(acedb, aatdb)
    lines = [
        f"diff-driven synthesis: {len(plan)} operations",
        f"delete-all/add-all baseline: {len(rebuild)} operations",
        "",
        "synthesised script:",
        *(f"  {operation.to_text()}" for operation in plan),
    ]
    report("fig9_11_synthesis_vs_rebuild", "\n".join(lines))

    assert len(plan) < len(rebuild) / 2
