"""A scripted run of the interactive schema designer REPL.

The paper's tool is an interactive system; this example drives the same
command loop programmatically so the whole designer dialogue -- browse,
select, preview impact, apply, undo, check, finish -- is visible in one
transcript.  To drive it by hand instead, write any catalog schema to a
file and run ``python -m repro.designer.cli <schema.odl>``.

Run with::

    python examples/interactive_session.py
"""

from repro.catalog import university_schema
from repro.designer import DesignSession
from repro.designer.cli import execute
from repro.repository import SchemaRepository

COMMANDS = [
    "concepts",
    "select gh:Person",
    "show",
    "explain",
    "ops",
    # Move the advisor name up from Graduate so every student has one.
    "apply modify_attribute(Graduate, advisor_name, Student)",
    # Semantic stability in action: Faculty and Graduate are not on one
    # generalization path, so this is rejected with feedback.
    "apply modify_attribute(Graduate, program, Faculty)",
    # A composite restructuring: honors students split off from
    # undergraduates, taking the class year with them.
    "refactor split_by_subtyping(Undergraduate, Honors_Student, (class_year))",
    "select ww:Course_Offering",
    "impact delete_type_definition(Length)",
    "apply delete_type_definition(Length)",
    "undo",
    "apply add_attribute(Course_Offering, string(20), delivery_mode)",
    # Local names: the registrar calls offerings "class meetings".
    "alias Course_Offering Class_Meeting",
    "aliases",
    "odl local Course_Offering",
    "script",
    "check",
    "suggest",
    "finish scripted_university",
]


def main() -> None:
    session = DesignSession(
        SchemaRepository(university_schema(), custom_name="scripted")
    )
    for command in COMMANDS:
        print(f"designer> {command}")
        output = execute(session, command)
        if output:
            print("\n".join(f"  {line}" for line in output.splitlines()))
        print()


if __name__ == "__main__":
    main()
