"""Interface definitions (object types) of the extended object model.

An :class:`InterfaceDef` gathers the *type properties* (supertypes, extent
name, key lists) and *instance properties* (attributes, relationship ends,
operations) of one object type, mirroring the candidates-for-modification
breakdown of the paper's Tables 2 and 3.

Interfaces are mutable containers, but every individual property value is
an immutable dataclass; mutation happens by replacing whole entries.  All
edits in a design session should go through :mod:`repro.ops` operations so
that they are validated, logged, and reversible -- the methods here are
the primitive storage layer those operations use.

Every mutator emits one :class:`~repro.model.mutation.MutationRecord`
onto each owning schema's mutation spine (``tools/check_mutators.py``
enforces this), so cache layers never hear about changes through any
other channel.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from sys import intern
from typing import TYPE_CHECKING

from repro.model.attributes import Attribute
from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    UnknownPropertyError,
)
from repro.model.mutation import Aspect, aspect_for_kind
from repro.model.operations import Operation
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.types import referenced_interfaces

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.mutation import MutationLog

# Shared singleton aspect sets so the emit path allocates nothing.
_ISA = frozenset({Aspect.ISA})
_EXTENT = frozenset({Aspect.EXTENT})
_KEYS = frozenset({Aspect.KEYS})
_ATTRS = frozenset({Aspect.ATTRS})
_OPS = frozenset({Aspect.OPS})
_REL = {
    kind: frozenset({aspect_for_kind(kind)}) for kind in RelationshipKind
}


# ----------------------------------------------------------------------
# Copy-on-write claims (DESIGN.md 5j)
#
# A *claim* is a borrower of a live interface: something that holds a
# reference to it and needs the contents as of claim time, but has not
# paid for a copy.  The first mutation of the interface settles every
# claim (see InterfaceDef._cow_barrier) by materialising the copy then,
# against the still-unmutated state.  Claims are duck-typed: anything
# with ``settle(original) -> bool`` works; a False return means the
# borrower is dead and the claim can be pruned.
# ----------------------------------------------------------------------


class _PayloadClaim:
    """An ``add_interface`` record payload borrowing the live interface.

    ``Schema._adopt`` stores the adopted interface itself in the record
    payload instead of an eager copy; settling swaps the live reference
    for a copy of the pre-mutation state, so replay and delete-undo
    still see the interface exactly as it was added.
    """

    __slots__ = ("_payload",)

    def __init__(self, payload: dict) -> None:
        self._payload = payload

    def settle(self, original: "InterfaceDef") -> bool:
        if self._payload.get("interface") is original:
            self._payload["interface"] = original.copy()
        return True


class _CowAnchor:
    """Weakly referenceable handle onto a slotted Schema.

    ``Schema`` is a slots dataclass without a ``__weakref__`` slot (and
    ``dataclass(weakref_slot=True)`` needs 3.12), so CoW shares weakly
    reference this anchor instead.  The anchor and its schema form a
    reference cycle, which the cycle collector reclaims together once
    the schema is otherwise unreachable -- at that point every share's
    weakref clears and the borrower is pruned.
    """

    __slots__ = ("schema", "__weakref__")

    def __init__(self, schema) -> None:
        self.schema = schema


class _SchemaShare:
    """A whole schema (CoW fork or projection) borrowing interfaces.

    Held weakly (via the schema's :class:`_CowAnchor`): a dead fork must
    neither be kept alive by its parent's spine nor make the parent pay
    for copies nobody can observe.  Settling privatises the interface
    into the borrowing schema -- the fork keeps a frozen copy of the
    pre-mutation state, attached to its own spine, while the owner's
    object changes underneath.
    """

    __slots__ = ("_ref",)

    def __init__(self, anchor: _CowAnchor) -> None:
        self._ref = weakref.ref(anchor)

    def settle(self, original: "InterfaceDef") -> bool:
        anchor = self._ref()
        if anchor is None:
            return False
        schema = anchor.schema
        if schema.interfaces.get(original.name) is original:
            snap = original.copy()
            schema.interfaces[original.name] = snap
            snap._attach_spine(schema._log)
        return True


class _SnapshotClaim:
    """A frozen holder (e.g. a WagonWheel) borrowing a live interface.

    Settling replaces ``holder.<attr>`` with a copy of the pre-mutation
    state via ``object.__setattr__`` (the holders are frozen
    dataclasses), so the snapshot keeps the contents it was taken with.
    """

    __slots__ = ("_ref", "_attr")

    def __init__(self, holder, attr: str) -> None:
        self._ref = weakref.ref(holder)
        self._attr = attr

    def settle(self, original: "InterfaceDef") -> bool:
        holder = self._ref()
        if holder is None:
            return False
        if getattr(holder, self._attr, None) is original:
            object.__setattr__(holder, self._attr, original.copy())
        return True


@dataclass(slots=True)
class InterfaceDef:
    """One object type of a schema.

    ``attributes`` and ``relationships`` share a property namespace (a
    traversal path may not collide with an attribute name); operations
    live in their own namespace because ODL signatures are syntactically
    distinct.  Insertion order is preserved so printed ODL is stable.

    Storage is slotted and all graph-bearing strings (interface name,
    supertype entries, property dict keys) are interned, so identity
    comparison and set membership on them stay cheap at 10k+ types.
    """

    name: str
    supertypes: list[str] = field(default_factory=list)
    extent: str | None = None
    keys: list[tuple[str, ...]] = field(default_factory=list)
    attributes: dict[str, Attribute] = field(default_factory=dict)
    relationships: dict[str, RelationshipEnd] = field(default_factory=dict)
    operations: dict[str, Operation] = field(default_factory=dict)
    # Owning schemas attach their mutation spine here so every mutator
    # below lands one record on it (see repro.model.mutation).  Spines
    # carry identity, not value, and must not take part in __eq__/repr.
    _spines: list["MutationLog"] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    # Copy-on-write claims directly against this interface (payload
    # live-references, projection shares, concept snapshots); usually
    # None so the per-mutation barrier costs one attribute load.
    _claims: list | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise InvalidModelError(f"invalid interface name {self.name!r}")
        if len(set(self.supertypes)) != len(self.supertypes):
            raise InvalidModelError(
                f"interface {self.name!r} lists a duplicate supertype"
            )
        self.name = intern(self.name)
        self.supertypes = [intern(name) for name in self.supertypes]
        self.keys = [tuple(intern(part) for part in key) for key in self.keys]
        self.attributes = {
            intern(name): value for name, value in self.attributes.items()
        }
        self.relationships = {
            intern(name): value for name, value in self.relationships.items()
        }
        self.operations = {
            intern(name): value for name, value in self.operations.items()
        }

    # ------------------------------------------------------------------
    # Owner notification (the mutation spine)
    # ------------------------------------------------------------------

    def _attach_spine(self, log: "MutationLog") -> None:
        """Register an owning schema's mutation log."""
        self._spines.append(log)

    def _detach_spine(self, log: "MutationLog") -> None:
        """Drop one registration of *log* (no-op when absent)."""
        try:
            self._spines.remove(log)
        except ValueError:
            pass

    def _emit(
        self, kind: str, aspects: frozenset[Aspect], payload: dict
    ) -> None:
        """Emit one mutation record onto every owning schema's spine."""
        for log in self._spines:
            log.emit(
                kind, interface=self.name, aspects=aspects, payload=payload
            )

    # ------------------------------------------------------------------
    # Copy-on-write barrier (DESIGN.md 5j)
    # ------------------------------------------------------------------

    def register_claim(self, claim) -> None:
        """Register a CoW claim, settled on this interface's next mutation."""
        if self._claims is None:
            self._claims = [claim]
        else:
            self._claims.append(claim)

    def _cow_barrier(self) -> None:
        """Materialise every borrower before this interface changes.

        The first statement of every mutator (AST-enforced by
        ``tools/check_mutators.py``): per-interface claims freeze their
        copy against the still-unmutated state, and schema-level borrows
        (CoW forks) registered on the owning spines privatise the
        interface into any live fork still sharing it.  Dead borrowers
        are pruned; with no borrowers this is one attribute load per
        spine.  The barrier runs before the mutator's own validation --
        settling ahead of a rejected mutation is harmless (the copy is
        identical to the shared original).
        """
        claims = self._claims
        if claims is not None:
            self._claims = None
            for claim in claims:
                claim.settle(self)
        for log in self._spines:
            borrows = log._cow_borrows
            if borrows:
                dead = [b for b in borrows if not b.settle(self)]
                for borrow in dead:
                    try:
                        borrows.remove(borrow)
                    except ValueError:
                        pass

    # ------------------------------------------------------------------
    # Type properties
    # ------------------------------------------------------------------

    def add_supertype(self, supertype: str, position: int | None = None) -> None:
        """Append *supertype* to the ISA list (or insert at *position*)."""
        self._cow_barrier()
        if supertype == self.name:
            raise InvalidModelError(
                f"interface {self.name!r} cannot be its own supertype"
            )
        if supertype in self.supertypes:
            raise DuplicateNameError(
                f"{self.name!r} already has supertype {supertype!r}"
            )
        supertype = intern(supertype)
        if position is None:
            self.supertypes.append(supertype)
        else:
            self.supertypes.insert(position, supertype)
        self._emit(
            "add_supertype",
            _ISA,
            {"supertype": supertype, "position": position},
        )

    def remove_supertype(self, supertype: str) -> None:
        """Remove *supertype* from the ISA list."""
        self._cow_barrier()
        try:
            self.supertypes.remove(supertype)
        except ValueError:
            raise UnknownPropertyError(
                f"{self.name!r} has no supertype {supertype!r}"
            ) from None
        self._emit("remove_supertype", _ISA, {"supertype": supertype})

    def set_supertypes(self, supertypes: list[str]) -> None:
        """Replace the whole ISA list (``modify_supertype`` re-wiring)."""
        self._cow_barrier()
        supertypes = [intern(name) for name in supertypes]
        if self.name in supertypes:
            raise InvalidModelError(
                f"interface {self.name!r} cannot be its own supertype"
            )
        if len(set(supertypes)) != len(supertypes):
            raise InvalidModelError(
                f"interface {self.name!r} lists a duplicate supertype"
            )
        self.supertypes = supertypes
        self._emit("set_supertypes", _ISA, {"supertypes": tuple(supertypes)})

    def set_extent(self, extent: str | None) -> None:
        """Set or clear the extent name (spine-emitting mutator)."""
        self._cow_barrier()
        self.extent = extent
        self._emit("set_extent", _EXTENT, {"extent": extent})

    def add_key(self, key: tuple[str, ...]) -> None:
        """Add a key (a tuple of attribute names)."""
        self._cow_barrier()
        key = tuple(intern(part) for part in key)
        if not key:
            raise InvalidModelError("a key must name at least one attribute")
        if key in self.keys:
            raise DuplicateNameError(
                f"{self.name!r} already declares key {key!r}"
            )
        self.keys.append(key)
        self._emit("add_key", _KEYS, {"key": key})

    def remove_key(self, key: tuple[str, ...]) -> None:
        """Remove a previously declared key."""
        self._cow_barrier()
        key = tuple(key)
        try:
            self.keys.remove(key)
        except ValueError:
            raise UnknownPropertyError(
                f"{self.name!r} has no key {key!r}"
            ) from None
        self._emit("remove_key", _KEYS, {"key": key})

    def insert_key(self, key: tuple[str, ...], position: int) -> None:
        """Insert a key at *position* (undo of a key deletion)."""
        self._cow_barrier()
        key = tuple(intern(part) for part in key)
        if not key:
            raise InvalidModelError("a key must name at least one attribute")
        if key in self.keys:
            raise DuplicateNameError(
                f"{self.name!r} already declares key {key!r}"
            )
        self.keys.insert(position, key)
        self._emit("insert_key", _KEYS, {"key": key, "position": position})

    def replace_key_at(self, position: int, key: tuple[str, ...]) -> tuple[str, ...]:
        """Swap the key at *position* for *key*, returning the old one."""
        self._cow_barrier()
        key = tuple(intern(part) for part in key)
        if not key:
            raise InvalidModelError("a key must name at least one attribute")
        try:
            old = self.keys[position]
        except IndexError:
            raise UnknownPropertyError(
                f"{self.name!r} has no key at position {position}"
            ) from None
        self.keys[position] = key
        self._emit(
            "replace_key_at", _KEYS, {"position": position, "key": key}
        )
        return old

    # ------------------------------------------------------------------
    # Instance properties
    # ------------------------------------------------------------------

    def _check_property_name_free(self, name: str) -> None:
        if name in self.attributes or name in self.relationships:
            raise DuplicateNameError(
                f"interface {self.name!r} already has a property {name!r}"
            )

    def add_attribute(self, attribute: Attribute) -> None:
        """Add an attribute; its name must be free in the property namespace."""
        self._cow_barrier()
        self._check_property_name_free(attribute.name)
        self.attributes[intern(attribute.name)] = attribute
        self._emit("add_attribute", _ATTRS, {"attribute": attribute})

    def remove_attribute(self, name: str) -> Attribute:
        """Remove and return the attribute called *name*."""
        self._cow_barrier()
        try:
            removed = self.attributes.pop(name)
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no attribute {name!r}"
            ) from None
        self._emit("remove_attribute", _ATTRS, {"name": name})
        return removed

    def get_attribute(self, name: str) -> Attribute:
        """Return the attribute called *name*."""
        try:
            return self.attributes[name]
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no attribute {name!r}"
            ) from None

    def replace_attribute(self, attribute: Attribute) -> Attribute:
        """Swap in a new value for an existing attribute, returning the old."""
        self._cow_barrier()
        old = self.get_attribute(attribute.name)
        self.attributes[attribute.name] = attribute
        self._emit("replace_attribute", _ATTRS, {"attribute": attribute})
        return old

    def reorder_attributes(self, order: list[str]) -> None:
        """Rebuild the attribute dict in *order* (undo of a deletion).

        *order* must be a permutation of the current attribute names.
        """
        self._cow_barrier()
        self.attributes = self._reordered(
            self.attributes, order, "attribute"
        )
        self._emit("reorder_attributes", _ATTRS, {"order": tuple(order)})

    def add_relationship(self, end: RelationshipEnd) -> None:
        """Add a relationship end; its path name must be free."""
        self._cow_barrier()
        self._check_property_name_free(end.name)
        self.relationships[intern(end.name)] = end
        self._emit("add_relationship", _REL[end.kind], {"end": end})

    def remove_relationship(self, name: str) -> RelationshipEnd:
        """Remove and return the relationship end called *name*."""
        self._cow_barrier()
        try:
            removed = self.relationships.pop(name)
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no relationship {name!r}"
            ) from None
        self._emit(
            "remove_relationship", _REL[removed.kind], {"name": name}
        )
        return removed

    def get_relationship(self, name: str) -> RelationshipEnd:
        """Return the relationship end called *name*."""
        try:
            return self.relationships[name]
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no relationship {name!r}"
            ) from None

    def replace_relationship(self, end: RelationshipEnd) -> RelationshipEnd:
        """Swap in a new value for an existing end, returning the old."""
        self._cow_barrier()
        old = self.get_relationship(end.name)
        self.relationships[end.name] = end
        self._emit(
            "replace_relationship",
            _REL[old.kind] | _REL[end.kind],
            {"end": end},
        )
        return old

    def add_operation(self, operation: Operation) -> None:
        """Add an operation; its name must be free among operations."""
        self._cow_barrier()
        if operation.name in self.operations:
            raise DuplicateNameError(
                f"interface {self.name!r} already has operation "
                f"{operation.name!r}"
            )
        self.operations[intern(operation.name)] = operation
        self._emit("add_operation", _OPS, {"operation": operation})

    def remove_operation(self, name: str) -> Operation:
        """Remove and return the operation called *name*."""
        self._cow_barrier()
        try:
            removed = self.operations.pop(name)
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no operation {name!r}"
            ) from None
        self._emit("remove_operation", _OPS, {"name": name})
        return removed

    def get_operation(self, name: str) -> Operation:
        """Return the operation called *name*."""
        try:
            return self.operations[name]
        except KeyError:
            raise UnknownPropertyError(
                f"{self.name!r} has no operation {name!r}"
            ) from None

    def replace_operation(self, operation: Operation) -> Operation:
        """Swap in a new value for an existing operation, returning the old."""
        self._cow_barrier()
        old = self.get_operation(operation.name)
        self.operations[operation.name] = operation
        self._emit("replace_operation", _OPS, {"operation": operation})
        return old

    def reorder_operations(self, order: list[str]) -> None:
        """Rebuild the operation dict in *order* (undo of a deletion)."""
        self._cow_barrier()
        self.operations = self._reordered(
            self.operations, order, "operation"
        )
        self._emit("reorder_operations", _OPS, {"order": tuple(order)})

    def _reordered(self, members: dict, order: list[str], noun: str) -> dict:
        """*members* rebuilt in *order*; must be an exact permutation."""
        if set(order) != set(members) or len(order) != len(members):
            raise UnknownPropertyError(
                f"{self.name!r}: {noun} reorder {list(order)!r} is not a "
                f"permutation of {list(members)!r}"
            )
        return {name: members[name] for name in order}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def relationships_of_kind(
        self, kind: RelationshipKind
    ) -> list[RelationshipEnd]:
        """All ends of the given kind, in declaration order."""
        return [end for end in self.relationships.values() if end.kind is kind]

    def referenced_type_names(self) -> set[str]:
        """Every interface name referenced by this definition.

        Includes supertypes, attribute domains, relationship targets and
        inverse types, and operation signatures.  Used for dangling-
        reference validation and for delete propagation.
        """
        names: set[str] = set(self.supertypes)
        for attribute in self.attributes.values():
            names |= referenced_interfaces(attribute.type)
        for end in self.relationships.values():
            names.add(end.target_type)
            names.add(end.inverse_type)
        for operation in self.operations.values():
            names |= referenced_interfaces(operation.return_type)
            for parameter in operation.parameters:
                names |= referenced_interfaces(parameter.type)
        return names

    def copy(self) -> "InterfaceDef":
        """Deep-enough copy: containers are fresh, values are immutable."""
        return InterfaceDef(
            name=self.name,
            supertypes=list(self.supertypes),
            extent=self.extent,
            keys=[tuple(key) for key in self.keys],
            attributes=dict(self.attributes),
            relationships=dict(self.relationships),
            operations=dict(self.operations),
        )

    def __str__(self) -> str:
        isa = f" : {', '.join(self.supertypes)}" if self.supertypes else ""
        return f"interface {self.name}{isa}"
