"""The ACEDB case study (Section 4, Figures 9-11).

ACEDB was manually adapted into AAtDB (Arabidopsis) and SacchDB (yeast).
This example re-enacts that history with the library: the ACEDB shrink
wrap schema is customized twice, once per descendant, using only the
operations of the Appendix A language; the resulting family is then
analysed -- common classes, schema affinities, per-derivation reuse
ratios -- and a modification script for AAtDB is *synthesised back*
from the two schemas to show the diff-driven converse.

Run with::

    python examples/genome_databases.py
"""

from repro.analysis import (
    affinity_report,
    full_rebuild_script,
    synthesize_operations,
)
from repro.catalog import (
    aatdb_repository,
    acedb_schema,
    common_classes,
    sacchdb_repository,
)
from repro.designer import render_object_graph


def main() -> None:
    acedb = acedb_schema()
    print("=== the ACEDB shrink wrap schema (Figure 9) ===")
    print(render_object_graph(acedb))

    print()
    print("=== deriving the descendants ===")
    aatdb_repo = aatdb_repository()
    sacchdb_repo = sacchdb_repository()
    for label, repository in (("AAtDB", aatdb_repo), ("SacchDB", sacchdb_repo)):
        steps = len(repository.workspace.applied_operations())
        requested = len(repository.workspace.log)
        assert repository.mapping is not None
        print(
            f"  {label}: {requested} requested operations "
            f"({steps} including cascades), reuse ratio "
            f"{repository.mapping.reuse_ratio():.2f}"
        )

    aatdb = aatdb_repo.custom_schema
    sacchdb = sacchdb_repo.custom_schema
    assert aatdb is not None and sacchdb is not None

    print()
    print("=== classes common to all three schemas ===")
    print(" ", ", ".join(sorted(common_classes())))

    print()
    print("=== schema affinity within the family ===")
    print(affinity_report(acedb, aatdb).render())
    print()
    print(affinity_report(acedb, sacchdb).render())

    print()
    print("=== the family at a glance ===")
    from repro.analysis import SchemaFamily
    from repro.catalog import AATDB_SCRIPT, SACCHDB_SCRIPT

    family = SchemaFamily(acedb)
    family.derive("aatdb", AATDB_SCRIPT)
    family.derive("sacchdb", SACCHDB_SCRIPT)
    print(family.render())

    print()
    print("=== synthesising the AAtDB script back from the schemas ===")
    synthesized = synthesize_operations(acedb, aatdb)
    rebuild = full_rebuild_script(acedb, aatdb)
    print(f"  diff-driven script: {len(synthesized)} operations")
    print(f"  naive delete-all/add-all baseline: {len(rebuild)} operations")
    print("  first synthesised steps:")
    for operation in synthesized[:8]:
        print(f"    {operation.to_text()}")


if __name__ == "__main__":
    main()
