"""Failure-injection tests: corrupted inputs must fail loudly and cleanly."""

import json

import pytest

from repro.model.errors import ReproError, SchemaError
from repro.odl.lexer import OdlSyntaxError
from repro.ops.language import parse_operation
from repro.repository.persistence import (
    load_repository,
    repository_from_dict,
    repository_to_dict,
    save_repository,
)
from repro.repository.repository import SchemaRepository


@pytest.fixture
def saved(small, tmp_path):
    repository = SchemaRepository(small, custom_name="robust")
    repository.apply(parse_operation("add_attribute(Person, date, dob)"))
    path = tmp_path / "repo.json"
    save_repository(repository, path)
    return repository, path


class TestCorruptedRepositoryFiles:
    def test_truncated_json(self, saved, tmp_path):
        _, path = saved
        path.write_text(path.read_text()[:40], encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            load_repository(path)

    def test_corrupted_odl(self, saved):
        repository, path = saved
        data = json.loads(path.read_text())
        data["shrink_wrap_odl"] = "interface Broken {"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(OdlSyntaxError):
            load_repository(path)

    def test_corrupted_operation_text(self, saved):
        repository, path = saved
        data = json.loads(path.read_text())
        data["operations"][0]["text"] = "rename_type(Person, Kunde)"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(OdlSyntaxError):
            load_repository(path)

    def test_operation_that_no_longer_applies(self, saved):
        repository, path = saved
        data = json.loads(path.read_text())
        data["operations"][0]["text"] = "delete_attribute(Person, ghost)"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(ReproError):
            load_repository(path)

    def test_invalid_shrink_wrap(self, saved):
        repository, path = saved
        data = json.loads(path.read_text())
        data["shrink_wrap_odl"] = "interface A : Ghost {};"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(SchemaError):
            load_repository(path)

    def test_bad_local_name_path(self, saved):
        repository, path = saved
        data = json.loads(path.read_text())
        data["local_names"] = {"Ghost": "Phantom"}
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(SchemaError):
            load_repository(path)

    def test_round_trip_is_not_lossy_under_extra_keys(self, saved):
        """Unknown trailing keys are tolerated (forward compatibility)."""
        repository, path = saved
        data = json.loads(path.read_text())
        data["future_extension"] = {"anything": True}
        restored = repository_from_dict(data)
        from repro.model.fingerprint import schemas_equal

        assert schemas_equal(
            restored.workspace.schema, repository.workspace.schema
        )


class TestDoctests:
    def test_odl_package_doctest(self):
        import doctest

        import repro.odl

        results = doctest.testmod(repro.odl)
        assert results.attempted >= 1
        assert results.failed == 0


class TestSerializationDeterminism:
    def test_to_dict_is_deterministic(self, small):
        repository = SchemaRepository(small, custom_name="det")
        repository.apply(parse_operation("add_attribute(Person, date, dob)"))
        first = json.dumps(repository_to_dict(repository), sort_keys=True)
        second = json.dumps(repository_to_dict(repository), sort_keys=True)
        assert first == second
