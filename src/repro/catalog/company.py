"""The department/employee schema of the Figure 8 example.

Section 3.4 uses it to demonstrate ``modify_relationship_target_type``:
"a department has an employee and the employee works in a department.
Now suppose that students also work in departments, so modify the target
type of works_in_a from employee to person."
"""

from __future__ import annotations

from repro.model.schema import Schema
from repro.odl.parser import parse_schema

COMPANY_ODL = """
// Figure 8: the modify-target-type example schema.

interface Person {
    extent people;
    keys (id);
    attribute long id;
    attribute string(40) name;
};

interface Employee : Person {
    attribute float salary;
    relationship Department works_in_a inverse Department::has;
};

interface Student : Person {
    attribute float gpa;
};

interface Department {
    extent departments;
    keys (code);
    attribute string(10) code;
    relationship set<Employee> has inverse Employee::works_in_a;
};
"""

#: The Section 3.4 operation, in the prose's own three-argument form.
FIGURE8_OPERATION = "modify_relationship_target_type(Employee, works_in_a, Person)"

#: The paper's before/after ODL listings for the two relationship ends.
FIGURE8_BEFORE = {
    "Department": "relationship set<Employee> has inverse Employee::works_in_a",
    "Employee": "relationship Department works_in_a inverse Department::has",
}
FIGURE8_AFTER = {
    "Department": "relationship set<Person> has inverse Person::works_in_a",
    "Person": "relationship Department works_in_a inverse Department::has",
}


def company_schema(name: str = "company") -> Schema:
    """Parse and return the Figure 8 example schema."""
    schema = parse_schema(COMPANY_ODL, name=name)
    schema.validate()
    return schema
