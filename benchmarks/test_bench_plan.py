"""Batched plan application and analyzer overhead (ISSUE 5).

Two measurements, merged into the bench trajectory JSON:

* **Naive vs batched plan application** at shrink-wrap scale: applying
  a 100-op plan through :meth:`Workspace.apply` validates after every
  op; :meth:`Workspace.apply_plan` runs the static analyzer once,
  partitions the plan into runs of pairwise-commuting ops, and
  validates once per batch.  The two paths are asserted
  fingerprint-identical (the bench doubles as the batching
  differential), then timed.  Floor: parity (>= 0.9x) at 200 types /
  100 ops.  The original ISSUE 5 floor was >= 2x, but most of that gap
  was the per-op path paying an *eager propagation scratch copy* per
  operation -- PR 9's copy-on-write forks collapsed that tax, so at
  200 types the two paths now tie (~1.0x) and batching's advantage
  only re-emerges with schema size (~1.5x at 4k types); the bulk-path
  scaling floors live with the compiled pass in
  ``test_bench_compact.py`` / ``test_bench_columnar.py``.
* **Analyzer overhead**: :func:`~repro.analysis.plan.analyze_plan` on
  the same plan, alone, as a fraction of the naive apply time -- the
  pre-flight must stay a small add-on, not a second apply loop.
"""

from __future__ import annotations

import os
import time

from repro.analysis.plan import analyze_plan
from repro.model.fingerprint import schema_fingerprint
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

from benchmarks.test_bench_spine import _median_time

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
STRICT = not SMOKE
SIZE = 60 if SMOKE else 200
PLAN_OPS = 30 if SMOKE else 100
REPEATS = 3 if SMOKE else 5


def _workload():
    spec = WorkloadSpec(
        types=SIZE,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=max(4, SIZE // 4),
        instance_of_chain=max(3, SIZE // 8),
    )
    schema = generate_schema(spec)
    plan = generate_operations(schema, PLAN_OPS, seed=11)
    return schema, plan


def test_bench_plan_batched_vs_naive(report, record_bench):
    """apply_plan (validate per batch) vs apply (validate per op)."""
    schema, plan = _workload()

    def naive():
        workspace = Workspace(schema, "naive")
        for operation in plan:
            workspace.apply(operation)
        return workspace

    def batched():
        workspace = Workspace(schema, "batched")
        workspace.apply_plan(plan)
        return workspace

    assert schema_fingerprint(naive().schema) == schema_fingerprint(
        batched().schema
    ), "batched apply_plan diverged from naive per-op application"

    naive_time = _median_time(naive, repeats=REPEATS)
    batched_time = _median_time(batched, repeats=REPEATS)
    speedup = naive_time / batched_time if batched_time else float("inf")
    batches = len(analyze_plan(plan, schema).batches)

    record_bench(f"plan_naive[{SIZE}x{PLAN_OPS}]", naive_time, types=SIZE)
    record_bench(f"plan_batched[{SIZE}x{PLAN_OPS}]", batched_time, types=SIZE)
    lines = [
        "plan application: per-op validation vs per-batch validation",
        f"mode: {'smoke' if SMOKE else 'full'}; {SIZE} types, "
        f"{len(plan)}-op plan, {batches} batches",
        "",
        f"naive (validate/op):      {naive_time * 1e3:9.3f}ms",
        f"batched (validate/batch): {batched_time * 1e3:9.3f}ms",
        f"speedup:                  {speedup:9.2f}x "
        "(floor at 200 types / 100 ops: parity, >= 0.9x)",
    ]
    report("plan_batched_vs_naive", "\n".join(lines))
    # Parity guard: since CoW forks removed the per-op scratch-copy tax
    # (PR 9), batching no longer wins at 200 types -- but it must never
    # *lose* to per-op application either (its remaining value is one
    # analysis pass, commutativity batching, and the scaling curve).
    floor = 0.9 if STRICT else 0.75
    assert speedup >= floor, (
        f"apply_plan at {SIZE} types / {len(plan)} ops fell to "
        f"{speedup:.2f}x of per-op application (floor {floor:.2f}x)"
    )


def test_bench_plan_analyzer_overhead(report, record_bench):
    """Static analysis cost as a fraction of actually applying the plan."""
    schema, plan = _workload()

    analyze_time = _median_time(
        lambda: analyze_plan(plan, schema), repeats=REPEATS
    )

    def naive():
        workspace = Workspace(schema, "overhead_naive")
        for operation in plan:
            workspace.apply(operation)

    naive_time = _median_time(naive, repeats=REPEATS)
    fraction = analyze_time / naive_time if naive_time else 0.0

    record_bench(
        f"plan_analyze[{SIZE}x{PLAN_OPS}]", analyze_time, types=SIZE
    )
    record_bench("plan_analyze_fraction", fraction)
    lines = [
        "static plan analysis vs applying the plan",
        f"mode: {'smoke' if SMOKE else 'full'}; {SIZE} types, "
        f"{len(plan)}-op plan",
        "",
        f"analyze_plan: {analyze_time * 1e3:9.3f}ms",
        f"naive apply:  {naive_time * 1e3:9.3f}ms",
        f"fraction:     {fraction * 100:9.2f}%",
    ]
    report("plan_analyzer_overhead", "\n".join(lines))
    # Pre-flight must stay much cheaper than running the plan.
    assert fraction <= 0.5, (
        f"analyze_plan costs {fraction * 100:.0f}% of applying the plan"
    )
