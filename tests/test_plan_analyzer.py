"""Tests for the static plan analyzer (:mod:`repro.analysis.plan`).

These pin the PR's tentpole contract: effect signatures stay consistent
with ``validation_scope()``, pre-flight diagnostics are exact (every
one reproduces as a dynamic failure), normalization rewrites preserve
what a plan computes, batching preserves execution order, and
``Workspace.apply_plan`` is all-or-nothing.
"""

import pytest

from repro.analysis.plan import (
    PlanPreflightError,
    analyze_plan,
    conflict_edges,
    main as plan_main,
    normalize_plan,
    partition_batches,
)
from repro.concepts.base import ConceptKind
from repro.model.errors import SchemaError
from repro.model.fingerprint import schema_fingerprint
from repro.model.types import scalar
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttributeType,
)
from repro.ops.base import OperationError
from repro.ops.effects import footprints_overlap
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    ModifyExtentName,
)
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


@pytest.fixture
def workspace(small):
    return Workspace(small, name="plan_ws")


def _generated_corpus():
    spec = WorkloadSpec(types=24, seed=7, isa_fraction=0.4,
                        part_of_chain=5, instance_of_chain=4)
    schema = generate_schema(spec)
    plan = generate_operations(schema, 60, seed=3)
    return schema, plan


class TestEffectSignatures:
    def test_signatures_consistent_with_validation_scope(self):
        """No declared write may escape ``validation_scope()``."""
        from repro.ops.effects import signature_scope_violations

        _, plan = _generated_corpus()
        for operation in plan:
            assert signature_scope_violations(operation) == []

    def test_conflicts_with_is_symmetric(self):
        _, plan = _generated_corpus()
        signatures = [operation.effect_signature() for operation in plan]
        for first in signatures[:30]:
            for second in signatures[:30]:
                assert (
                    (first.conflicts_with(second) is None)
                    == (second.conflicts_with(first) is None)
                )

    def test_indexed_overlap_matches_quadratic_reference(self):
        """conflicts_with must agree with the footprints_overlap reference."""
        _, plan = _generated_corpus()
        signatures = [operation.effect_signature() for operation in plan]
        for first in signatures[:30]:
            for second in signatures[:30]:
                reference = bool(
                    footprints_overlap(first.writes, second.writes)
                    or footprints_overlap(first.writes, second.reads)
                    or footprints_overlap(first.reads, second.writes)
                    or (first.binding_names() & second.mentioned_names())
                    or (second.binding_names() & first.mentioned_names())
                )
                assert (
                    first.conflicts_with(second) is not None
                ) == reference

    def test_membership_overlaps_every_aspect(self):
        delete = DeleteTypeDefinition("Person").effect_signature()
        add = AddAttribute(
            "Person", scalar("long"), "extra"
        ).effect_signature()
        assert delete.conflicts_with(add) is not None

    def test_disjoint_ops_commute(self):
        first = AddAttribute("Person", scalar("long"), "a")
        second = AddAttribute("Department", scalar("long"), "b")
        assert first.effect_signature().conflicts_with(
            second.effect_signature()
        ) is None


class TestPreflight:
    def test_unknown_type(self, small):
        analysis = analyze_plan(
            [AddAttribute("Ghost", scalar("long"), "x")], small
        )
        assert [d.code for d in analysis.diagnostics] == ["unknown-type"]
        assert analysis.diagnostics[0].index == 0
        assert not analysis.is_clean()

    def test_use_after_delete_names_the_deleting_op(self, small):
        plan = [
            DeleteTypeDefinition("Department"),
            AddAttribute("Department", scalar("long"), "x"),
        ]
        analysis = analyze_plan(plan, small)
        codes = {(d.index, d.code) for d in analysis.diagnostics}
        assert (1, "use-after-delete") in codes
        assert "op[0]" in analysis.diagnostics[0].message

    def test_create_then_use_is_clean(self, small):
        plan = [
            AddTypeDefinition("Fresh"),
            AddAttribute("Fresh", scalar("long"), "x"),
        ]
        assert analyze_plan(plan, small).is_clean()

    def test_duplicate_type(self, small):
        analysis = analyze_plan([AddTypeDefinition("Person")], small)
        assert [d.code for d in analysis.diagnostics] == ["duplicate-type"]

    def test_extent_state_add_over_existing(self, small):
        analysis = analyze_plan([AddExtentName("Person", "folk")], small)
        assert [d.code for d in analysis.diagnostics] == ["extent-state"]

    def test_extent_state_modify_wrong_old_name(self, small):
        analysis = analyze_plan(
            [ModifyExtentName("Person", "wrong", "folk")], small
        )
        assert [d.code for d in analysis.diagnostics] == ["extent-state"]

    def test_extent_state_delete_wrong_name(self, small):
        analysis = analyze_plan([DeleteExtentName("Person", "wrong")], small)
        assert [d.code for d in analysis.diagnostics] == ["extent-state"]

    def test_extent_clash_globally_unique(self, small):
        analysis = analyze_plan(
            [ModifyExtentName("Person", "people", "departments")], small
        )
        assert [d.code for d in analysis.diagnostics] == ["extent-clash"]

    def test_extent_add_on_extentless_type_is_clean(self, small):
        assert analyze_plan(
            [AddExtentName("Employee", "workers")], small
        ).is_clean()

    def test_failed_op_contributes_no_effects(self, small):
        """Skip-on-failure keeps the simulation exact for later ops."""
        plan = [
            AddExtentName("Person", "extra"),        # fails: has an extent
            ModifyExtentName("Person", "extra", "other"),  # still 'people'
        ]
        analysis = analyze_plan(plan, small)
        assert [(d.index, d.code) for d in analysis.diagnostics] == [
            (0, "extent-state"), (1, "extent-state"),
        ]

    def test_inadmissible_by_kind(self, small):
        analysis = analyze_plan(
            [AddSupertype("Department", "Person")],
            small,
            kind=ConceptKind.WAGON_WHEEL,
        )
        assert [d.code for d in analysis.diagnostics] == ["inadmissible"]
        assert analyze_plan(
            [AddSupertype("Department", "Person")],
            small,
            kind=ConceptKind.GENERALIZATION,
        ).is_clean()

    def test_every_diagnostic_is_a_real_dynamic_failure(self, small):
        """No false positives: diagnosed ops fail when actually applied."""
        plans = [
            [AddAttribute("Ghost", scalar("long"), "x")],
            [DeleteTypeDefinition("Department"),
             AddAttribute("Department", scalar("long"), "x")],
            [AddTypeDefinition("Person")],
            [AddExtentName("Person", "folk")],
            [ModifyExtentName("Person", "people", "departments")],
        ]
        for plan in plans:
            analysis = analyze_plan(plan, small)
            diagnosed = {d.index for d in analysis.diagnostics}
            assert diagnosed
            workspace = Workspace(small.copy(), name="dyncheck")
            for index, operation in enumerate(plan):
                if index in diagnosed:
                    with pytest.raises((OperationError, SchemaError)):
                        workspace.apply(operation)
                else:
                    workspace.apply(operation)

    def test_no_schema_checks_admissibility_only(self):
        analysis = analyze_plan(
            [AddAttribute("Nowhere", scalar("long"), "x")], schema=None
        )
        assert analysis.is_clean()


class TestConflictGraphAndBatches:
    def test_write_write_edge(self):
        plan = [
            AddAttribute("Person", scalar("long"), "a"),
            AddAttribute("Person", scalar("long"), "b"),
        ]
        edges = conflict_edges(
            [operation.effect_signature() for operation in plan]
        )
        assert len(edges) == 1
        assert edges[0].earlier == 0 and edges[0].later == 1
        assert "write-write" in edges[0].reason

    def test_wildcard_read_edge(self):
        plan = [
            AddAttribute("Person", scalar("long"), "a"),
            AddKeyList("Employee", ("name",)),
        ]
        edges = conflict_edges(
            [operation.effect_signature() for operation in plan]
        )
        assert any("read-after-write" in edge.reason for edge in edges)

    def test_batches_concatenate_to_plan(self, small):
        _, plan = _generated_corpus()
        batches = partition_batches(plan)
        flattened = [operation for batch in batches for operation in batch]
        assert flattened == list(plan)

    def test_conflicting_ops_split_batches(self):
        plan = [
            AddAttribute("Person", scalar("long"), "a"),
            AddAttribute("Person", scalar("long"), "b"),
        ]
        assert [len(b) for b in partition_batches(plan)] == [1, 1]

    def test_commuting_ops_share_a_batch(self):
        plan = [
            AddAttribute("Person", scalar("long"), "a"),
            AddAttribute("Department", scalar("long"), "b"),
        ]
        assert [len(b) for b in partition_batches(plan)] == [2]

    def test_edges_skippable(self, small):
        analysis = analyze_plan(
            [AddAttribute("Person", scalar("long"), "a")], small,
            edges=False,
        )
        assert analysis.edges == []
        assert analysis.batches  # batching unaffected


class TestNormalization:
    def test_dead_attribute_pair_eliminated(self):
        plan = [
            AddAttribute("Person", scalar("long"), "tmp"),
            DeleteAttribute("Person", "tmp"),
        ]
        normalized, notes = normalize_plan(plan)
        assert normalized == []
        assert any("dead pair" in note for note in notes)

    def test_dead_pair_blocked_by_conflicting_op_between(self):
        # The key list reads (*, ATTRS): it may observe the attribute,
        # so the pair cannot be slid together and must survive.
        plan = [
            AddAttribute("Person", scalar("long"), "tmp"),
            AddKeyList("Employee", ("name",)),
            DeleteAttribute("Person", "tmp"),
        ]
        normalized, notes = normalize_plan(plan)
        assert normalized == plan
        assert notes == []

    def test_add_modify_fusion(self):
        plan = [
            AddAttribute("Person", scalar("long"), "age"),
            ModifyAttributeType(
                "Person", "age", scalar("long"), scalar("float")
            ),
        ]
        normalized, notes = normalize_plan(plan)
        assert len(normalized) == 1
        fused = normalized[0]
        assert isinstance(fused, AddAttribute)
        assert fused.domain_type == scalar("float")
        assert any("fused" in note for note in notes)

    def test_modify_chain_fusion(self):
        plan = [
            ModifyExtentName("Person", "people", "folk"),
            ModifyExtentName("Person", "folk", "citizens"),
        ]
        normalized, _ = normalize_plan(plan)
        assert len(normalized) == 1
        assert normalized[0].old_extent_name == "people"
        assert normalized[0].new_extent_name == "citizens"

    def test_identity_chain_dropped(self):
        plan = [
            ModifyExtentName("Person", "people", "folk"),
            ModifyExtentName("Person", "folk", "people"),
        ]
        normalized, notes = normalize_plan(plan)
        assert normalized == []
        assert any("identity" in note for note in notes)

    def test_type_group_elimination(self):
        plan = [
            AddTypeDefinition("Scratch"),
            AddAttribute("Scratch", scalar("long"), "x"),
            AddKeyList("Scratch", ("x",)),
            DeleteTypeDefinition("Scratch"),
        ]
        normalized, notes = normalize_plan(plan)
        assert normalized == []
        assert any("group" in note for note in notes)

    def test_normalized_plan_computes_the_same_schema(self, small):
        plan = [
            AddAttribute("Person", scalar("long"), "tmp"),
            AddAttribute("Department", scalar("string"), "label"),
            DeleteAttribute("Person", "tmp"),
            ModifyExtentName("Person", "people", "folk"),
            ModifyExtentName("Person", "folk", "citizens"),
        ]
        normalized, _ = normalize_plan(plan)
        assert len(normalized) < len(plan)
        original_ws = Workspace(small.copy(), name="orig")
        for operation in plan:
            original_ws.apply(operation)
        normalized_ws = Workspace(small.copy(), name="norm")
        for operation in normalized:
            normalized_ws.apply(operation)
        assert schema_fingerprint(original_ws.schema) == schema_fingerprint(
            normalized_ws.schema
        )


class TestApplyPlan:
    def test_matches_per_op_application(self, small):
        schema, plan = _generated_corpus()
        naive = Workspace(schema, name="naive")
        for operation in plan:
            naive.apply(operation)
        batched = Workspace(schema, name="batched")
        entries = batched.apply_plan(plan)
        assert schema_fingerprint(naive.schema) == schema_fingerprint(
            batched.schema
        )
        assert len(entries) == batched.undo_depth

    def test_preflight_rejection_leaves_workspace_untouched(self, workspace):
        before = schema_fingerprint(workspace.schema)
        with pytest.raises(PlanPreflightError) as excinfo:
            workspace.apply_plan([
                AddAttribute("Person", scalar("long"), "ok"),
                AddAttribute("Ghost", scalar("long"), "x"),
            ])
        assert excinfo.value.diagnostics[0].code == "unknown-type"
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.undo_depth == 0

    def test_dynamic_failure_rolls_back_everything(self, workspace):
        before = schema_fingerprint(workspace.schema)
        plan = [
            AddAttribute("Person", scalar("long"), "fresh"),
            # Statically clean (the analyzer does not model
            # attribute-level state) but dynamically a duplicate.
            AddAttribute("Person", scalar("long"), "id"),
        ]
        assert analyze_plan(plan, workspace.schema).is_clean()
        with pytest.raises(OperationError):
            workspace.apply_plan(plan)
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.undo_depth == 0
        assert workspace.redo_depth == 0

    def test_normalize_off_applies_plan_verbatim(self, workspace):
        plan = [
            AddAttribute("Person", scalar("long"), "tmp"),
            DeleteAttribute("Person", "tmp"),
        ]
        entries = workspace.apply_plan(plan, normalize=False)
        assert len(entries) == 2

    def test_normalize_on_skips_dead_work(self, workspace):
        plan = [
            AddAttribute("Person", scalar("long"), "tmp"),
            DeleteAttribute("Person", "tmp"),
        ]
        entries = workspace.apply_plan(plan)
        assert entries == []
        assert workspace.undo_depth == 0


class TestCLI:
    def test_clean_script_exits_zero(self, tmp_path, capsys):
        from tests.conftest import SMALL_ODL

        schema_file = tmp_path / "small.odl"
        schema_file.write_text(SMALL_ODL, encoding="utf-8")
        script = tmp_path / "plan.txt"
        script.write_text(
            "add_attribute(Person, long, extra);\n"
            "add_attribute(Department, long, floor);\n",
            encoding="utf-8",
        )
        code = plan_main([
            "--schema", str(schema_file), "--script", str(script),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pre-flight: clean" in out
        assert "batches:" in out

    def test_diagnosed_script_exits_nonzero(self, tmp_path, capsys):
        from tests.conftest import SMALL_ODL

        schema_file = tmp_path / "small.odl"
        schema_file.write_text(SMALL_ODL, encoding="utf-8")
        script = tmp_path / "plan.txt"
        script.write_text(
            "add_attribute(Ghost, long, x);\n", encoding="utf-8"
        )
        code = plan_main([
            "--schema", str(schema_file), "--script", str(script),
            "--edges",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "unknown-type" in out
