"""Scaling characterisation (no paper counterpart).

Decomposition, union reconstruction, structural validation, ODL
round-trip, and mapping generation as functions of schema size, on
synthetic shrink wrap schemas.  The paper reports no performance
numbers; this bench documents that the implementation stays interactive
at realistic schema sizes (the ACEDB schema family is ~10-60 classes; we
sweep far beyond).
"""

import pytest

from repro.analysis.diff import diff_schemas
from repro.concepts.decompose import decompose, reconstruct
from repro.model.fingerprint import schemas_equal
from repro.model.validation import validate_schema
from repro.odl.parser import parse_schema
from repro.odl.printer import print_schema
from repro.workload.generator import WorkloadSpec, generate_schema

SIZES = (25, 100, 400)


def _schema(size: int):
    return generate_schema(WorkloadSpec(types=size, seed=42))


@pytest.mark.parametrize("size", SIZES)
def test_bench_decompose(benchmark, size):
    schema = _schema(size)
    decomposition = benchmark(decompose, schema)
    assert len(decomposition.wagon_wheels) == size


@pytest.mark.parametrize("size", SIZES)
def test_bench_reconstruct(benchmark, size):
    schema = _schema(size)
    decomposition = decompose(schema)
    rebuilt = benchmark(reconstruct, decomposition)
    assert schemas_equal(schema, rebuilt)


@pytest.mark.parametrize("size", SIZES)
def test_bench_validate(benchmark, size):
    schema = _schema(size)
    issues = benchmark(validate_schema, schema)
    assert not [issue for issue in issues if issue.severity == "error"]


@pytest.mark.parametrize("size", SIZES)
def test_bench_odl_round_trip(benchmark, size):
    schema = _schema(size)

    def round_trip():
        return parse_schema(print_schema(schema), name=schema.name)

    reparsed = benchmark(round_trip)
    assert schemas_equal(schema, reparsed)


@pytest.mark.parametrize("size", SIZES)
def test_bench_mapping_generation(benchmark, size):
    schema = _schema(size)
    custom = schema.copy("custom")
    custom.remove_interface(custom.type_names()[-1])
    diff = benchmark(diff_schemas, schema, custom)
    assert diff.counts()["deleted"] >= 1
