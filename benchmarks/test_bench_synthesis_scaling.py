"""Synthesis scaling (ours): diff-driven script derivation vs. rebuild.

For synthetic schema pairs of growing size -- the target is the source
with a quarter of its types deleted, a batch of new types added, and
attribute edits sprinkled in -- the bench measures synthesis time and
compares the synthesised script length against the delete-all/add-all
baseline of Section 3.5.
"""

import pytest

from repro.analysis.completeness import full_rebuild_script
from repro.analysis.synthesis import synthesize_operations
from repro.knowledge.propagation import expand
from repro.ops.base import OperationContext
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

SIZES = (20, 60)


def _make_pair(size: int):
    source = generate_schema(WorkloadSpec(types=size, seed=size))
    target = source.copy("target")
    context = OperationContext(reference=source)
    for operation in generate_operations(source, max(10, size // 2), seed=1):
        for step in expand(target, operation, context):
            step.apply(target, context)
    return source, target


@pytest.mark.parametrize("size", SIZES)
def test_bench_synthesis_scaling(benchmark, report, size):
    source, target = _make_pair(size)
    plan = benchmark(synthesize_operations, source, target)
    rebuild = full_rebuild_script(source, target)
    report(
        f"synthesis_scaling_{size}",
        f"{size}-type source, mutated target: synthesis derives "
        f"{len(plan)} operations vs {len(rebuild)} for the naive rebuild "
        f"({len(plan) / len(rebuild):.0%}).",
    )
    assert len(plan) < len(rebuild)
