"""Shared fixtures: the catalog schemas and small hand-built schemas."""

from __future__ import annotations

import pytest

from repro.catalog import (
    acedb_schema,
    company_schema,
    house_schema,
    software_schema,
    university_schema,
)
from repro.model.schema import Schema
from repro.odl.parser import parse_schema


@pytest.fixture
def university() -> Schema:
    """The Figures 3/4/7 university shrink wrap schema."""
    return university_schema()


@pytest.fixture
def company() -> Schema:
    """The Figure 8 department/employee schema."""
    return company_schema()


@pytest.fixture
def house() -> Schema:
    """The Figure 5 lumber-yard aggregation schema."""
    return house_schema()


@pytest.fixture
def software() -> Schema:
    """The Figure 6 EMSL instance-of chain schema."""
    return software_schema()


@pytest.fixture
def acedb() -> Schema:
    """The Section 4 ACEDB genome schema."""
    return acedb_schema()


SMALL_ODL = """
interface Person {
    extent people;
    keys (id);
    attribute long id;
    attribute string(30) name;
};

interface Employee : Person {
    attribute float salary;
    relationship Department works_in inverse Department::staff;
};

interface Department {
    extent departments;
    keys (code);
    attribute string(10) code;
    relationship set<Employee> staff inverse Employee::works_in order_by (name);
};
"""


@pytest.fixture
def small() -> Schema:
    """A three-type schema with ISA, a relationship pair, and a key."""
    schema = parse_schema(SMALL_ODL, name="small")
    schema.validate()
    return schema
