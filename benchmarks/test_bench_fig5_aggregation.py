"""Figure 5: the house aggregation hierarchy (lumber-yard parts explosion).

Extracts the rooted aggregation concept schema and checks the figure's
content: "the roof of the house consisting of plywood decking, tar
paper, and shingles".
"""

from repro.catalog import house_schema
from repro.concepts.aggregation import extract_aggregation_hierarchy
from repro.designer.render import render_aggregation

SCHEMA = house_schema()


def test_bench_fig5_aggregation(benchmark, report):
    hierarchy = benchmark(extract_aggregation_hierarchy, SCHEMA, "House")
    report("fig5_house_aggregation", render_aggregation(hierarchy))

    assert hierarchy.root == "House"
    assert set(hierarchy.parts_of("House")) == {
        "Structure", "Finish_Element", "Plumbing"
    }
    assert set(hierarchy.parts_of("Roof")) == {
        "Plywood_Decking", "Tar_Paper", "Shingle"
    }
    # The explosion is a proper multi-level hierarchy.
    levels = {name: level for level, name in hierarchy.bill_of_materials()}
    assert levels["House"] == 0
    assert levels["Shingle"] == 3
