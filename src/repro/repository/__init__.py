"""Schema repository: shrink wrap schema, workspace, custom schema, mapping.

Implements Figure 1's "Schema Repository", the knowledge base of the
shrink-wrap-based design process, with JSON persistence substituting the
prototype's ObjectStore backend (see DESIGN.md).
"""

from repro.repository.localnames import LocalNameMap, apply_local_names
from repro.repository.mapping import SchemaMapping, generate_mapping
from repro.repository.persistence import (
    FORMAT_VERSION,
    load_repository,
    repository_from_dict,
    repository_to_dict,
    save_repository,
)
from repro.repository.repository import SchemaRepository, require_custom_schema
from repro.repository.workspace import LogEntry, Workspace

__all__ = [
    "FORMAT_VERSION",
    "LocalNameMap",
    "LogEntry",
    "SchemaMapping",
    "SchemaRepository",
    "Workspace",
    "apply_local_names",
    "generate_mapping",
    "load_repository",
    "repository_from_dict",
    "repository_to_dict",
    "require_custom_schema",
    "save_repository",
]
