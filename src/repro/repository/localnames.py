"""Local names: the paper's sanctioned extension to name equivalence.

Section 5: "We acknowledge that database designers are very likely to
want to introduce local names for constructs that appear in the schema.
The extension of our work to handle this possibility requires that the
user indicate a change of name, and that the system maintain the mapping
from shrink wrap schema names to local names."

A :class:`LocalNameMap` is exactly that maintained mapping.  It is *not*
part of the operation language -- canonical names still identify every
construct, the workspace and mapping still operate on them -- but the
designer can view the schema through the map
(:func:`apply_local_names`) and the repository keeps the map alongside
its other artifacts.

Aliased paths:

* ``"Type"`` -- a local name for an object type;
* ``"Type.member"`` -- a local name for an attribute, relationship
  traversal path, or operation of ``Type``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.attributes import Attribute
from repro.model.errors import SchemaError
from repro.model.interface import InterfaceDef
from repro.model.operations import Operation, Parameter
from repro.model.relationships import RelationshipEnd
from repro.model.schema import Schema
from repro.model.types import CollectionType, NamedType, TypeRef


@dataclass
class LocalNameMap:
    """The maintained mapping from canonical names to local names."""

    aliases: dict[str, str] = field(default_factory=dict)

    def set_alias(self, path: str, local_name: str, schema: Schema) -> None:
        """Record a local name for a construct of *schema*.

        The path must exist; the local name must not collide with a
        canonical or local name already in use at the same scope.
        """
        if not local_name or not local_name[0].isalpha():
            raise SchemaError(f"invalid local name {local_name!r}")
        owner, _, member = path.partition(".")
        interface = schema.get(owner)
        if member:
            known = (
                member in interface.attributes
                or member in interface.relationships
                or member in interface.operations
            )
            if not known:
                raise SchemaError(
                    f"{owner!r} has no member {member!r} to alias"
                )
            taken = (
                set(interface.attributes)
                | set(interface.relationships)
                | set(interface.operations)
            )
            taken |= {
                existing_local
                for existing_path, existing_local in self.aliases.items()
                if existing_path.startswith(f"{owner}.")
                and existing_path != path
            }
            if local_name in taken:
                raise SchemaError(
                    f"local name {local_name!r} collides within {owner!r}"
                )
        else:
            taken = set(schema.type_names()) - {owner}
            taken |= {
                existing_local
                for existing_path, existing_local in self.aliases.items()
                if "." not in existing_path and existing_path != path
            }
            if local_name in taken:
                raise SchemaError(
                    f"local name {local_name!r} collides with another type"
                )
        self.aliases[path] = local_name

    def remove_alias(self, path: str) -> None:
        """Forget the local name of one construct."""
        try:
            del self.aliases[path]
        except KeyError:
            raise SchemaError(f"no local name recorded for {path!r}") from None

    def local_type_name(self, canonical: str) -> str:
        """The display name of a type."""
        return self.aliases.get(canonical, canonical)

    def local_member_name(self, owner: str, member: str) -> str:
        """The display name of a member of *owner*."""
        return self.aliases.get(f"{owner}.{member}", member)

    def canonical(self, local_name: str) -> str | None:
        """Reverse lookup: the canonical path carrying *local_name*."""
        for path, local in self.aliases.items():
            if local == local_name:
                return path
        return None

    def render(self) -> str:
        """The shrink-wrap-to-local name mapping, one line per alias."""
        if not self.aliases:
            return "(no local names recorded)"
        width = max(len(path) for path in self.aliases)
        return "\n".join(
            f"{path.ljust(width)} -> {local}"
            for path, local in sorted(self.aliases.items())
        )


def apply_local_names(schema: Schema, names: LocalNameMap) -> Schema:
    """A display copy of *schema* with every alias applied consistently.

    Type renames propagate into supertype lists, attribute and signature
    types, relationship targets, and inverse declarations; member renames
    propagate into inverse path names, key lists, and order-by lists
    (resolving inherited attributes to their providing type).  The
    returned schema is for presentation and export -- the repository
    keeps operating on canonical names.
    """
    display = Schema(schema.name)
    for interface in schema:
        display.add_interface(_rename_interface(schema, interface, names))
    return display


def _rename_type_ref(type_ref: TypeRef, names: LocalNameMap) -> TypeRef:
    if isinstance(type_ref, NamedType):
        return NamedType(names.local_type_name(type_ref.name))
    if isinstance(type_ref, CollectionType):
        return CollectionType(
            type_ref.kind, _rename_type_ref(type_ref.element, names),
            type_ref.size,
        )
    return type_ref


def _attribute_provider(schema: Schema, owner: str, attr_name: str) -> str:
    """The type whose declaration of *attr_name* is visible on *owner*."""
    if attr_name in schema.get(owner).attributes:
        return owner
    return schema.inherited_attributes(owner).get(attr_name, owner)


def _rename_interface(
    schema: Schema, interface: InterfaceDef, names: LocalNameMap
) -> InterfaceDef:
    renamed = InterfaceDef(
        names.local_type_name(interface.name),
        supertypes=[
            names.local_type_name(supertype)
            for supertype in interface.supertypes
        ],
        extent=interface.extent,
    )
    for key in interface.keys:
        renamed.add_key(
            tuple(
                names.local_member_name(
                    _attribute_provider(schema, interface.name, attr_name),
                    attr_name,
                )
                for attr_name in key
            )
        )
    for attribute in interface.attributes.values():
        renamed.add_attribute(
            Attribute(
                names.local_member_name(interface.name, attribute.name),
                _rename_type_ref(attribute.type, names),
            )
        )
    for end in interface.relationships.values():
        renamed.add_relationship(_rename_end(schema, interface.name, end, names))
    for operation in interface.operations.values():
        renamed.add_operation(
            Operation(
                names.local_member_name(interface.name, operation.name),
                _rename_type_ref(operation.return_type, names),
                tuple(
                    Parameter(
                        parameter.direction,
                        _rename_type_ref(parameter.type, names),
                        parameter.name,
                    )
                    for parameter in operation.parameters
                ),
                operation.exceptions,
            )
        )
    return renamed


def _rename_end(
    schema: Schema, owner: str, end: RelationshipEnd, names: LocalNameMap
) -> RelationshipEnd:
    order_by = tuple(
        names.local_member_name(
            _attribute_provider(schema, end.target_type, attr_name)
            if end.target_type in schema
            else end.target_type,
            attr_name,
        )
        for attr_name in end.order_by
    )
    return RelationshipEnd(
        names.local_member_name(owner, end.name),
        _rename_type_ref(end.target, names),
        names.local_type_name(end.inverse_type),
        names.local_member_name(end.inverse_type, end.inverse_name),
        end.kind,
        order_by,
    )
