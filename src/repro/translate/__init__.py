"""Translations of schemas to other data models (Section 5).

"Our approach is not dependent on a DBMS or even a data model" -- a
custom schema produced by shrink-wrap-based design can be carried into
the relational model (:func:`to_sql`) or an entity-relationship model
(:func:`to_er`).
"""

from repro.translate.er import (
    ErAttribute,
    ErEntity,
    ErModel,
    ErRelationship,
    to_er,
    to_er_text,
)
from repro.translate.relational import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
    to_relational,
    to_sql,
)

__all__ = [
    "Column",
    "ErAttribute",
    "ErEntity",
    "ErModel",
    "ErRelationship",
    "ForeignKey",
    "RelationalSchema",
    "Table",
    "to_er",
    "to_er_text",
    "to_relational",
    "to_sql",
]
