"""Attribute operations.

Wagon wheels own ``add_attribute`` / ``delete_attribute`` and the value
modifications (``modify_attribute_type`` / ``modify_attribute_size``);
moving an attribute to another object type (``modify_attribute``) is a
generalization hierarchy operation bounded by semantic stability ("a
legal move might be to move an attribute up the hierarchy to reside in a
supertype's interface definition", Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concepts.base import ConceptKind
from repro.model.attributes import Attribute
from repro.model.mutation import Aspect
from repro.model.schema import Schema
from repro.model.types import (
    SIZED_SCALAR_NAMES,
    ScalarType,
    TypeRef,
    referenced_interfaces,
)
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    OperationContext,
    SchemaOperation,
    Undo,
)
from repro.ops.effects import WILDCARD

_WW = frozenset({ConceptKind.WAGON_WHEEL})
_GH = frozenset({ConceptKind.GENERALIZATION})

#: Relationship-end aspects, all three kinds.
_REL_ASPECTS = (
    Aspect.REL_ASSOCIATION, Aspect.REL_PART_OF, Aspect.REL_INSTANCE_OF,
)

#: Cells the delete/move family may rewrite via propagation: keys and
#: order-by lists naming the lost attribute anywhere in the schema.
_LOSER_CASCADES = frozenset({(WILDCARD, Aspect.KEYS)}) | frozenset(
    (WILDCARD, aspect) for aspect in _REL_ASPECTS
)

#: Cells :func:`attribute_losers` and the dependent-use scan inspect.
_LOSER_READS = _LOSER_CASCADES | frozenset({
    (WILDCARD, Aspect.ISA),
    (WILDCARD, Aspect.ATTRS),
})


def _check_domain_type(schema: Schema, type_ref: TypeRef, what: str) -> None:
    """Named types inside a domain type must be defined in the schema."""
    for used in sorted(referenced_interfaces(type_ref)):
        if used not in schema:
            raise ConstraintViolation(
                f"{what} references undefined type {used!r}"
            )


def attribute_losers(
    schema: Schema, typename: str, attribute_name: str
) -> set[str]:
    """Types that lose sight of the attribute if *typename*'s copy goes.

    A type keeps the attribute when it (or any of its other ancestors)
    defines a same-named attribute of its own -- only types whose sole
    provider is *typename* are losers.  Shared by the delete/move
    validators and the propagation rules.
    """
    losers: set[str] = set()
    for name in {typename} | schema.descendants(typename):
        if name != typename and attribute_name in schema.get(name).attributes:
            continue
        providers = {
            owner
            for owner in ({name} | schema.ancestors(name))
            if owner in schema
            and attribute_name in schema.get(owner).attributes
        }
        if providers == {typename}:
            losers.add(name)
    return losers


@dataclass(frozen=True, eq=False)
class AddAttribute(SchemaOperation):
    """``add_attribute(typename, domain_type, [size,] attribute_name)``."""

    op_name = "add_attribute"
    touched_aspects = frozenset({Aspect.ATTRS})
    candidate = "Attribute"
    sub_candidate = "Name"
    action = "add"
    admissible_in = _WW

    typename: str
    domain_type: TypeRef
    attribute_name: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if (
            self.attribute_name in interface.attributes
            or self.attribute_name in interface.relationships
        ):
            raise ConstraintViolation(
                f"{self.typename!r} already has a property "
                f"{self.attribute_name!r}"
            )
        _check_domain_type(
            schema, self.domain_type,
            f"attribute {self.typename}.{self.attribute_name}",
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).add_attribute(
            Attribute(self.attribute_name, self.domain_type)
        )

        def undo() -> None:
            schema.edit(self.typename).remove_attribute(self.attribute_name)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, str(self.domain_type), self.attribute_name)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def required_names(self) -> tuple[str, ...]:
        return (
            self.typename,
            *sorted(referenced_interfaces(self.domain_type)),
        )

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # The property-name clash check reads attributes and ends.
        return frozenset({(self.typename, Aspect.ATTRS)}) | frozenset(
            (self.typename, aspect) for aspect in _REL_ASPECTS
        )


@dataclass(frozen=True, eq=False)
class DeleteAttribute(SchemaOperation):
    """``delete_attribute(typename, attribute_name)``.

    The attribute must not be used by a key or an order-by list of the
    owning schema; propagation removes those uses first when enabled.
    """

    op_name = "delete_attribute"
    touched_aspects = frozenset({Aspect.ATTRS})
    candidate = "Attribute"
    sub_candidate = "Name"
    action = "delete"
    admissible_in = _WW

    typename: str
    attribute_name: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        schema.get(self.typename).get_attribute(self.attribute_name)
        for user in self._dependent_uses(schema):
            raise ConstraintViolation(
                f"attribute {self.typename}.{self.attribute_name} is still "
                f"used by {user}; remove that use first (propagation does "
                "this automatically)"
            )

    def _dependent_uses(self, schema: Schema) -> list[str]:
        """Keys and order-by lists that would dangle after the delete.

        A key or ordering on a *subtype* that names this (inherited)
        attribute counts too -- unless the subtype shadows it with its
        own same-named attribute or inherits another copy elsewhere.
        """
        losers = attribute_losers(schema, self.typename, self.attribute_name)
        uses: list[str] = []
        for name in sorted(losers):
            for key in schema.get(name).keys:
                if self.attribute_name in key:
                    uses.append(f"key {key!r} of {name!r}")
        for owner, end in schema.index.ends_targeting(losers):
            if self.attribute_name in end.order_by:
                uses.append(f"order_by of {owner}::{end.name}")
        return uses

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        position = list(interface.attributes).index(self.attribute_name)
        removed = interface.remove_attribute(self.attribute_name)

        def undo() -> None:
            owner = schema.edit(self.typename)
            owner.add_attribute(removed)
            _restore_attribute_position(owner, self.attribute_name, position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.attribute_name)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ATTRS)}) | _LOSER_CASCADES

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ATTRS)}) | _LOSER_READS


@dataclass(frozen=True, eq=False)
class ModifyAttribute(SchemaOperation):
    """``modify_attribute(typename, attribute_name, new_typename)``.

    Moves the attribute up or down the generalization hierarchy (the
    grammar's comment: "move attr. up/down gen. hier").  Semantic
    stability requires the two owners to lie on one ISA path of the
    shrink wrap hierarchy.
    """

    op_name = "modify_attribute"
    touched_aspects = frozenset({Aspect.ATTRS})
    candidate = "Attribute"
    sub_candidate = "Name"
    action = "modify"
    admissible_in = _GH

    typename: str
    attribute_name: str
    new_typename: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        schema.get(self.typename).get_attribute(self.attribute_name)
        target = schema.get(self.new_typename)
        if self.new_typename == self.typename:
            raise ConstraintViolation(
                f"attribute {self.attribute_name!r} already resides in "
                f"{self.typename!r}"
            )
        context.check_isa_related(
            schema, self.typename, self.new_typename,
            f"move of attribute {self.attribute_name!r}",
        )
        if (
            self.attribute_name in target.attributes
            or self.attribute_name in target.relationships
        ):
            raise ConstraintViolation(
                f"{self.new_typename!r} already has a property "
                f"{self.attribute_name!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        source = schema.edit(self.typename)
        position = list(source.attributes).index(self.attribute_name)
        moved = source.remove_attribute(self.attribute_name)
        schema.edit(self.new_typename).add_attribute(moved)

        def undo() -> None:
            schema.edit(self.new_typename).remove_attribute(self.attribute_name)
            owner = schema.edit(self.typename)
            owner.add_attribute(moved)
            _restore_attribute_position(owner, self.attribute_name, position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.attribute_name, self.new_typename)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename, self.new_typename)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({
            (self.typename, Aspect.ATTRS),
            (self.new_typename, Aspect.ATTRS),
        }) | _LOSER_CASCADES

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return self.written_footprint() | _LOSER_READS | frozenset(
            (self.new_typename, aspect) for aspect in _REL_ASPECTS
        )


@dataclass(frozen=True, eq=False)
class ModifyAttributeType(SchemaOperation):
    """``modify_attribute_type(typename, attribute_name, old, new)``."""

    op_name = "modify_attribute_type"
    touched_aspects = frozenset({Aspect.ATTRS})
    candidate = "Attribute"
    sub_candidate = "Type"
    action = "modify"
    admissible_in = _WW

    typename: str
    attribute_name: str
    old_type: TypeRef
    new_type: TypeRef

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        attribute = schema.get(self.typename).get_attribute(self.attribute_name)
        if attribute.type != self.old_type:
            raise ConstraintViolation(
                f"attribute {self.typename}.{self.attribute_name} has type "
                f"{attribute.type}, not {self.old_type}"
            )
        _check_domain_type(
            schema, self.new_type,
            f"attribute {self.typename}.{self.attribute_name}",
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        old = interface.get_attribute(self.attribute_name)
        interface.replace_attribute(old.with_type(self.new_type))

        def undo() -> None:
            schema.edit(self.typename).replace_attribute(old)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.attribute_name,
            str(self.old_type), str(self.new_type),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def required_names(self) -> tuple[str, ...]:
        return (
            self.typename,
            *sorted(referenced_interfaces(self.new_type)),
        )


@dataclass(frozen=True, eq=False)
class ModifyAttributeSize(SchemaOperation):
    """``modify_attribute_size(typename, attribute_name, old, new)``.

    Only sized scalar attributes (``string(n)`` / ``char(n)``) have a
    size; passing ``0`` for ``new_size`` removes the size bound.
    """

    op_name = "modify_attribute_size"
    touched_aspects = frozenset({Aspect.ATTRS})
    candidate = "Attribute"
    sub_candidate = "Size"
    action = "modify"
    admissible_in = _WW

    typename: str
    attribute_name: str
    old_size: int | None
    new_size: int | None

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        attribute = schema.get(self.typename).get_attribute(self.attribute_name)
        if (
            not isinstance(attribute.type, ScalarType)
            or attribute.type.name not in SIZED_SCALAR_NAMES
        ):
            raise ConstraintViolation(
                f"attribute {self.typename}.{self.attribute_name} is not a "
                "sized scalar; it has no size"
            )
        if attribute.size != self.old_size:
            raise ConstraintViolation(
                f"attribute {self.typename}.{self.attribute_name} has size "
                f"{attribute.size}, not {self.old_size}"
            )
        if self.new_size is not None and self.new_size <= 0:
            raise ConstraintViolation("new size must be positive")

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        old = interface.get_attribute(self.attribute_name)
        interface.replace_attribute(old.with_size(self.new_size))

        def undo() -> None:
            schema.edit(self.typename).replace_attribute(old)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename, self.attribute_name,
            str(self.old_size if self.old_size is not None else 0),
            str(self.new_size if self.new_size is not None else 0),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)


def _restore_attribute_position(interface, name: str, position: int) -> None:
    """Re-order an interface's attribute dict after an undo insertion."""
    names = list(interface.attributes)
    names.remove(name)
    names.insert(position, name)
    interface.reorder_attributes(names)
