"""Unit tests for relationship ends (repro.model.relationships)."""

import pytest

from repro.model.errors import InvalidModelError
from repro.model.relationships import (
    Cardinality,
    RelationshipEnd,
    RelationshipKind,
    association,
    instance_of,
    part_of,
)
from repro.model.types import named, scalar, set_of


class TestConstruction:
    def test_to_one_association(self):
        end = association("works_in", named("Department"), "Department", "has")
        assert not end.is_to_many
        assert end.cardinality is Cardinality.ONE
        assert end.target_type == "Department"
        assert end.collection_kind is None

    def test_to_many_association(self):
        end = association("has", set_of("Employee"), "Employee", "works_in")
        assert end.is_to_many
        assert end.cardinality is Cardinality.MANY
        assert end.collection_kind == "set"

    def test_scalar_target_rejected(self):
        with pytest.raises(InvalidModelError):
            association("x", scalar("long"), "A", "y")

    def test_collection_of_scalar_target_rejected(self):
        with pytest.raises(InvalidModelError):
            association("x", set_of("long"), "A", "y")

    def test_missing_inverse_rejected(self):
        with pytest.raises(InvalidModelError):
            RelationshipEnd("x", named("A"), "", "y")

    def test_order_by_on_to_one_rejected(self):
        with pytest.raises(InvalidModelError):
            association("x", named("A"), "A", "y", order_by=("name",))

    def test_order_by_on_to_many_allowed(self):
        end = association("x", set_of("A"), "A", "y", order_by=("name",))
        assert end.order_by == ("name",)


class TestRoles:
    def test_association_role(self):
        end = association("x", named("A"), "A", "y")
        assert end.role == "association"

    def test_part_of_roles(self):
        to_parts = part_of("walls", set_of("Wall"), "Wall", "of_house")
        to_whole = part_of("of_house", named("House"), "House", "walls")
        assert to_parts.role == "to_parts"
        assert to_whole.role == "to_whole"

    def test_instance_of_roles(self):
        to_instances = instance_of("versions", set_of("V"), "V", "of_app")
        to_generic = instance_of("of_app", named("App"), "App", "versions")
        assert to_instances.role == "to_instances"
        assert to_generic.role == "to_generic"

    def test_kind_keywords(self):
        assert RelationshipKind.ASSOCIATION.keyword() == ""
        assert RelationshipKind.PART_OF.keyword() == "part_of"
        assert RelationshipKind.INSTANCE_OF.keyword() == "instance_of"


class TestRendering:
    def test_association_rendering(self):
        end = association("has", set_of("Employee"), "Employee", "works_in")
        assert (
            str(end)
            == "relationship set<Employee> has inverse Employee::works_in"
        )

    def test_part_of_rendering(self):
        end = part_of("walls", set_of("Wall"), "Wall", "of_house")
        assert str(end).startswith("part_of relationship set<Wall> walls")

    def test_order_by_rendering(self):
        end = association(
            "has", set_of("Employee"), "Employee", "works_in",
            order_by=("name", "id"),
        )
        assert str(end).endswith("order_by (name, id)")


class TestFunctionalUpdates:
    def test_with_target_type_keeps_collection(self):
        end = association("has", set_of("Employee"), "Employee", "works_in")
        updated = end.with_target_type("Person")
        assert updated.target == set_of("Person")
        assert end.target == set_of("Employee")

    def test_with_target_type_scalar(self):
        end = association("works_in", named("Department"), "Department", "has")
        assert end.with_target_type("Division").target == named("Division")

    def test_with_inverse(self):
        end = association("has", set_of("Employee"), "Employee", "works_in")
        updated = end.with_inverse("Person", "works_in")
        assert updated.inverse_type == "Person"
        assert updated.inverse_name == "works_in"

    def test_with_order_by(self):
        end = association("has", set_of("Employee"), "Employee", "works_in")
        assert end.with_order_by(("name",)).order_by == ("name",)
