"""Tokenizer for the extended ODL.

A small hand-written lexer: identifiers/keywords, integer literals, and
the punctuation of the ODL grammar (including ``::`` for inverse traversal
paths).  ``//`` line comments and ``/* */`` block comments are skipped.
Every token carries its line and column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.model.errors import ReproError


class OdlSyntaxError(ReproError):
    """Lexical or grammatical error in ODL text or operation text."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


# Token types
IDENT = "IDENT"
NUMBER = "NUMBER"
PUNCT = "PUNCT"
END = "END"

#: Multi-character punctuation must be matched before single characters.
_PUNCTUATION = ("::", "{", "}", "(", ")", "<", ">", ",", ";", ":", "[", "]")


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position."""

    type: str
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        if self.type == END:
            return "end of input"
        return repr(self.value)


def tokenize(text: str) -> Iterator[Token]:
    """Yield the tokens of *text*, ending with a single ``END`` token."""
    line = 1
    column = 1
    index = 0
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("//", index):
            end = text.find("\n", index)
            advance((end if end != -1 else length) - index)
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end == -1:
                raise OdlSyntaxError("unterminated block comment", line, column)
            advance(end + 2 - index)
            continue
        if char.isalpha() or char == "_":
            start = index
            start_line, start_column = line, column
            while index < length and (text[index].isalnum() or text[index] == "_"):
                advance(1)
            yield Token(IDENT, text[start:index], start_line, start_column)
            continue
        if char.isdigit():
            start = index
            start_line, start_column = line, column
            while index < length and text[index].isdigit():
                advance(1)
            yield Token(NUMBER, text[start:index], start_line, start_column)
            continue
        for punct in _PUNCTUATION:
            if text.startswith(punct, index):
                yield Token(PUNCT, punct, line, column)
                advance(len(punct))
                break
        else:
            raise OdlSyntaxError(f"unexpected character {char!r}", line, column)
    yield Token(END, "", line, column)


class TokenStream:
    """Cursor over a token list with the lookahead the parsers need."""

    def __init__(self, text: str) -> None:
        self._tokens = list(tokenize(text))
        self._position = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def peek(self, offset: int = 1) -> Token:
        """Look ahead without consuming; clamps at the END token."""
        position = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[position]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        if token.type != END:
            self._position += 1
        return token

    def at_punct(self, value: str) -> bool:
        return self.current.type == PUNCT and self.current.value == value

    def at_ident(self, value: str | None = None) -> bool:
        if self.current.type != IDENT:
            return False
        return value is None or self.current.value == value

    def expect_punct(self, value: str) -> Token:
        if not self.at_punct(value):
            raise OdlSyntaxError(
                f"expected {value!r}, found {self.current}",
                self.current.line, self.current.column,
            )
        return self.advance()

    def expect_ident(self, value: str | None = None) -> Token:
        if not self.at_ident(value):
            expected = repr(value) if value else "an identifier"
            raise OdlSyntaxError(
                f"expected {expected}, found {self.current}",
                self.current.line, self.current.column,
            )
        return self.advance()

    def expect_number(self) -> int:
        if self.current.type != NUMBER:
            raise OdlSyntaxError(
                f"expected a number, found {self.current}",
                self.current.line, self.current.column,
            )
        return int(self.advance().value)

    def accept_punct(self, value: str) -> bool:
        """Consume the punctuation if present, returning whether it was."""
        if self.at_punct(value):
            self.advance()
            return True
        return False

    def accept_ident(self, value: str) -> bool:
        """Consume the keyword identifier if present."""
        if self.at_ident(value):
            self.advance()
            return True
        return False

    def expect_end(self) -> None:
        if self.current.type != END:
            raise OdlSyntaxError(
                f"unexpected trailing input: {self.current}",
                self.current.line, self.current.column,
            )

    def error(self, message: str) -> OdlSyntaxError:
        """Build a syntax error anchored at the current token."""
        return OdlSyntaxError(message, self.current.line, self.current.column)
