"""Algorithmic decomposition of a schema into concept schemas.

"It is possible to algorithmically decompose a schema defined in extended
ODL into concept schemas" and "the union of all the initial concept
schemas gives the original shrink wrap schema" (Section 3.3).  This
module implements both directions:

* :func:`decompose` extracts one wagon wheel per object type plus one
  generalization / aggregation / instance-of hierarchy per root;
* :func:`reconstruct` unions a decomposition back into a schema, and the
  round-trip is the identity (verified by property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.aggregation import (
    AggregationHierarchy,
    extract_all_aggregation_hierarchies,
)
from repro.concepts.base import ConceptKind, ConceptSchema
from repro.concepts.generalization import (
    GeneralizationHierarchy,
    extract_all_generalization_hierarchies,
)
from repro.concepts.instance_of import (
    InstanceOfHierarchy,
    extract_all_instance_of_hierarchies,
)
from repro.concepts.wagon_wheel import WagonWheel, extract_all_wagon_wheels
from repro.model.errors import SchemaError
from repro.model.interface import InterfaceDef
from repro.model.schema import Schema


@dataclass
class Decomposition:
    """The complete concept-schema view of one schema."""

    schema_name: str
    wagon_wheels: list[WagonWheel] = field(default_factory=list)
    generalizations: list[GeneralizationHierarchy] = field(default_factory=list)
    aggregations: list[AggregationHierarchy] = field(default_factory=list)
    instance_ofs: list[InstanceOfHierarchy] = field(default_factory=list)

    def all_concepts(self) -> list[ConceptSchema]:
        """Every concept schema, wagon wheels first."""
        return [
            *self.wagon_wheels,
            *self.generalizations,
            *self.aggregations,
            *self.instance_ofs,
        ]

    def add_concept(self, concept: ConceptSchema) -> None:
        """Register an additional concept schema (e.g. a wagon wheel view).

        Identifiers must stay unique across the decomposition.
        """
        if not isinstance(concept, ConceptSchema):
            raise SchemaError(
                f"not a concept schema: {type(concept).__name__!r}"
            )
        existing = {c.identifier for c in self.all_concepts()}
        if concept.identifier in existing:
            raise SchemaError(
                f"decomposition already has a concept schema "
                f"{concept.identifier!r}"
            )
        from repro.concepts.wagon_wheel import WagonWheel

        if isinstance(concept, WagonWheel):
            self.wagon_wheels.append(concept)
        elif isinstance(concept, GeneralizationHierarchy):
            self.generalizations.append(concept)
        elif isinstance(concept, AggregationHierarchy):
            self.aggregations.append(concept)
        elif isinstance(concept, InstanceOfHierarchy):
            self.instance_ofs.append(concept)
        else:
            raise SchemaError(
                f"unknown concept schema type {type(concept).__name__!r}"
            )

    def by_identifier(self, identifier: str) -> ConceptSchema:
        """Look a concept schema up by its ``ww:Type``-style identifier."""
        for concept in self.all_concepts():
            if concept.identifier == identifier:
                return concept
        raise SchemaError(
            f"decomposition of {self.schema_name!r} has no concept schema "
            f"{identifier!r}"
        )

    def of_kind(self, kind: ConceptKind) -> list[ConceptSchema]:
        """All concept schemas of one kind."""
        return [c for c in self.all_concepts() if c.kind is kind]

    def concepts_covering(self, type_name: str) -> list[ConceptSchema]:
        """Every concept schema in which *type_name* participates.

        The knowledge component uses this to warn the designer about
        interactions: a change made through one concept schema touches a
        type that other concept schemas also present.
        """
        return [c for c in self.all_concepts() if c.covers_type(type_name)]

    def summary(self) -> str:
        """Multi-line listing of every concept schema."""
        lines = [f"decomposition of {self.schema_name}:"]
        lines.extend("  " + c.describe() for c in self.all_concepts())
        return "\n".join(lines)


def decompose(schema: Schema) -> Decomposition:
    """Extract the initial concept schemas of *schema*.

    One wagon wheel per object type guarantees full coverage; hierarchy
    concept schemas add the integrated generalization / aggregation /
    instance-of points of view wherever those structures exist.
    """
    return Decomposition(
        schema_name=schema.name,
        wagon_wheels=extract_all_wagon_wheels(schema),
        generalizations=extract_all_generalization_hierarchies(schema),
        aggregations=extract_all_aggregation_hierarchies(schema),
        instance_ofs=extract_all_instance_of_hierarchies(schema),
    )


def reconstruct(decomposition: Decomposition, name: str | None = None) -> Schema:
    """Union the concept schemas back into a global schema.

    Wagon wheels contribute each focal type's complete interface
    definition (instance properties, extent, keys); generalization
    hierarchies contribute the ISA links.  Because every object type has
    a wagon wheel and every ISA edge lies in the hierarchy of its root,
    the union equals the decomposed schema exactly (the paper's
    Section 3.3.1 property).
    """
    schema = Schema(name or decomposition.schema_name)
    for wheel in decomposition.wagon_wheels:
        if wheel.focal_interface is None:
            raise SchemaError(
                f"wagon wheel {wheel.identifier} carries no interface; "
                "cannot reconstruct"
            )
        if wheel.focal in schema:
            _merge_interface(schema.get(wheel.focal), wheel.focal_interface)
        else:
            # Stays an eager copy: the next line mutates ``supertypes``
            # by direct assignment (no mutator, no CoW barrier), which
            # would corrupt a shared wheel interface silently.
            contribution = wheel.focal_interface.copy()
            contribution.supertypes = []  # ISA comes from the hierarchies
            schema.add_interface(contribution)
    for hierarchy in decomposition.generalizations:
        for edge in hierarchy.edges:
            if edge.subtype not in schema:
                schema.add_interface(InterfaceDef(edge.subtype))
            if edge.supertype not in schema:
                schema.add_interface(InterfaceDef(edge.supertype))
            subtype = schema.get(edge.subtype)
            if edge.supertype not in subtype.supertypes:
                subtype.add_supertype(edge.supertype)
    return schema


def _merge_interface(existing: InterfaceDef, incoming: InterfaceDef) -> None:
    """Union a second wagon wheel's view of a type into *existing*.

    Several wheels may share a focal point ("different points of view of
    an object type [may] result in more than one concept schema having
    the same focal point"); their union must agree wherever they overlap.
    """
    if incoming.extent is not None:
        if existing.extent is not None and existing.extent != incoming.extent:
            raise SchemaError(
                f"conflicting extents for {existing.name!r}: "
                f"{existing.extent!r} vs {incoming.extent!r}"
            )
        existing.set_extent(incoming.extent)
    for key in incoming.keys:
        if key not in existing.keys:
            existing.add_key(key)
    for attr_name, attribute in incoming.attributes.items():
        if attr_name in existing.attributes:
            if existing.attributes[attr_name] != attribute:
                raise SchemaError(
                    f"conflicting definitions of {existing.name}.{attr_name}"
                )
        else:
            existing.add_attribute(attribute)
    for end_name, end in incoming.relationships.items():
        if end_name in existing.relationships:
            if existing.relationships[end_name] != end:
                raise SchemaError(
                    f"conflicting definitions of {existing.name}.{end_name}"
                )
        else:
            existing.add_relationship(end)
    for op_name, operation in incoming.operations.items():
        if op_name in existing.operations:
            if existing.operations[op_name] != operation:
                raise SchemaError(
                    f"conflicting definitions of {existing.name}.{op_name}()"
                )
        else:
            existing.add_operation(operation)
