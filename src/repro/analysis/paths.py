"""Relationship paths between object types.

A designer reading an unfamiliar shrink wrap schema often asks "how is X
related to Y?" -- the wagon wheel shows distance one, but longer chains
span several concept schemas.  :func:`find_path` answers with the
shortest chain of relationship traversals and ISA links connecting two
object types, and :func:`render_path` verbalises it.

The designer CLI exposes this as ``relate <X> <Y>``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema


@dataclass(frozen=True, slots=True)
class PathStep:
    """One hop of a relationship path."""

    source: str
    target: str
    label: str
    kind: str  # "relationship" | "part_of" | "instance_of" | "isa" | "inherits"

    def describe(self) -> str:
        if self.kind == "isa":
            return f"{self.source} is a kind of {self.target}"
        if self.kind == "inherits":
            return f"{self.target} is a kind of {self.source}"
        connector = {
            "relationship": "relates to",
            "part_of": "has part / is part of",
            "instance_of": "is instance-of-linked to",
        }[self.kind]
        return f"{self.source} {connector} {self.target} via {self.label}"


_KIND_LABEL = {
    RelationshipKind.ASSOCIATION: "relationship",
    RelationshipKind.PART_OF: "part_of",
    RelationshipKind.INSTANCE_OF: "instance_of",
}


def _edges(schema: Schema, follow_isa: bool) -> dict[str, list[PathStep]]:
    adjacency: dict[str, list[PathStep]] = {
        name: [] for name in schema.type_names()
    }
    for owner, end in schema.relationship_pairs():
        if end.target_type in adjacency:
            adjacency[owner].append(
                PathStep(owner, end.target_type, end.name,
                         _KIND_LABEL[end.kind])
            )
    if follow_isa:
        for interface in schema:
            for supertype in interface.supertypes:
                if supertype in adjacency:
                    adjacency[interface.name].append(
                        PathStep(interface.name, supertype, "ISA", "isa")
                    )
                    adjacency[supertype].append(
                        PathStep(supertype, interface.name, "ISA", "inherits")
                    )
    return adjacency


def find_path(
    schema: Schema, source: str, target: str, follow_isa: bool = True
) -> list[PathStep] | None:
    """Shortest relationship path from *source* to *target*.

    Relationship ends are directed by their declarations, but every
    relationship is declared in both participants, so connectivity is
    effectively symmetric.  With ``follow_isa`` set (the default),
    generalization links may be traversed in both directions --
    a Student reaches a Course_Offering either directly (takes) or
    through Person/Faculty (teaches).  Returns ``None`` when no path
    exists; an empty list when source and target coincide.
    """
    schema.get(source)
    schema.get(target)
    if source == target:
        return []
    adjacency = _edges(schema, follow_isa)
    frontier: deque[str] = deque([source])
    parents: dict[str, PathStep] = {}
    seen = {source}
    while frontier:
        current = frontier.popleft()
        for step in adjacency[current]:
            if step.target in seen:
                continue
            parents[step.target] = step
            if step.target == target:
                return _reconstruct(parents, source, target)
            seen.add(step.target)
            frontier.append(step.target)
    return None


def _reconstruct(
    parents: dict[str, PathStep], source: str, target: str
) -> list[PathStep]:
    path: list[PathStep] = []
    current = target
    while current != source:
        step = parents[current]
        path.append(step)
        current = step.source
    path.reverse()
    return path


def render_path(path: list[PathStep] | None, source: str, target: str) -> str:
    """Verbalise a path result for the designer."""
    if path is None:
        return f"{source} and {target} are not connected"
    if not path:
        return f"{source} is {target}"
    lines = [f"{source} reaches {target} in {len(path)} step(s):"]
    lines.extend(f"  {step.describe()}" for step in path)
    return "\n".join(lines)
