"""Unit tests for the text renderers."""

import pytest

from repro.concepts.decompose import decompose
from repro.designer.render import (
    concept_listing,
    render_aggregation,
    render_concept,
    render_generalization,
    render_instance_of,
    render_object_graph,
    render_wagon_wheel,
    to_dot,
)


class TestConceptRenderers:
    def test_wagon_wheel_lists_spokes(self, university):
        wheel = decompose(university).by_identifier("ww:Course_Offering")
        rendered = render_wagon_wheel(wheel)
        assert "wagon wheel: Course_Offering" in rendered
        assert "Syllabus" in rendered
        assert "room" in rendered

    def test_wagon_wheel_shows_instance_of_spoke(self, university):
        wheel = decompose(university).by_identifier("ww:Course_Offering")
        rendered = render_wagon_wheel(wheel)
        assert "..offering_of[1]--> Course" in rendered

    def test_generalization_tree_indentation(self, university):
        hierarchy = decompose(university).by_identifier("gh:Person")
        rendered = render_generalization(hierarchy)
        lines = rendered.splitlines()
        person = next(l for l in lines if l.strip() == "Person")
        student = next(l for l in lines if l.strip() == "Student")
        masters = next(l for l in lines if l.strip() == "Masters")
        assert len(student) - len(student.lstrip()) > len(person) - len(
            person.lstrip()
        )
        assert len(masters) > len(student)

    def test_aggregation_bom(self, house):
        hierarchy = decompose(house).by_identifier("ah:House")
        rendered = render_aggregation(hierarchy)
        assert "<> House" in rendered
        assert "<> Shingle" in rendered

    def test_instance_of_chain(self, software):
        hierarchy = decompose(software).by_identifier("ih:Application")
        rendered = render_instance_of(hierarchy)
        assert (
            "Application ..> Application_Version ..> Compiled_Version "
            "..> Installed_Version" in rendered
        )

    def test_render_concept_dispatch(self, university):
        for concept in decompose(university).all_concepts():
            assert render_concept(concept)

    def test_render_concept_rejects_unknown(self):
        with pytest.raises(TypeError):
            render_concept(object())  # type: ignore[arg-type]

    def test_concept_listing_groups_by_kind(self, university):
        listing = concept_listing(decompose(university).all_concepts())
        assert "wagon wheel concept schemas:" in listing
        assert "generalization hierarchy concept schemas:" in listing


class TestGraphRenderers:
    def test_object_graph_lists_each_pair_once(self, small):
        rendered = render_object_graph(small)
        assert rendered.count("staff") + rendered.count("works_in") == 1

    def test_object_graph_shows_isa(self, small):
        assert "ISA Person" in render_object_graph(small)

    def test_dot_output_is_well_formed(self, house):
        dot = to_dot(house)
        assert dot.startswith('digraph "lumber_yard" {')
        assert dot.rstrip().endswith("}")
        assert '"House"' in dot
        assert "arrowtail=diamond" in dot  # part-of styling

    def test_dot_isa_styling(self, small):
        assert "arrowhead=empty" in to_dot(small)

    def test_dot_instance_of_styling(self, software):
        assert "style=dashed" in to_dot(software)
