"""Unit tests for the ODL tokenizer (repro.odl.lexer)."""

import pytest

from repro.odl.lexer import (
    END,
    IDENT,
    NUMBER,
    PUNCT,
    OdlSyntaxError,
    TokenStream,
    tokenize,
)


def token_values(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type != END]


class TestTokenize:
    def test_identifiers_and_punctuation(self):
        assert token_values("interface A { };") == [
            (IDENT, "interface"), (IDENT, "A"),
            (PUNCT, "{"), (PUNCT, "}"), (PUNCT, ";"),
        ]

    def test_numbers(self):
        assert token_values("string(30)") == [
            (IDENT, "string"), (PUNCT, "("), (NUMBER, "30"), (PUNCT, ")"),
        ]

    def test_double_colon(self):
        assert token_values("A::b") == [
            (IDENT, "A"), (PUNCT, "::"), (IDENT, "b"),
        ]

    def test_single_colon(self):
        assert token_values("A : B") == [
            (IDENT, "A"), (PUNCT, ":"), (IDENT, "B"),
        ]

    def test_line_comment_skipped(self):
        assert token_values("a // comment\n b") == [(IDENT, "a"), (IDENT, "b")]

    def test_block_comment_skipped(self):
        assert token_values("a /* x\ny */ b") == [(IDENT, "a"), (IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(OdlSyntaxError):
            list(tokenize("a /* never closed"))

    def test_unexpected_character(self):
        with pytest.raises(OdlSyntaxError) as info:
            list(tokenize("a @ b"))
        assert "@" in str(info.value)

    def test_positions(self):
        tokens = list(tokenize("a\n  b"))
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_underscore_identifiers(self):
        assert token_values("works_in_a _x") == [
            (IDENT, "works_in_a"), (IDENT, "_x"),
        ]

    def test_ends_with_end_token(self):
        tokens = list(tokenize("a"))
        assert tokens[-1].type == END


class TestTokenStream:
    def test_expect_ident(self):
        stream = TokenStream("interface A")
        assert stream.expect_ident("interface").value == "interface"
        assert stream.expect_ident().value == "A"

    def test_expect_ident_failure_mentions_position(self):
        stream = TokenStream("123")
        with pytest.raises(OdlSyntaxError) as info:
            stream.expect_ident()
        assert "line 1" in str(info.value)

    def test_expect_punct(self):
        stream = TokenStream("{ }")
        stream.expect_punct("{")
        with pytest.raises(OdlSyntaxError):
            stream.expect_punct(";")

    def test_accept(self):
        stream = TokenStream(", x")
        assert stream.accept_punct(",")
        assert not stream.accept_punct(",")
        assert stream.accept_ident("x")

    def test_peek_does_not_consume(self):
        stream = TokenStream("a b")
        assert stream.peek().value == "b"
        assert stream.current.value == "a"

    def test_peek_clamps_at_end(self):
        stream = TokenStream("a")
        assert stream.peek(10).type == END

    def test_expect_number(self):
        assert TokenStream("42").expect_number() == 42
        with pytest.raises(OdlSyntaxError):
            TokenStream("x").expect_number()

    def test_expect_end(self):
        stream = TokenStream("a")
        stream.advance()
        stream.expect_end()
        with pytest.raises(OdlSyntaxError):
            TokenStream("a b").expect_end()
