"""Unit tests for interface definitions (repro.model.interface)."""

import pytest

from repro.model.attributes import Attribute
from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    UnknownPropertyError,
)
from repro.model.interface import InterfaceDef
from repro.model.operations import Operation
from repro.model.relationships import association
from repro.model.types import VOID, named, scalar, set_of


@pytest.fixture
def interface() -> InterfaceDef:
    result = InterfaceDef("Employee", supertypes=["Person"])
    result.add_attribute(Attribute("name", scalar("string", 30)))
    result.add_relationship(
        association("works_in", named("Department"), "Department", "has")
    )
    result.add_operation(Operation("display", VOID))
    return result


class TestConstruction:
    def test_bad_name_rejected(self):
        with pytest.raises(InvalidModelError):
            InterfaceDef("")

    def test_duplicate_supertypes_rejected(self):
        with pytest.raises(InvalidModelError):
            InterfaceDef("A", supertypes=["B", "B"])

    def test_str(self, interface):
        assert str(interface) == "interface Employee : Person"


class TestSupertypes:
    def test_add_supertype(self, interface):
        interface.add_supertype("Worker")
        assert interface.supertypes == ["Person", "Worker"]

    def test_self_supertype_rejected(self, interface):
        with pytest.raises(InvalidModelError):
            interface.add_supertype("Employee")

    def test_duplicate_supertype_rejected(self, interface):
        with pytest.raises(DuplicateNameError):
            interface.add_supertype("Person")

    def test_remove_supertype(self, interface):
        interface.remove_supertype("Person")
        assert interface.supertypes == []

    def test_remove_missing_supertype(self, interface):
        with pytest.raises(UnknownPropertyError):
            interface.remove_supertype("Worker")


class TestKeys:
    def test_add_and_remove(self, interface):
        interface.add_key(("name",))
        assert ("name",) in interface.keys
        interface.remove_key(("name",))
        assert interface.keys == []

    def test_compound_key(self, interface):
        interface.add_key(("name", "id"))
        assert interface.keys == [("name", "id")]

    def test_empty_key_rejected(self, interface):
        with pytest.raises(InvalidModelError):
            interface.add_key(())

    def test_duplicate_key_rejected(self, interface):
        interface.add_key(("name",))
        with pytest.raises(DuplicateNameError):
            interface.add_key(("name",))

    def test_remove_missing_key(self, interface):
        with pytest.raises(UnknownPropertyError):
            interface.remove_key(("ghost",))


class TestAttributes:
    def test_get(self, interface):
        assert interface.get_attribute("name").size == 30

    def test_get_missing(self, interface):
        with pytest.raises(UnknownPropertyError):
            interface.get_attribute("ghost")

    def test_duplicate_name_rejected(self, interface):
        with pytest.raises(DuplicateNameError):
            interface.add_attribute(Attribute("name", scalar("long")))

    def test_attribute_clashing_with_relationship_rejected(self, interface):
        with pytest.raises(DuplicateNameError):
            interface.add_attribute(Attribute("works_in", scalar("long")))

    def test_remove_returns_value(self, interface):
        removed = interface.remove_attribute("name")
        assert removed.name == "name"
        assert "name" not in interface.attributes

    def test_replace(self, interface):
        old = interface.replace_attribute(Attribute("name", scalar("string", 60)))
        assert old.size == 30
        assert interface.get_attribute("name").size == 60

    def test_replace_missing(self, interface):
        with pytest.raises(UnknownPropertyError):
            interface.replace_attribute(Attribute("ghost", scalar("long")))


class TestRelationships:
    def test_get(self, interface):
        assert interface.get_relationship("works_in").target_type == "Department"

    def test_relationship_clashing_with_attribute_rejected(self, interface):
        with pytest.raises(DuplicateNameError):
            interface.add_relationship(
                association("name", named("Department"), "Department", "x")
            )

    def test_remove_and_missing(self, interface):
        interface.remove_relationship("works_in")
        with pytest.raises(UnknownPropertyError):
            interface.get_relationship("works_in")

    def test_replace(self, interface):
        updated = interface.get_relationship("works_in").with_target_type(
            "Division"
        )
        old = interface.replace_relationship(updated)
        assert old.target_type == "Department"
        assert interface.get_relationship("works_in").target_type == "Division"


class TestOperations:
    def test_get(self, interface):
        assert interface.get_operation("display").name == "display"

    def test_duplicate_rejected(self, interface):
        with pytest.raises(DuplicateNameError):
            interface.add_operation(Operation("display", VOID))

    def test_operation_may_share_name_with_attribute(self, interface):
        # Operations live in their own namespace (signatures are
        # syntactically distinct from properties in ODL).
        interface.add_operation(Operation("name", scalar("string", 30)))
        assert "name" in interface.operations

    def test_remove_and_missing(self, interface):
        interface.remove_operation("display")
        with pytest.raises(UnknownPropertyError):
            interface.remove_operation("display")


class TestQueries:
    def test_referenced_type_names(self, interface):
        names = interface.referenced_type_names()
        assert names == {"Person", "Department"}

    def test_referenced_types_include_signatures(self):
        target = InterfaceDef("A")
        target.add_operation(Operation("f", named("B")))
        assert target.referenced_type_names() == {"B"}

    def test_referenced_types_include_collection_attributes(self):
        target = InterfaceDef("A")
        target.add_attribute(Attribute("xs", set_of("C")))
        assert target.referenced_type_names() == {"C"}

    def test_copy_is_independent(self, interface):
        duplicate = interface.copy()
        duplicate.remove_attribute("name")
        duplicate.supertypes.append("Extra")
        assert "name" in interface.attributes
        assert interface.supertypes == ["Person"]
