"""Tests for the business-objects catalog schema (Section 5 application)."""

from repro.analysis.paths import find_path
from repro.analysis.similarity import schema_affinity
from repro.catalog import business_schema, load
from repro.concepts.decompose import decompose
from repro.repository.repository import SchemaRepository
from repro.ops.language import parse_script


class TestBusinessSchema:
    def test_valid_and_loadable(self):
        schema = load("business_objects")
        schema.validate()
        assert len(schema) == 10

    def test_exercises_every_construct_kind(self):
        stats = business_schema().stats()
        assert stats["supertype_links"] > 0
        assert stats["part_of_links"] == 1
        assert stats["instance_of_links"] == 1
        assert stats["operations"] == 2

    def test_decomposition_shape(self):
        decomposition = decompose(business_schema())
        assert [h.root for h in decomposition.generalizations] == ["Party"]
        assert [h.root for h in decomposition.aggregations] == ["Order"]
        assert [h.root for h in decomposition.instance_ofs] == ["Product"]

    def test_everything_connected(self):
        schema = business_schema()
        for name in schema.type_names():
            assert find_path(schema, "Order", name) is not None, name


class TestInteroperationScenario:
    """Section 5: two systems built from the business shrink wrap schema
    interoperate through their common objects."""

    def test_two_derivations_share_common_objects(self):
        storefront = SchemaRepository(
            business_schema(), custom_name="storefront"
        )
        for operation in parse_script(
            """
            delete_type_definition(Invoice)
            add_attribute(Customer, string(40), email)
            """
        ):
            storefront.apply(operation)
        warehouse = SchemaRepository(
            business_schema(), custom_name="warehouse"
        )
        for operation in parse_script(
            """
            delete_type_definition(Catalogue_Item)
            add_attribute(Product, long, stock_level)
            """
        ):
            warehouse.apply(operation)
        first = {e.path for e in storefront.generate_mapping().corresponding()}
        second = {e.path for e in warehouse.generate_mapping().corresponding()}
        shared = first & second
        # The order machinery is a common object of both derived systems.
        assert {"Order", "Order.number", "Line_Item.quantity",
                "Product.sku"} <= shared
        assert "Invoice.invoice_number" not in shared
        assert "Catalogue_Item.catalogue_code" not in shared

    def test_derived_schemas_stay_similar(self):
        storefront = SchemaRepository(business_schema(), custom_name="a")
        storefront.apply(
            parse_script("delete_type_definition(Invoice)")[0]
        )
        affinity = schema_affinity(
            business_schema(), storefront.generate_custom_schema()
        )
        assert affinity > 0.8
