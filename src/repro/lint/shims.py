"""Shared backend for the thin ``tools/check_*.py`` shims.

The legacy entry points survive for muscle memory and external scripts,
but all analysis now lives in the registered lint passes; each shim
boots ``sys.path`` (the one thing it cannot delegate) and calls
:func:`run_shim`, which runs the matching pass subset through the
framework and prints the unified finding report plus the legacy success
line existing tests and workflows grep for.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.lint.findings import Baseline, render_text
from repro.lint.loader import DEFAULT_SRC, Codebase
from repro.lint.registry import LintContext, run_passes

DEFAULT_BASELINE = DEFAULT_SRC.parent / "tools" / "lint_baseline.txt"

#: shim name -> (pass ids, legacy success line builder)
_SHIMS = {
    "check_mutators": (
        ("spine",),
        lambda context: (
            "check_mutators: {count} public mutators all emit records and "
            "run the CoW barrier first; compiled-plan path mutates only via "
            "expand_applying".format(count=_mutator_count(context))
        ),
    ),
    "check_effects": (
        ("effects",),
        lambda context: (
            "check_effects: {count} operation classes declare every "
            "aspect their apply can mutate".format(count=_op_count())
        ),
    ),
}


def _mutator_count(context: LintContext) -> int:
    from repro.lint.passes.spine import EMISSION_TARGETS, count_public_mutators

    return sum(
        count_public_mutators(context.codebase, module, klass)
        for module, klass in EMISSION_TARGETS.items()
    )


def _op_count() -> int:
    from repro.ops.registry import OPERATION_CLASSES

    return len(OPERATION_CLASSES)


def run_shim(name: str) -> int:
    """Run the passes behind one legacy shim; 0 iff no new finding."""
    passes, success_line = _SHIMS[name]
    codebase = Codebase.load()
    context = LintContext(codebase=codebase, src_root=DEFAULT_SRC)
    findings, _reports = run_passes(context, only=passes)
    baseline = Baseline.load(DEFAULT_BASELINE)
    new, baselined, stale = baseline.split(findings)
    if new or baseline.errors:
        print(
            render_text(new, baselined, stale, [], baseline.errors),
            file=sys.stderr,
        )
        return 1
    print(success_line(context))
    return 0


def bootstrap_path() -> Path:
    """The ``src`` directory the shims insert on ``sys.path``."""
    return DEFAULT_SRC
