"""Instance-of hierarchy concept schemas.

"There is a benefit to viewing a sequence of several instance-of
relationships between object types as a concept schema."  The paper's
example (Figure 6) is the EMSL software-version chain: Application ->
Version -> Compiled Version -> Installed Version.  "In our experience,
the instance-of hierarchy has been linear with no branches.  However, we
are not claiming that a branched structure is not possible."
(Section 3.3.4)

One concept schema is extracted per instance-of *root* -- a generic
entity that is not itself an instance of anything.  Branching is
supported; :meth:`InstanceOfHierarchy.is_linear` reports whether the
common linear shape holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind, ConceptSchema
from repro.model.schema import Schema


@dataclass(frozen=True)
class InstanceEdge:
    """One generic -> instance link, named by the to-instances path."""

    generic: str
    instance: str
    path_name: str

    def describe(self) -> str:
        return f"{self.instance} instance-of {self.generic} (via {self.path_name})"


@dataclass(frozen=True)
class InstanceOfHierarchy(ConceptSchema):
    """A rooted sequence (or tree) of instance-of links."""

    edges: tuple[InstanceEdge, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", ConceptKind.INSTANCE_OF)

    @property
    def root(self) -> str:
        """The most generic entity of the chain (alias of ``anchor``)."""
        return self.anchor

    def instances_of(self, generic: str) -> list[str]:
        """Direct instance types of *generic* within this hierarchy."""
        return [e.instance for e in self.edges if e.generic == generic]

    def is_linear(self) -> bool:
        """True when the hierarchy is a simple chain (the common case)."""
        return all(
            len(self.instances_of(member)) <= 1 for member in self.members
        )

    def chain(self) -> list[str]:
        """Root-first member sequence for a linear hierarchy.

        Raises ``ValueError`` when the hierarchy branches; callers should
        check :meth:`is_linear` first.
        """
        if not self.is_linear():
            raise ValueError(
                f"instance-of hierarchy {self.identifier} branches; "
                "it has no single chain"
            )
        sequence = [self.root]
        seen = {self.root}
        while True:
            nexts = [
                n for n in self.instances_of(sequence[-1]) if n not in seen
            ]
            if not nexts:
                return sequence
            sequence.append(nexts[0])
            seen.add(nexts[0])


def extract_instance_of_hierarchy(
    schema: Schema, root: str
) -> InstanceOfHierarchy:
    """Extract the instance-of hierarchy rooted at *root*."""
    schema.get(root)  # raise early on unknown types
    members = {root}
    frontier = [root]
    edges: list[InstanceEdge] = []
    instance_edges = schema.instance_of_edges()
    while frontier:
        generic = frontier.pop()
        for edge_generic, instance, end in instance_edges:
            if edge_generic != generic:
                continue
            edges.append(InstanceEdge(generic, instance, end.name))
            if instance not in members:
                members.add(instance)
                frontier.append(instance)
    return InstanceOfHierarchy(
        anchor=root, members=frozenset(members), edges=tuple(edges)
    )


def extract_all_instance_of_hierarchies(
    schema: Schema,
) -> list[InstanceOfHierarchy]:
    """One hierarchy per instance-of root, in declaration order."""
    return [
        extract_instance_of_hierarchy(schema, root)
        for root in schema.instance_of_roots()
    ]
