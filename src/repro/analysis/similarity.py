"""Schema similarity metrics for the ACEDB family study (Section 4).

The paper examines "the common classes in the three schemas to determine
the similarity of the system schemas" and observes that "the object
types have the same name and further study of the type definitions
reveals that much of the structure is the same."  These metrics put
numbers on that observation, in the spirit of the *semantic affinity*
measure of Castano et al. that the related-work section discusses:

* :func:`name_affinity` -- Jaccard similarity of the type-name sets;
* :func:`type_affinity` -- structural similarity of two same-named
  types (shared attributes / relationships / operations / supertypes);
* :func:`schema_affinity` -- name affinity combined with the mean
  structural affinity of the shared types.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.interface import InterfaceDef
from repro.model.schema import Schema


def _jaccard(first: set, second: set) -> float:
    """Jaccard similarity; two empty sets count as identical."""
    if not first and not second:
        return 1.0
    return len(first & second) / len(first | second)


def name_affinity(first: Schema, second: Schema) -> float:
    """Jaccard similarity of the two schemas' type-name sets."""
    return _jaccard(set(first.type_names()), set(second.type_names()))


def type_affinity(first: InterfaceDef, second: InterfaceDef) -> float:
    """Structural similarity of two (usually same-named) types.

    The mean of four Jaccard scores: attribute names, relationship
    traversal paths, operation names, and supertype names.  1.0 means
    structurally identical property sets (values may still differ).
    """
    scores = [
        _jaccard(set(first.attributes), set(second.attributes)),
        _jaccard(set(first.relationships), set(second.relationships)),
        _jaccard(set(first.operations), set(second.operations)),
        _jaccard(set(first.supertypes), set(second.supertypes)),
    ]
    return sum(scores) / len(scores)


@dataclass(frozen=True, slots=True)
class AffinityReport:
    """Similarity of two schemas, with per-shared-type detail."""

    first_name: str
    second_name: str
    name_affinity: float
    shared_types: tuple[str, ...]
    type_affinities: tuple[tuple[str, float], ...]

    @property
    def mean_type_affinity(self) -> float:
        """Mean structural affinity over the shared types."""
        if not self.type_affinities:
            return 0.0
        return sum(score for _, score in self.type_affinities) / len(
            self.type_affinities
        )

    @property
    def schema_affinity(self) -> float:
        """Equal-weight combination of name and structural affinity."""
        return (self.name_affinity + self.mean_type_affinity) / 2

    def render(self) -> str:
        """Multi-line affinity report."""
        lines = [
            f"affinity {self.first_name!r} vs {self.second_name!r}:",
            f"  shared types ({len(self.shared_types)}): "
            + ", ".join(self.shared_types),
            f"  name affinity:       {self.name_affinity:.3f}",
            f"  mean type affinity:  {self.mean_type_affinity:.3f}",
            f"  schema affinity:     {self.schema_affinity:.3f}",
        ]
        for type_name, score in self.type_affinities:
            lines.append(f"    {type_name:20s} {score:.3f}")
        return "\n".join(lines)


def affinity_report(first: Schema, second: Schema) -> AffinityReport:
    """Compute the full affinity report between two schemas."""
    shared = tuple(
        name for name in first.type_names() if name in second.interfaces
    )
    type_affinities = tuple(
        (name, type_affinity(first.get(name), second.get(name)))
        for name in shared
    )
    return AffinityReport(
        first_name=first.name,
        second_name=second.name,
        name_affinity=name_affinity(first, second),
        shared_types=shared,
        type_affinities=type_affinities,
    )


def schema_affinity(first: Schema, second: Schema) -> float:
    """Shorthand for ``affinity_report(...).schema_affinity``."""
    return affinity_report(first, second).schema_affinity


def affinity_matrix(schemas: list[Schema]) -> list[list[float]]:
    """Pairwise schema affinities (symmetric, 1.0 on the diagonal)."""
    matrix = []
    for row_schema in schemas:
        row = []
        for col_schema in schemas:
            if row_schema is col_schema:
                row.append(1.0)
            else:
                row.append(schema_affinity(row_schema, col_schema))
        matrix.append(row)
    return matrix
