"""Concept schemas: the paper's decomposition of shrink wrap schemas.

Four generic structure patterns (Section 3.3) -- wagon wheel,
generalization hierarchy, aggregation hierarchy, instance-of hierarchy --
plus the decomposition algorithm and its union-reconstruction inverse.
"""

from repro.concepts.aggregation import (
    AggregationHierarchy,
    PartEdge,
    aggregation_roots_with_constructors,
    constructor_edges,
    extract_aggregation_hierarchy,
    extract_all_aggregation_hierarchies,
)
from repro.concepts.base import ConceptKind, ConceptSchema
from repro.concepts.decompose import Decomposition, decompose, reconstruct
from repro.concepts.generalization import (
    GeneralizationHierarchy,
    IsaEdge,
    extract_all_generalization_hierarchies,
    extract_generalization_hierarchy,
)
from repro.concepts.instance_of import (
    InstanceEdge,
    InstanceOfHierarchy,
    extract_all_instance_of_hierarchies,
    extract_instance_of_hierarchy,
)
from repro.concepts.wagon_wheel import (
    Spoke,
    WagonWheel,
    extract_all_wagon_wheels,
    extract_wagon_wheel,
    extract_wagon_wheel_view,
)

__all__ = [
    "AggregationHierarchy",
    "ConceptKind",
    "ConceptSchema",
    "Decomposition",
    "GeneralizationHierarchy",
    "InstanceEdge",
    "InstanceOfHierarchy",
    "IsaEdge",
    "PartEdge",
    "Spoke",
    "WagonWheel",
    "aggregation_roots_with_constructors",
    "constructor_edges",
    "decompose",
    "extract_aggregation_hierarchy",
    "extract_all_aggregation_hierarchies",
    "extract_all_generalization_hierarchies",
    "extract_all_instance_of_hierarchies",
    "extract_all_wagon_wheels",
    "extract_generalization_hierarchy",
    "extract_instance_of_hierarchy",
    "extract_wagon_wheel",
    "extract_wagon_wheel_view",
    "reconstruct",
]
