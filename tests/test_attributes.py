"""Unit tests for attributes (repro.model.attributes)."""

import pytest

from repro.model.attributes import Attribute
from repro.model.errors import InvalidModelError
from repro.model.types import named, scalar, set_of


class TestConstruction:
    def test_basic(self):
        attribute = Attribute("name", scalar("string", 30))
        assert attribute.name == "name"
        assert attribute.size == 30

    def test_unsized_scalar_has_no_size(self):
        assert Attribute("id", scalar("long")).size is None

    def test_named_type_has_no_size(self):
        assert Attribute("home", named("Address")).size is None

    def test_collection_attribute(self):
        attribute = Attribute("tags", set_of("string"))
        assert str(attribute) == "attribute set<string> tags"

    def test_void_rejected(self):
        with pytest.raises(InvalidModelError):
            Attribute("x", scalar("void"))

    def test_bad_name_rejected(self):
        with pytest.raises(InvalidModelError):
            Attribute("9lives", scalar("long"))

    def test_non_type_rejected(self):
        with pytest.raises(InvalidModelError):
            Attribute("x", "string")  # type: ignore[arg-type]

    def test_underscore_name_allowed(self):
        assert Attribute("_internal", scalar("long")).name == "_internal"


class TestFunctionalUpdates:
    def test_with_type_returns_new_object(self):
        original = Attribute("name", scalar("string", 30))
        updated = original.with_type(scalar("string", 60))
        assert original.size == 30
        assert updated.size == 60

    def test_with_size(self):
        original = Attribute("name", scalar("string", 30))
        assert original.with_size(10).size == 10

    def test_with_size_to_none(self):
        original = Attribute("name", scalar("string", 30))
        assert original.with_size(None).size is None

    def test_with_size_on_named_type_rejected(self):
        with pytest.raises(InvalidModelError):
            Attribute("home", named("Address")).with_size(4)

    def test_str_rendering(self):
        assert (
            str(Attribute("name", scalar("string", 30)))
            == "attribute string(30) name"
        )
