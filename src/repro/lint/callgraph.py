"""Transitive call-graph resolution over :class:`~repro.lint.loader.Codebase`.

This generalises the machinery ``tools/check_mutators.py`` and
``tools/check_effects.py`` each reimplemented: same-class method calls
resolved over the (static) MRO, module-level helpers and imported
functions resolved through the import table, and nested closures (undo
lambdas, local ``def``\\ s) covered by walking the whole function
subtree.  On top of the exact cases the old scripts handled it adds two
resolution channels the new passes need:

* **annotation typing** -- ``def f(schema: Schema)`` makes
  ``schema.get(...)`` resolve to ``Schema.get``;
* **unique-name fallback** -- within a configured *method universe*
  (e.g. ``{"Schema", "InterfaceDef"}``), an attribute call whose name is
  defined by universe classes resolves to every defining class, a
  conservative over-approximation for untyped receivers.

Class instantiations are deliberately *not* descended: ``Schema(...)``
wires caches up in ``__post_init__``, and every pass here cares about
what code *queries*, not what it constructs.  Passes that need stricter
treatment collect the instantiated names separately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.loader import Codebase, ModuleInfo


@dataclass(frozen=True)
class FuncRef:
    """A resolved function or method: ``module`` + dotted ``qualname``."""

    module: str
    qualname: str  # "function" or "Class.method"
    node: ast.FunctionDef = field(compare=False, hash=False, repr=False)

    @property
    def class_name(self) -> str | None:
        if "." in self.qualname:
            return self.qualname.split(".", 1)[0]
        return None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def key(self) -> tuple[str, str]:
        return (self.module, self.qualname)


@dataclass(frozen=True)
class CallSite:
    """One call expression and everything it statically resolves to."""

    call: ast.Call = field(compare=False, hash=False, repr=False)
    name: str | None  #: bare callee name (Name id or Attribute attr)
    targets: tuple[FuncRef, ...]  #: resolved callees (empty if opaque)
    is_instantiation: bool = False


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def call_name(call: ast.Call) -> str | None:
    """Bare name of a call target (``f(...)`` or ``x.f(...)`` -> ``f``)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def attribute_reads(node: ast.AST) -> list[tuple[str, int]]:
    """Load-context attribute accesses, excluding method-call heads.

    ``interface.keys`` counts; ``interface.keys()`` and ``d.keys()`` do
    not -- the callee head is a method reference, not a field read.
    """
    call_heads = {
        id(child.func) for child in ast.walk(node) if isinstance(child, ast.Call)
    }
    reads: list[tuple[str, int]] = []
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.ctx, ast.Load)
            and id(child) not in call_heads
        ):
            reads.append((child.attr, child.lineno))
    return reads


#: container methods that mutate their receiver in place
MUTATING_CONTAINER_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    }
)


def attribute_writes(
    node: ast.AST,
) -> list[tuple[ast.AST, ast.expr, str, str]]:
    """Every channel that stores through an attribute.

    Yields ``(stmt_node, receiver_expr, attr, channel)`` for:

    * ``x.attr = ...`` / ``x.attr += ...`` (channel ``"assign"``),
    * ``x.attr[k] = ...`` / ``del x.attr[k]`` (channel ``"subscript"``),
    * ``x.attr.append(...)`` etc. (channel ``"container-method"``),
    * ``del x.attr`` (channel ``"delete"``).
    """
    writes: list[tuple[ast.AST, ast.expr, str, str]] = []

    def record_target(stmt: ast.AST, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute):
            channel = "delete" if isinstance(target.ctx, ast.Del) else "assign"
            writes.append((stmt, target.value, target.attr, channel))
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            writes.append((stmt, target.value.value, target.value.attr, "subscript"))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record_target(stmt, element)

    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                record_target(child, target)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            record_target(child, child.target)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                record_target(child, target)
        elif isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in MUTATING_CONTAINER_METHODS and isinstance(
                child.func.value, ast.Attribute
            ):
                writes.append(
                    (
                        child,
                        child.func.value.value,
                        child.func.value.attr,
                        "container-method",
                    )
                )
    return writes


def _is_property(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in ("property", "cached_property"):
            return True
    return False


class CallGraph:
    """Resolve calls against a codebase; passes drive their own closures."""

    def __init__(
        self,
        codebase: Codebase,
        *,
        method_universe: Iterable[str] = (),
        opaque: Iterable[str] = (),
    ) -> None:
        self.codebase = codebase
        self.opaque = frozenset(opaque)
        #: method name -> [(module, class)] across the universe classes.
        #: Properties are excluded: ``x.index(...)`` is syntactically a
        #: call, which a property access never is, so resolving it to a
        #: ``@property`` (e.g. ``list.index`` hitting ``Schema.index``)
        #: would be a guaranteed misresolution.
        self._universe_methods: dict[str, list[tuple[str, str]]] = {}
        self._universe_sites: list[tuple[str, str]] = []
        for class_name in method_universe:
            for info, _node in codebase.find_class(class_name):
                self._universe_sites.append((info.name, class_name))
                for method, (_info, node) in codebase.mro_methods(
                    info.name, class_name
                ).items():
                    if _is_property(node):
                        continue
                    self._universe_methods.setdefault(method, []).append(
                        (info.name, class_name)
                    )

    # ------------------------------------------------------------------
    # reference constructors

    def function(self, module_name: str, func_name: str) -> FuncRef | None:
        info = self.codebase.module(module_name)
        if info is None:
            return None
        node = info.functions.get(func_name)
        if node is None:
            return None
        return FuncRef(module=module_name, qualname=func_name, node=node)

    def method(
        self, module_name: str, class_name: str, method_name: str
    ) -> FuncRef | None:
        methods = self.codebase.mro_methods(module_name, class_name)
        found = methods.get(method_name)
        if found is None:
            return None
        info, node = found
        return FuncRef(
            module=info.name, qualname=f"{class_name}.{method_name}", node=node
        )

    def methods_of(self, module_name: str, class_name: str) -> list[FuncRef]:
        return [
            FuncRef(module=info.name, qualname=f"{class_name}.{name}", node=node)
            for name, (info, node) in sorted(
                self.codebase.mro_methods(module_name, class_name).items()
            )
        ]

    # ------------------------------------------------------------------
    # call resolution

    def callees(self, ref: FuncRef) -> list[CallSite]:
        """Every call inside *ref* (nested closures included), resolved."""
        info = self.codebase.module(ref.module)
        if info is None:
            return []
        param_types = self._param_types(info, ref.node)
        sites: list[CallSite] = []
        for call in iter_calls(ref.node):
            sites.append(self._resolve_call(info, ref, call, param_types))
        return sites

    def _param_types(
        self, info: ModuleInfo, node: ast.FunctionDef
    ) -> dict[str, tuple[str, str]]:
        """Parameter name -> (module, class) from annotations."""
        types: dict[str, tuple[str, str]] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            class_name = self._annotation_class(arg.annotation)
            if class_name is None:
                continue
            site = self._class_site(info, class_name)
            if site is not None:
                types[arg.arg] = site
        return types

    @staticmethod
    def _annotation_class(annotation: ast.expr | None) -> str | None:
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            # forward reference: 'Schema' / "Schema | None" -> Schema
            text = annotation.value.split("|")[0].strip()
            return text if text.isidentifier() else None
        return None

    def _class_site(
        self, info: ModuleInfo, class_name: str
    ) -> tuple[str, str] | None:
        if class_name in info.classes:
            return (info.name, class_name)
        imported = info.imports.get(class_name)
        if imported is not None and imported[1] is not None:
            source = self.codebase.module(imported[0])
            if source is not None and imported[1] in source.classes:
                return (imported[0], imported[1])
        return None

    def _resolve_call(
        self,
        info: ModuleInfo,
        ref: FuncRef,
        call: ast.Call,
        param_types: dict[str, tuple[str, str]],
    ) -> CallSite:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(info, call, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(info, ref, call, func, param_types)
        return CallSite(call=call, name=None, targets=())

    def _resolve_name_call(
        self, info: ModuleInfo, call: ast.Call, name: str
    ) -> CallSite:
        if name in self.opaque:
            return CallSite(call=call, name=name, targets=())
        if name in info.functions:
            target = FuncRef(module=info.name, qualname=name, node=info.functions[name])
            return CallSite(call=call, name=name, targets=(target,))
        if name in info.classes:
            return CallSite(call=call, name=name, targets=(), is_instantiation=True)
        imported = info.imports.get(name)
        if imported is not None and imported[1] is not None:
            source = self.codebase.module(imported[0])
            if source is not None:
                if imported[1] in source.functions:
                    target = FuncRef(
                        module=source.name,
                        qualname=imported[1],
                        node=source.functions[imported[1]],
                    )
                    return CallSite(call=call, name=name, targets=(target,))
                if imported[1] in source.classes:
                    return CallSite(
                        call=call, name=name, targets=(), is_instantiation=True
                    )
        return CallSite(call=call, name=name, targets=())

    def _resolve_attr_call(
        self,
        info: ModuleInfo,
        ref: FuncRef,
        call: ast.Call,
        func: ast.Attribute,
        param_types: dict[str, tuple[str, str]],
    ) -> CallSite:
        name = func.attr
        if name in self.opaque:
            return CallSite(call=call, name=name, targets=())
        receiver = func.value
        # self.method(...) within a method: resolve over the own class MRO
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
            and ref.class_name is not None
        ):
            target = self.method(ref.module, ref.class_name, name)
            if target is not None:
                return CallSite(call=call, name=name, targets=(target,))
            return CallSite(call=call, name=name, targets=())
        # annotated parameter receivers: schema.get(...) with schema: Schema
        if isinstance(receiver, ast.Name) and receiver.id in param_types:
            mod_name, class_name = param_types[receiver.id]
            target = self.method(mod_name, class_name, name)
            if target is not None:
                return CallSite(call=call, name=name, targets=(target,))
        # Class.method(...) on an imported or local class name
        if isinstance(receiver, ast.Name):
            site = self._class_site(info, receiver.id)
            if site is not None:
                target = self.method(site[0], site[1], name)
                if target is not None:
                    return CallSite(call=call, name=name, targets=(target,))
        # untyped receiver: every universe class defining the method
        owners = self._universe_methods.get(name, [])
        targets = []
        for mod_name, class_name in owners:
            target = self.method(mod_name, class_name, name)
            if target is not None:
                targets.append(target)
        return CallSite(call=call, name=name, targets=tuple(targets))

    # ------------------------------------------------------------------
    # closures

    def closure(self, roots: Iterable[FuncRef]) -> dict[tuple[str, str], FuncRef]:
        """*roots* plus everything transitively resolvable from them."""
        reached: dict[tuple[str, str], FuncRef] = {}
        frontier = list(roots)
        while frontier:
            ref = frontier.pop()
            if ref.key in reached:
                continue
            reached[ref.key] = ref
            for site in self.callees(ref):
                frontier.extend(site.targets)
        return reached
