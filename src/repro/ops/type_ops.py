"""Interface-definition operations: add / delete whole object types.

Both operations are admissible in every concept schema type: wagon wheels
own most modifications, and the prose of Section 3.4 explicitly grants
adding/deleting object types to the generalization, aggregation, and
instance-of hierarchies as part of re-wiring them.

``delete_type_definition`` removes only the interface itself; the
cascading effects on the rest of the schema (relationship ends targeting
the type, supertype references, signature uses) are produced as explicit
follow-up operations by the propagation rules of
:mod:`repro.knowledge.propagation`, so the designer sees the full impact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concepts.base import ConceptKind
from repro.model.interface import InterfaceDef
from repro.model.mutation import ALL_ASPECTS, Aspect
from repro.model.schema import Schema
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    OperationContext,
    SchemaOperation,
    Undo,
)
from repro.ops.effects import WILDCARD

_ALL_KINDS = frozenset(ConceptKind)


@dataclass(frozen=True, eq=False)
class AddTypeDefinition(SchemaOperation):
    """``add_type_definition(typename)`` -- introduce a new object type."""

    op_name = "add_type_definition"
    touched_aspects = frozenset({Aspect.MEMBERSHIP})
    candidate = "Interface Definition"
    sub_candidate = "Type name"
    action = "add"
    admissible_in = _ALL_KINDS

    typename: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        if self.typename in schema:
            raise ConstraintViolation(
                f"type {self.typename!r} already exists in {schema.name!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.add_interface(InterfaceDef(self.typename))

        def undo() -> None:
            schema.remove_interface(self.typename)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename,)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def created_names(self) -> tuple[str, ...]:
        return (self.typename,)

    def required_names(self) -> tuple[str, ...]:
        return ()

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.MEMBERSHIP)})


@dataclass(frozen=True, eq=False)
class DeleteTypeDefinition(SchemaOperation):
    """``delete_type_definition(typename)`` -- remove an object type.

    The type must no longer be referenced anywhere else in the schema;
    run the operation through a :class:`~repro.repository.Workspace` with
    propagation enabled to have the referencing constructs removed first
    (and reported in the impact report).
    """

    op_name = "delete_type_definition"
    touched_aspects = frozenset({Aspect.MEMBERSHIP})
    candidate = "Interface Definition"
    sub_candidate = "Type name"
    action = "delete"
    admissible_in = _ALL_KINDS

    typename: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        schema.get(self.typename)
        users = self._referencing_types(schema)
        if users:
            raise ConstraintViolation(
                f"type {self.typename!r} is still referenced by "
                f"{', '.join(sorted(users))}; delete or re-wire those "
                "constructs first (propagation does this automatically)"
            )

    def _referencing_types(self, schema: Schema) -> set[str]:
        # Served by the index's incremental reverse-reference map:
        # O(|referencers|) instead of re-deriving every interface's
        # reference set (O(N * properties)) per validation.
        users = schema.index.referencers_of(self.typename)
        users.discard(self.typename)
        return users

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        position = schema.type_names().index(self.typename)
        removed = schema.remove_interface(self.typename)

        def undo() -> None:
            schema.add_interface(removed)
            _restore_position(schema, self.typename, position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename,)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def deleted_names(self) -> tuple[str, ...]:
        return (self.typename,)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # Bare, the op only removes the interface; under propagation its
        # cascades may rewrite any construct that referenced the type.
        return frozenset({(self.typename, Aspect.MEMBERSHIP)}) | frozenset(
            (WILDCARD, aspect) for aspect in ALL_ASPECTS
        )

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # The reference check scans every interface for uses of the name.
        return frozenset((WILDCARD, aspect) for aspect in ALL_ASPECTS)


def _restore_position(schema: Schema, name: str, position: int) -> None:
    """Re-order the interface dict so undo restores declaration order."""
    names = schema.type_names()
    names.remove(name)
    names.insert(position, name)
    schema.reorder_interfaces(names)
