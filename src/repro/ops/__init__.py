"""Schema modification operations and the Appendix A operation language.

Every add / delete / modify operation of the paper's grammar is one
command class; :mod:`repro.ops.registry` knows which operations are
admissible in which concept schema type (Table 1), and
:mod:`repro.ops.language` parses the textual operation language.
"""

from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    InadmissibleOperationError,
    OperationContext,
    OperationError,
    SchemaOperation,
    SemanticStabilityError,
    Undo,
)
from repro.ops.instance_of_ops import (
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
    ModifyInstanceOfCardinality,
    ModifyInstanceOfOrderBy,
    ModifyInstanceOfTargetType,
)
from repro.ops.composite import (
    CompositeOperation,
    ExtractSupertype,
    IntroduceAbstractSupertype,
    SplitBySubtyping,
)
from repro.ops.language import parse_composite, parse_operation, parse_script
from repro.ops.operation_ops import (
    AddOperation,
    DeleteOperation,
    ModifyOperation,
    ModifyOperationArgList,
    ModifyOperationExceptionsRaised,
    ModifyOperationReturnType,
)
from repro.ops.part_of_ops import (
    AddPartOfRelationship,
    DeletePartOfRelationship,
    ModifyPartOfCardinality,
    ModifyPartOfOrderBy,
    ModifyPartOfTargetType,
)
from repro.ops.registry import (
    OPERATION_CLASSES,
    OPERATIONS_BY_NAME,
    admissible_operations,
    check_admissible,
    format_table1,
    is_admissible,
    operation_class,
    table1_matrix,
)
from repro.ops.relationship_ops import (
    AddRelationship,
    DeleteRelationship,
    ModifyRelationshipCardinality,
    ModifyRelationshipOrderBy,
    ModifyRelationshipTargetType,
)
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
    ModifyKeyList,
    ModifySupertype,
)

__all__ = [
    "AddAttribute",
    "AddExtentName",
    "AddInstanceOfRelationship",
    "AddKeyList",
    "AddOperation",
    "AddPartOfRelationship",
    "AddRelationship",
    "AddSupertype",
    "AddTypeDefinition",
    "CompositeOperation",
    "ConstraintViolation",
    "DeleteAttribute",
    "DeleteExtentName",
    "DeleteInstanceOfRelationship",
    "DeleteKeyList",
    "DeleteOperation",
    "DeletePartOfRelationship",
    "DeleteRelationship",
    "DeleteSupertype",
    "DeleteTypeDefinition",
    "ExtractSupertype",
    "FREE_CONTEXT",
    "InadmissibleOperationError",
    "IntroduceAbstractSupertype",
    "ModifyAttribute",
    "ModifyAttributeSize",
    "ModifyAttributeType",
    "ModifyExtentName",
    "ModifyInstanceOfCardinality",
    "ModifyInstanceOfOrderBy",
    "ModifyInstanceOfTargetType",
    "ModifyKeyList",
    "ModifyOperation",
    "ModifyOperationArgList",
    "ModifyOperationExceptionsRaised",
    "ModifyOperationReturnType",
    "ModifyPartOfCardinality",
    "ModifyPartOfOrderBy",
    "ModifyPartOfTargetType",
    "ModifyRelationshipCardinality",
    "ModifyRelationshipOrderBy",
    "ModifyRelationshipTargetType",
    "ModifySupertype",
    "OPERATIONS_BY_NAME",
    "OPERATION_CLASSES",
    "OperationContext",
    "OperationError",
    "SchemaOperation",
    "SplitBySubtyping",
    "SemanticStabilityError",
    "Undo",
    "admissible_operations",
    "check_admissible",
    "format_table1",
    "is_admissible",
    "operation_class",
    "parse_composite",
    "parse_operation",
    "parse_script",
    "table1_matrix",
]
