"""Figure 3: the Course Offering wagon wheel concept schema.

Extracts the wheel from the university shrink wrap schema and checks the
figure's content: the focal point, the Syllabus / Book / Time Slot /
Length spokes, and the dotted instance-of link to Course.
"""

from repro.catalog import university_schema
from repro.concepts.wagon_wheel import extract_wagon_wheel
from repro.designer.render import render_wagon_wheel
from repro.model.relationships import RelationshipKind

SCHEMA = university_schema()


def test_bench_fig3_wagon_wheel(benchmark, report):
    wheel = benchmark(extract_wagon_wheel, SCHEMA, "Course_Offering")
    report("fig3_course_offering_wagon_wheel", render_wagon_wheel(wheel))

    assert wheel.focal == "Course_Offering"
    spokes = {spoke.target_type: spoke for spoke in wheel.spokes}
    # The figure's spokes: described-by Syllabus, book-for Book,
    # offered-during Time Slot, duration-of Length, instance-of Course.
    assert spokes["Syllabus"].path_name == "described_by"
    assert spokes["Book"].path_name == "book_for"
    assert spokes["Time_Slot"].path_name == "offered_during"
    assert spokes["Length"].path_name == "duration_of"
    assert spokes["Course"].kind is RelationshipKind.INSTANCE_OF
    # The wheel covers only distance-1 neighbours.
    assert "Department" not in wheel.members
