"""Throughput characterisation (no paper counterpart).

Operation apply+undo throughput (the workspace's inner loop), the
propagation expansion, and the Appendix A language round-trip, over a
seeded operation stream against a mid-sized synthetic schema.
"""

from repro.knowledge.propagation import expand
from repro.ops.base import OperationContext
from repro.ops.language import parse_operation
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

SCHEMA = generate_schema(WorkloadSpec(types=60, seed=7))
OPERATIONS = generate_operations(SCHEMA, 100, seed=11)
TEXTS = [operation.to_text() for operation in OPERATIONS]


def apply_and_undo_stream():
    scratch = SCHEMA.copy("stream")
    context = OperationContext(reference=SCHEMA)
    undo_stack = []
    for operation in OPERATIONS:
        for step in expand(scratch, operation, context):
            undo_stack.append(step.apply(scratch, context))
    for undo in reversed(undo_stack):
        undo()
    return len(undo_stack)


def test_bench_apply_undo_throughput(benchmark, report):
    applied = benchmark(apply_and_undo_stream)
    report(
        "throughput_apply_undo",
        f"{len(OPERATIONS)} requested operations expand to {applied} steps; "
        "each run applies and fully undoes the stream.",
    )
    assert applied >= len(OPERATIONS)


def parse_stream():
    return [parse_operation(text) for text in TEXTS]


def test_bench_language_parse_throughput(benchmark):
    parsed = benchmark(parse_stream)
    assert parsed == OPERATIONS


def impact_stream():
    scratch = SCHEMA.copy("impact")
    context = OperationContext(reference=SCHEMA)
    total = 0
    for operation in OPERATIONS[:30]:
        plan = expand(scratch, operation, context)
        total += len(plan)
        for step in plan:
            step.apply(scratch, context)
    return total


def test_bench_propagation_expansion(benchmark):
    total = benchmark(impact_stream)
    assert total >= 30
