"""Unit tests for the extended-ODL parser (repro.odl.parser)."""

import pytest

from repro.model.errors import DuplicateNameError
from repro.model.relationships import RelationshipKind
from repro.model.types import named, scalar, set_of
from repro.odl.lexer import OdlSyntaxError
from repro.odl.parser import parse_interface, parse_schema, parse_type


class TestParseType:
    def test_scalar(self):
        assert parse_type("long") == scalar("long")

    def test_sized_scalar(self):
        assert parse_type("string(30)") == scalar("string", 30)

    def test_named(self):
        assert parse_type("Course") == named("Course")

    def test_collection(self):
        assert parse_type("set<Course>") == set_of("Course")

    def test_sized_array(self):
        assert str(parse_type("array<long, 8>")) == "array<long, 8>"

    def test_nested(self):
        assert str(parse_type("list<set<Course>>")) == "list<set<Course>>"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OdlSyntaxError):
            parse_type("long long")


class TestParseInterface:
    def test_empty(self):
        interface = parse_interface("interface A {};")
        assert interface.name == "A"
        assert interface.supertypes == []

    def test_trailing_semicolon_optional(self):
        assert parse_interface("interface A {}").name == "A"

    def test_supertypes(self):
        interface = parse_interface("interface A : B, C {};")
        assert interface.supertypes == ["B", "C"]

    def test_extent(self):
        interface = parse_interface("interface A { extent as_; };")
        assert interface.extent == "as_"

    def test_keys_simple_and_compound(self):
        interface = parse_interface(
            "interface A { keys id, (name, dob); "
            "attribute long id; attribute long name; attribute long dob; };"
        )
        assert interface.keys == [("id",), ("name", "dob")]

    def test_key_singular_keyword(self):
        interface = parse_interface(
            "interface A { key (id); attribute long id; };"
        )
        assert interface.keys == [("id",)]

    def test_attribute(self):
        interface = parse_interface(
            "interface A { attribute string(30) name; };"
        )
        assert interface.get_attribute("name").type == scalar("string", 30)

    def test_association_relationship(self):
        interface = parse_interface(
            "interface A { relationship set<B> bs inverse B::a; };"
        )
        end = interface.get_relationship("bs")
        assert end.kind is RelationshipKind.ASSOCIATION
        assert end.inverse_type == "B"
        assert end.inverse_name == "a"

    def test_part_of_relationship(self):
        interface = parse_interface(
            "interface A { part_of relationship set<B> parts inverse B::whole; };"
        )
        assert interface.get_relationship("parts").kind is RelationshipKind.PART_OF

    def test_instance_of_relationship(self):
        interface = parse_interface(
            "interface A { instance_of relationship B gen inverse B::insts; };"
        )
        end = interface.get_relationship("gen")
        assert end.kind is RelationshipKind.INSTANCE_OF
        assert not end.is_to_many

    def test_order_by(self):
        interface = parse_interface(
            "interface A { relationship set<B> bs inverse B::a "
            "order_by (name, id); };"
        )
        assert interface.get_relationship("bs").order_by == ("name", "id")

    def test_niladic_operation(self):
        interface = parse_interface("interface A { short count(); };")
        assert interface.get_operation("count").signature() == "short count()"

    def test_operation_with_params_and_raises(self):
        interface = parse_interface(
            "interface A { float f(in short x, inout long y) raises (E1, E2); };"
        )
        operation = interface.get_operation("f")
        assert [p.direction for p in operation.parameters] == ["in", "inout"]
        assert operation.exceptions == ("E1", "E2")

    def test_void_operation(self):
        interface = parse_interface("interface A { void go(); };")
        assert str(interface.get_operation("go").return_type) == "void"

    def test_missing_parameter_direction_rejected(self):
        with pytest.raises(OdlSyntaxError) as info:
            parse_interface("interface A { float f(short x); };")
        assert "direction" in str(info.value)

    def test_duplicate_property_rejected(self):
        with pytest.raises(DuplicateNameError):
            parse_interface(
                "interface A { attribute long x; attribute short x; };"
            )


class TestParseSchema:
    def test_multiple_interfaces(self):
        schema = parse_schema(
            "interface A {}; interface B : A {};", name="demo"
        )
        assert schema.type_names() == ["A", "B"]
        assert schema.name == "demo"

    def test_forward_references_allowed(self):
        schema = parse_schema(
            """
            interface A { relationship B to_b inverse B::to_a; };
            interface B { relationship set<A> to_a inverse A::to_b; };
            """,
            name="s",
        )
        schema.validate()

    def test_empty_text(self):
        assert len(parse_schema("", name="empty")) == 0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OdlSyntaxError):
            parse_schema("interface A {}; stray", name="s")

    def test_error_position_reported(self):
        with pytest.raises(OdlSyntaxError) as info:
            parse_schema("interface A {\n  attribute ;\n};", name="s")
        assert "line 2" in str(info.value)

    def test_comments_everywhere(self):
        schema = parse_schema(
            """
            // header comment
            interface A { /* inline */ attribute long x; // trailing
            };
            """,
            name="s",
        )
        assert "x" in schema.get("A").attributes

    def test_duplicate_interface_rejected(self):
        with pytest.raises(DuplicateNameError):
            parse_schema("interface A {}; interface A {};", name="s")
