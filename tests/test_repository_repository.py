"""Unit tests for the schema repository lifecycle."""

import pytest

from repro.analysis.diff import ChangeStatus
from repro.model.errors import SchemaError, ValidationError
from repro.ops.attribute_ops import AddAttribute
from repro.ops.base import InadmissibleOperationError
from repro.ops.language import parse_operation
from repro.ops.type_ops import DeleteTypeDefinition
from repro.repository.repository import SchemaRepository, require_custom_schema
from repro.model.types import scalar


@pytest.fixture
def repository(small):
    return SchemaRepository(small, custom_name="small_custom")


class TestConstruction:
    def test_decomposition_generated_immediately(self, repository):
        identifiers = {c.identifier for c in repository.concept_schemas()}
        assert {"ww:Person", "ww:Employee", "ww:Department", "gh:Person"} <= (
            identifiers
        )

    def test_invalid_shrink_wrap_rejected(self):
        from repro.odl.parser import parse_schema

        broken = parse_schema("interface A : Ghost {};", name="broken")
        with pytest.raises(ValidationError):
            SchemaRepository(broken)

    def test_from_odl(self):
        repository = SchemaRepository.from_odl(
            "interface A { attribute long x; };", name="demo"
        )
        assert "A" in repository.shrink_wrap

    def test_concept_lookup(self, repository):
        assert repository.concept("gh:Person").anchor == "Person"
        with pytest.raises(SchemaError):
            repository.concept("gh:Ghost")


class TestCustomization:
    def test_apply_and_undo(self, repository):
        repository.apply(parse_operation("add_attribute(Person, date, dob)"))
        assert "dob" in repository.workspace.schema.get("Person").attributes
        repository.undo()
        assert "dob" not in repository.workspace.schema.get("Person").attributes

    def test_apply_in_concept_context(self, repository):
        entry = repository.apply(
            AddAttribute("Person", scalar("date"), "dob"),
            concept_id="ww:Person",
        )
        assert entry.concept_id == "ww:Person"

    def test_apply_rejects_inadmissible_in_context(self, repository):
        with pytest.raises(InadmissibleOperationError):
            repository.apply(
                parse_operation("add_supertype(Department, Person)"),
                concept_id="ww:Department",
            )

    def test_impact_preview(self, repository):
        report = repository.impact(DeleteTypeDefinition("Department"))
        assert len(report.cascades) == 1
        # Previewing never changes the workspace.
        assert repository.workspace.log == []

    def test_impact_checks_concept_admissibility(self, repository):
        with pytest.raises(InadmissibleOperationError):
            repository.impact(
                parse_operation("add_supertype(Department, Person)"),
                concept_id="ww:Department",
            )


class TestDeliverables:
    def test_generate_custom_schema(self, repository):
        repository.apply(parse_operation("add_attribute(Person, date, dob)"))
        custom = repository.generate_custom_schema("tailored")
        assert custom.name == "tailored"
        assert "dob" in custom.get("Person").attributes
        assert repository.custom_schema is custom

    def test_custom_schema_is_frozen_copy(self, repository):
        custom = repository.generate_custom_schema()
        repository.apply(parse_operation("add_attribute(Person, date, dob)"))
        assert "dob" not in custom.get("Person").attributes

    def test_generate_mapping(self, repository):
        repository.apply(parse_operation("delete_attribute(Employee, salary)"))
        mapping = repository.generate_mapping()
        deleted = [entry.path for entry in mapping.deleted()]
        assert "Employee.salary" in deleted

    def test_mapping_invalidated_by_new_operations(self, repository):
        repository.generate_mapping()
        repository.apply(parse_operation("add_attribute(Person, date, dob)"))
        assert repository.mapping is None
        assert repository.custom_schema is None

    def test_diff_reflects_workspace(self, repository):
        repository.apply(parse_operation("add_type_definition(Extra)"))
        diff = repository.diff()
        added = [e.path for e in diff.of_status(ChangeStatus.ADDED)]
        assert "Extra" in added

    def test_consistency_report(self, repository):
        repository.apply(parse_operation("add_type_definition(Orphan)"))
        report = repository.consistency()
        assert any(m.code == "empty-interface" for m in report)

    def test_customization_script(self, repository):
        repository.apply(parse_operation("add_attribute(Person, date, dob)"))
        assert repository.customization_script() == (
            "add_attribute(Person, date, dob)"
        )

    def test_require_custom_schema(self, repository):
        with pytest.raises(SchemaError):
            require_custom_schema(repository)
        repository.generate_custom_schema()
        assert require_custom_schema(repository) is repository.custom_schema

    def test_summary(self, repository):
        assert "concept schemas" in repository.summary()
