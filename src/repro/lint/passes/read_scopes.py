"""Read-scope soundness: rules read only their declared ``RULE_SCOPES``.

``ValidationCache`` derives its dirty closure from each rule's declared
:class:`~repro.model.validation.RuleScope`: an operation touching aspect
*A* re-runs only the rules whose scope lists *A*.  A rule whose body
reads an attribute *outside* its declared aspects would keep serving
cached issues after that attribute changed -- stale validation, the
race-detector-shaped bug class for the cache layer.  This pass proves
the containment statically:

1. **Implementer discovery.**  A function in the validation module
   *implements* rule ``r`` if an ``Issue("r", ...)`` construction is
   statically reachable from it (within the module).  ``validate_schema``
   dispatches through the ``STRUCTURAL_RULES`` tuple dynamically and so
   implements nothing itself, which is exactly right: the cache never
   re-runs it.
2. **Read collection.**  From each implementer the pass walks the
   transitive call closure (annotation-typed and universe-resolved
   method calls over ``Schema`` / ``InterfaceDef`` included) and maps
   every attribute *read* to aspects: ``supertypes`` -> ISA,
   ``attributes`` -> ATTRS, ``keys`` -> KEYS, ``operations`` -> OPS,
   ``extent`` -> EXTENT, and ``relationships`` to a *relationship-kind
   context*: all three REL aspects by default, narrowed by literal
   ``RelationshipKind.K`` call arguments (``scan_link_edges(schema,
   RelationshipKind.PART_OF)`` reads only REL_PART_OF) and by
   ``if end.kind is RelationshipKind.K: continue`` guards (the guarded
   kind cannot flow past the guard).
3. **Exhaustive cross-check.**  Every scope in ``RULE_SCOPES`` must
   have at least one implementer (a rule the analysis cannot see is a
   finding, not a silent skip), and every ``Issue`` id constructed in
   the module must be declared in ``RULE_SCOPES``.

CoW materialisation machinery (``copy``, ``_materialise``, claim
settling) is opaque: it clones content verbatim without *depending* on
it, so its reads cannot invalidate a rule's output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.lint.callgraph import CallGraph, FuncRef
from repro.lint.findings import Finding
from repro.lint.loader import Codebase
from repro.lint.registry import LintContext, register_pass

VALIDATION_MODULE = "repro.model.validation"

#: model attribute -> aspect value(s) a read of it depends on;
#: ``None`` marks the relationship family, resolved per context.
ATTR_ASPECTS: dict[str, frozenset[str] | None] = {
    "supertypes": frozenset({"isa"}),
    "attributes": frozenset({"attrs"}),
    "keys": frozenset({"keys"}),
    "operations": frozenset({"ops"}),
    "extent": frozenset({"extent"}),
    "relationships": None,
}

REL_ASPECTS = frozenset({"rel-association", "rel-part-of", "rel-instance-of"})

#: RelationshipKind member name -> the one aspect it narrows to
KIND_ASPECTS = {
    "ASSOCIATION": "rel-association",
    "PART_OF": "rel-part-of",
    "INSTANCE_OF": "rel-instance-of",
}

#: content-neutral machinery the walk never descends into: CoW cloning
#: and claim settling copy fields verbatim, they do not depend on them
OPAQUE_METHODS = frozenset(
    {
        "copy",
        "_materialise",
        "_cow_barrier",
        "_cow_share",
        "register_claim",
        "release_claim",
        "_attach_spine",
        "_detach_spine",
    }
)


@dataclass(frozen=True)
class ScopedRead:
    """One attribute read observed inside a rule's closure."""

    attr: str
    aspects: frozenset[str]
    module: str
    qualname: str
    line: int


def _kind_literal(node: ast.expr) -> str | None:
    """``RelationshipKind.K`` -> aspect value of ``K``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "RelationshipKind"
    ):
        return KIND_ASPECTS.get(node.attr)
    return None


def _kind_guard_exclusions(node: ast.FunctionDef) -> frozenset[str]:
    """Kinds a ``if x.kind is RelationshipKind.K: continue`` guard removes.

    The guard pattern used throughout the model (skip one kind, process
    the rest) means relationship ends of the guarded kind never flow
    past the guard, so reads below it do not depend on that kind.
    """
    excluded: set[str] = set()
    for child in ast.walk(node):
        if not isinstance(child, ast.If):
            continue
        test = child.test
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            continue
        if not isinstance(test.ops[0], (ast.Is, ast.Eq)):
            continue
        aspect = _kind_literal(test.comparators[0])
        if aspect is None:
            continue
        if any(isinstance(stmt, ast.Continue) for stmt in child.body):
            excluded.add(aspect)
    return frozenset(excluded)


def _call_kind_context(call: ast.Call) -> frozenset[str] | None:
    """Aspect context a call's literal RelationshipKind arguments pin."""
    kinds = {
        aspect
        for arg in [*call.args, *[kw.value for kw in call.keywords]]
        if (aspect := _kind_literal(arg)) is not None
    }
    return frozenset(kinds) if kinds else None


def collect_reads(
    graph: CallGraph, root: FuncRef, rel_context: frozenset[str] = REL_ASPECTS
) -> list[ScopedRead]:
    """Every aspect-mapped attribute read in *root*'s call closure.

    The walk is context-sensitive in the relationship kind: each
    (function, context) pair is visited once, the context narrowing at
    call sites that pass literal ``RelationshipKind`` members and inside
    functions whose guards exclude kinds.
    """
    reads: list[ScopedRead] = []
    seen: set[tuple[str, str, frozenset[str]]] = set()
    frontier: list[tuple[FuncRef, frozenset[str]]] = [(root, rel_context)]
    while frontier:
        ref, context = frontier.pop()
        state = (ref.module, ref.qualname, context)
        if state in seen:
            continue
        seen.add(state)
        effective = context - _kind_guard_exclusions(ref.node)
        call_heads = {
            id(child.func)
            for child in ast.walk(ref.node)
            if isinstance(child, ast.Call)
        }
        for child in ast.walk(ref.node):
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
                and id(child) not in call_heads
                and child.attr in ATTR_ASPECTS
            ):
                mapped = ATTR_ASPECTS[child.attr]
                aspects = effective if mapped is None else mapped
                if aspects:
                    reads.append(
                        ScopedRead(
                            attr=child.attr,
                            aspects=aspects,
                            module=ref.module,
                            qualname=ref.qualname,
                            line=child.lineno,
                        )
                    )
        for site in graph.callees(ref):
            pinned = _call_kind_context(site.call)
            callee_context = pinned if pinned is not None else effective
            for target in site.targets:
                frontier.append((target, callee_context))
    return reads


def _direct_issue_ids(node: ast.FunctionDef, issue_names: set[str]) -> set[str]:
    """Rule ids of ``Issue("<id>", ...)`` constructions inside *node*."""
    ids: set[str] = set()
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id in issue_names
            and child.args
            and isinstance(child.args[0], ast.Constant)
            and isinstance(child.args[0].value, str)
        ):
            ids.add(child.args[0].value)
    return ids


def rule_implementers(
    codebase: Codebase, module_name: str
) -> dict[str, list[str]]:
    """rule id -> module functions from which its Issue is reachable."""
    info = codebase.module(module_name)
    if info is None:
        return {}
    issue_names = {"Issue"}
    issue_names |= {
        local
        for local, (_, symbol) in info.imports.items()
        if symbol == "Issue"
    }
    direct = {
        name: _direct_issue_ids(node, issue_names)
        for name, node in info.functions.items()
    }
    # propagate over intra-module bare-name calls to a fixpoint
    callees: dict[str, set[str]] = {}
    for name, node in info.functions.items():
        called = {
            child.func.id
            for child in ast.walk(node)
            if isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id in info.functions
        }
        callees[name] = called
    reachable = {name: set(ids) for name, ids in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, called in callees.items():
            for target in called:
                extra = reachable[target] - reachable[name]
                if extra:
                    reachable[name] |= extra
                    changed = True
    implementers: dict[str, list[str]] = {}
    for name in sorted(reachable):
        for rule in reachable[name]:
            implementers.setdefault(rule, []).append(name)
    return implementers


def check_rule_scopes(
    codebase: Codebase,
    scopes: Iterable[tuple[str, frozenset[str]]],
    module_name: str = VALIDATION_MODULE,
    *,
    universe: tuple[str, ...] = ("Schema", "InterfaceDef"),
) -> list[Finding]:
    """Findings for *scopes* (``(rule id, declared aspect values)``).

    Exposed with injectable scopes/module so fixture tests can mirror
    the real wiring on synthetic trees.
    """
    findings: list[Finding] = []
    info = codebase.module(module_name)
    if info is None:
        return [
            Finding(
                rule="read-scope",
                path=module_name,
                line=1,
                symbol=module_name,
                message=f"validation module {module_name!r} not found",
            )
        ]
    graph = CallGraph(codebase, method_universe=universe, opaque=OPAQUE_METHODS)
    implementers = rule_implementers(codebase, module_name)
    declared_rules: set[str] = set()
    for rule_id, declared in scopes:
        declared_rules.add(rule_id)
        names = implementers.get(rule_id, [])
        if not names:
            findings.append(
                Finding(
                    rule="read-scope",
                    path=info.path,
                    line=1,
                    symbol=f"{module_name}:{rule_id}",
                    message=(
                        f"rule {rule_id!r} is declared in RULE_SCOPES but no "
                        "function constructing its Issue was found; the pass "
                        "cannot analyze it (is the rule wired dynamically?)"
                    ),
                )
            )
            continue
        reported: set[tuple[str, str, int]] = set()
        for name in names:
            root = graph.function(module_name, name)
            if root is None:
                continue
            for read in collect_reads(graph, root):
                uncovered = read.aspects - declared
                if not uncovered:
                    continue
                anchor = (read.qualname, read.attr, read.line)
                if anchor in reported:
                    continue
                reported.add(anchor)
                read_info = codebase.module(read.module)
                findings.append(
                    Finding(
                        rule="read-scope",
                        path=read_info.path if read_info else read.module,
                        line=read.line,
                        symbol=f"{module_name}:{rule_id}",
                        message=(
                            f"rule {rule_id!r} (via {name}) reads "
                            f".{read.attr} in {read.module}:{read.qualname}, "
                            "depending on aspect(s) "
                            f"{{{', '.join(sorted(uncovered))}}} its "
                            "RULE_SCOPES entry does not declare; "
                            "ValidationCache would serve stale issues after "
                            "such a touch"
                        ),
                    )
                )
    for rule_id in sorted(set(implementers) - declared_rules):
        names = implementers[rule_id]
        node = info.functions[names[0]]
        findings.append(
            Finding(
                rule="read-scope",
                path=info.path,
                line=node.lineno,
                symbol=f"{module_name}:{rule_id}",
                message=(
                    f"Issue id {rule_id!r} is constructed (in "
                    f"{', '.join(names)}) but has no RULE_SCOPES entry; the "
                    "cache cannot derive a dirty closure for it"
                ),
            )
        )
    return findings


def _runtime_scopes() -> list[tuple[str, frozenset[str]]]:
    from repro.model.validation import RULE_SCOPES

    return [
        (
            scope.rule,
            frozenset(aspect.value for aspect in scope.aspects),
        )
        for scope in RULE_SCOPES
    ]


@register_pass(
    "read-scopes",
    rules=("read-scope",),
    contract=(
        "every validation rule's transitive attribute reads stay within its "
        "declared RULE_SCOPES aspects (no stale incremental validation), "
        "with every registered rule analyzed and every constructed Issue id "
        "registered"
    ),
)
def run(context: LintContext) -> list[Finding]:
    return check_rule_scopes(context.codebase, _runtime_scopes())
