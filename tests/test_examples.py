"""Tests for the significant-example generator (PR 7 tentpole).

The acceptance bar: on the catalog schemas, every constraint family of
:data:`~repro.examples.generator.CONSTRAINT_KINDS` yields at least one
(witness, near-miss) pair, the witness is admitted, and the near-miss
provokes exactly the family it claims to demonstrate.
"""

import pytest

from repro.catalog import load
from repro.examples import CONSTRAINT_KINDS, significant_examples
from repro.instances import check_population

#: Catalog schemas that together exercise every constraint family.
_SUBJECTS = ("university", "lumber_yard", "emsl_software", "acedb")


def _all_pairs():
    pairs = []
    for name in _SUBJECTS:
        pairs.extend(significant_examples(load(name)))
    return pairs


class TestSelfVerification:
    """Every emitted pair is checked against its own claim."""

    @pytest.mark.parametrize("subject", _SUBJECTS)
    def test_witnesses_are_admitted(self, subject):
        schema = load(subject)
        pairs = significant_examples(schema)
        assert pairs, f"no example pairs on {subject}"
        for pair in pairs:
            assert check_population(schema, pair.witness) == [], pair.subject

    @pytest.mark.parametrize("subject", _SUBJECTS)
    def test_near_misses_provoke_their_kind(self, subject):
        schema = load(subject)
        for pair in significant_examples(schema):
            issues = check_population(schema, pair.near_miss)
            assert any(issue.kind == pair.kind for issue in issues), (
                pair.subject, pair.kind, [str(issue) for issue in issues]
            )


class TestKindCoverage:
    """At least one pair per constraint family across the catalogs."""

    @pytest.mark.parametrize("kind", CONSTRAINT_KINDS)
    def test_kind_has_a_pair(self, kind):
        assert any(pair.kind == kind for pair in _all_pairs()), kind

    def test_university_covers_the_core_kinds(self):
        kinds = {pair.kind for pair in significant_examples(load("university"))}
        assert {"cardinality", "inverse", "key", "order-by",
                "isa-extent"} <= kinds

    def test_lumber_yard_covers_part_of(self):
        kinds = {pair.kind for pair in
                 significant_examples(load("lumber_yard"))}
        assert "part-of" in kinds

    def test_emsl_covers_instance_of(self):
        kinds = {pair.kind for pair in
                 significant_examples(load("emsl_software"))}
        assert "instance-of" in kinds


class TestSelection:
    def test_interface_filter_restricts_sites(self):
        schema = load("university")
        pairs = significant_examples(schema, interfaces=["Department"])
        assert pairs
        assert all(pair.subject.startswith("Department.")
                   or pair.subject.startswith("Department ")
                   for pair in pairs)

    def test_kind_filter_restricts_families(self):
        schema = load("university")
        pairs = significant_examples(schema, kinds=["key"])
        assert pairs
        assert {pair.kind for pair in pairs} == {"key"}

    def test_generation_is_deterministic(self):
        schema = load("university")
        first = [pair.render() for pair in significant_examples(schema)]
        second = [pair.render() for pair in significant_examples(schema)]
        assert first == second


class TestRendering:
    def test_pair_render_shows_both_populations(self):
        pair = significant_examples(load("university"), kinds=["key"])[0]
        text = pair.render()
        assert "admitted" in text
        assert "rejected" in text


class TestCli:
    def test_main_prints_summary(self, capsys):
        from repro.examples.__main__ import main

        assert main(["university", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "example pair(s)" in out
        for kind in CONSTRAINT_KINDS:
            assert kind in out

    def test_main_rejects_unknown_schema(self, capsys):
        from repro.examples.__main__ import main

        assert main(["no_such_schema"]) == 2
