"""Analyses over schemas: diff, completeness, similarity, synthesis."""

from repro.analysis.completeness import (
    TABLE2_ADDITIONS,
    TABLE3_MODIFICATIONS,
    CoverageRow,
    add_only_script,
    coverage_gaps,
    delete_only_script,
    format_table,
    full_rebuild_script,
    table2_rows,
    table3_rows,
)
from repro.analysis.metrics import (
    DecompositionPayoff,
    SchemaMetrics,
    decomposition_payoff,
    schema_metrics,
)
from repro.analysis.diff import (
    ChangeEntry,
    ChangeStatus,
    SchemaDiff,
    diff_schemas,
    schema_diff,
)
from repro.analysis.family import FamilyMember, SchemaFamily
from repro.analysis.paths import PathStep, find_path, render_path
from repro.analysis.similarity import (
    AffinityReport,
    affinity_matrix,
    affinity_report,
    name_affinity,
    schema_affinity,
    type_affinity,
)
from repro.analysis.synthesis import SynthesisError, synthesize_operations

_PLAN_EXPORTS = frozenset({
    "ConflictEdge",
    "Diagnostic",
    "PlanAnalysis",
    "PlanPreflightError",
    "analyze_plan",
    "conflict_edges",
    "normalize_plan",
    "partition_batches",
})


def __getattr__(name: str):
    # repro.analysis.plan is loaded lazily so that running the CLI
    # (``python -m repro.analysis.plan``) does not import the module
    # twice (runpy warns when the package __init__ pre-imports it).
    if name in _PLAN_EXPORTS:
        from repro.analysis import plan

        return getattr(plan, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "AffinityReport",
    "ChangeEntry",
    "ChangeStatus",
    "ConflictEdge",
    "CoverageRow",
    "Diagnostic",
    "PlanAnalysis",
    "PlanPreflightError",
    "DecompositionPayoff",
    "FamilyMember",
    "PathStep",
    "SchemaDiff",
    "SchemaFamily",
    "SchemaMetrics",
    "SynthesisError",
    "TABLE2_ADDITIONS",
    "TABLE3_MODIFICATIONS",
    "add_only_script",
    "affinity_matrix",
    "affinity_report",
    "analyze_plan",
    "conflict_edges",
    "coverage_gaps",
    "decomposition_payoff",
    "delete_only_script",
    "diff_schemas",
    "find_path",
    "format_table",
    "full_rebuild_script",
    "name_affinity",
    "normalize_plan",
    "partition_batches",
    "render_path",
    "schema_affinity",
    "schema_diff",
    "schema_metrics",
    "type_affinity",
    "synthesize_operations",
    "table2_rows",
    "table3_rows",
]
