"""SchemaIndex: memoized graph queries and their invalidation contract.

Three layers of coverage:

* unit tests that the indexed queries equal the full-scan reference
  implementations (``repro.model.index.scan_*``) and that the
  generation counter is bumped by every mutating entry point;
* the dangling-supertype resolution fixes (``ancestors`` /
  ``isa_related`` symmetry, ``generalization_roots`` with unresolved
  supertypes);
* a property-style test: after any random operation sequence from the
  workload generator -- including undo, redo, and reset -- every
  indexed query still equals its full-scan counterpart.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.model.attributes import Attribute
from repro.model.index import (
    scan_aggregation_roots,
    scan_ancestors,
    scan_descendants,
    scan_generalization_roots,
    scan_instance_of_roots,
    scan_parts,
    scan_relationship_pairs,
    scan_subtypes,
    scan_wholes,
)
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import NamedType, ScalarType, set_of
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


def assert_index_matches_scan(schema: Schema) -> None:
    """Every indexed query equals its full-scan counterpart."""
    for name in schema.type_names():
        assert schema.subtypes(name) == scan_subtypes(schema, name)
        assert schema.descendants(name) == scan_descendants(schema, name)
        assert schema.ancestors(name) == scan_ancestors(schema, name)
        assert schema.parts(name) == scan_parts(schema, name)
        assert schema.wholes(name) == scan_wholes(schema, name)
    assert schema.generalization_roots() == scan_generalization_roots(schema)
    assert schema.aggregation_roots() == scan_aggregation_roots(schema)
    assert schema.instance_of_roots() == scan_instance_of_roots(schema)
    assert schema.relationship_pairs() == scan_relationship_pairs(schema)


def _association(name, target, inverse_type, inverse_name, to_many=False):
    target_type = set_of(target) if to_many else NamedType(target)
    return RelationshipEnd(
        name, target_type, inverse_type, inverse_name,
        RelationshipKind.ASSOCIATION,
    )


@pytest.fixture
def workload_schema() -> Schema:
    return generate_schema(WorkloadSpec(types=30, seed=7))


class TestIndexedQueriesMatchScans:
    def test_on_generated_schema(self, workload_schema):
        assert_index_matches_scan(workload_schema)

    def test_on_catalog_schemas(self, university, house, software, acedb):
        for schema in (university, house, software, acedb):
            assert_index_matches_scan(schema)

    def test_queries_hit_the_cache_when_unchanged(self, workload_schema):
        workload_schema.descendants("Type000")
        workload_schema.subtypes("Type001")
        before = workload_schema.index.stats()
        workload_schema.descendants("Type000")
        workload_schema.subtypes("Type001")
        after = workload_schema.index.stats()
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]

    def test_stats_exposes_index_counters(self, workload_schema):
        stats = workload_schema.stats()
        for key in ("index_hits", "index_misses", "index_rebuilds",
                    "index_generation"):
            assert key in stats


class TestGenerationBumps:
    """Every mutating entry point invalidates the index."""

    def _schema(self) -> Schema:
        schema = Schema("gen")
        schema.add_interface(InterfaceDef("Base"))
        schema.add_interface(InterfaceDef("Sub", supertypes=["Base"]))
        return schema

    def test_add_remove_interface_bump(self):
        schema = self._schema()
        generation = schema.generation
        schema.add_interface(InterfaceDef("Extra"))
        assert schema.generation > generation
        generation = schema.generation
        schema.remove_interface("Extra")
        assert schema.generation > generation

    def test_supertype_mutators_bump_and_requery(self):
        schema = self._schema()
        assert schema.subtypes("Base") == ["Sub"]
        schema.add_interface(InterfaceDef("Other"))
        schema.get("Other").add_supertype("Base")
        assert schema.subtypes("Base") == ["Sub", "Other"]
        schema.get("Other").remove_supertype("Base")
        assert schema.subtypes("Base") == ["Sub"]
        schema.get("Sub").set_supertypes(["Other"])
        assert schema.subtypes("Base") == []
        assert schema.subtypes("Other") == ["Sub"]

    def test_relationship_mutators_bump_and_requery(self):
        schema = self._schema()
        whole = schema.get("Base")
        whole.add_relationship(
            RelationshipEnd(
                "has_parts", set_of("Sub"), "Sub", "part_of_whole",
                RelationshipKind.PART_OF,
            )
        )
        assert schema.parts("Base") == ["Sub"]
        whole.remove_relationship("has_parts")
        assert schema.parts("Base") == []

    def test_detached_interface_stops_bumping(self):
        schema = self._schema()
        removed = schema.remove_interface("Sub")
        generation = schema.generation
        removed.add_attribute(Attribute("orphan", ScalarType("long")))
        assert schema.generation == generation

    def test_interface_shared_by_two_schemas_is_borrowed_cow(self):
        # Adding an interface already on another schema's spine borrows
        # it copy-on-write: the owner mutating it privatises the
        # as-added state into the borrower, whose content -- and hence
        # generation -- does not change.
        first = self._schema()
        second = Schema("other")
        shared = first.get("Base")
        second.add_interface(shared)
        first_generation = first.generation
        second_generation = second.generation
        shared.add_attribute(Attribute("a", ScalarType("long")))
        assert first.generation > first_generation
        assert second.generation == second_generation
        assert second.get("Base") is not shared
        assert "a" not in second.get("Base").attributes
        assert "a" in first.get("Base").attributes

    def test_attribute_and_operation_mutators_bump(self):
        schema = self._schema()
        interface = schema.get("Base")
        generation = schema.generation
        interface.add_attribute(Attribute("a", ScalarType("long")))
        assert schema.generation > generation
        generation = schema.generation
        interface.remove_attribute("a")
        assert schema.generation > generation


class TestDanglingSupertypeResolution:
    """Satellite fix: unresolved supertypes answer consistently."""

    def _schema(self) -> Schema:
        schema = Schema("dangling")
        schema.add_interface(
            InterfaceDef("Orphan", supertypes=["Missing"])
        )
        schema.add_interface(InterfaceDef("Child", supertypes=["Orphan"]))
        return schema

    def test_ancestors_excludes_dangling_names(self):
        schema = self._schema()
        assert schema.ancestors("Orphan") == set()
        assert schema.ancestors("Child") == {"Orphan"}

    def test_isa_related_is_symmetric_with_dangling_supertypes(self):
        schema = self._schema()
        # "Missing" is not a type; neither direction may claim kinship.
        assert not schema.isa_related("Orphan", "Missing")
        assert schema.isa_related("Child", "Orphan")
        assert schema.isa_related("Orphan", "Child")

    def test_dangling_only_supertypes_make_a_root(self):
        schema = self._schema()
        assert schema.generalization_roots() == ["Orphan"]

    def test_resolved_supertype_still_blocks_roothood(self):
        schema = self._schema()
        schema.add_interface(InterfaceDef("Top"))
        schema.get("Orphan").add_supertype("Top")
        assert schema.generalization_roots() == ["Top"]


class TestInvalidationAcrossWorkspaceHistory:
    """Property-style: ops, undo, redo, reset never leave stale caches."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_random_op_sequences_keep_index_fresh(self, seed):
        spec = WorkloadSpec(types=12, seed=seed % 1000)
        schema = generate_schema(spec)
        operations = generate_operations(schema, count=8, seed=seed)
        workspace = Workspace(schema)
        # warm every cache family so staleness, not cold misses, is tested
        assert_index_matches_scan(workspace.schema)
        for operation in operations:
            workspace.apply(operation)
            assert_index_matches_scan(workspace.schema)
        while workspace.log:
            workspace.undo_last()
            assert_index_matches_scan(workspace.schema)
        while workspace.redo() is not None:
            assert_index_matches_scan(workspace.schema)
        workspace.reset()
        assert_index_matches_scan(workspace.schema)
        assert_index_matches_scan(workspace.reference)

    def test_hand_built_mutation_stream(self):
        schema = Schema("stream")
        schema.add_interface(InterfaceDef("A"))
        schema.add_interface(InterfaceDef("B", supertypes=["A"]))
        assert_index_matches_scan(schema)
        schema.get("A").add_relationship(
            _association("to_b", "B", "B", "to_a", to_many=True)
        )
        schema.get("B").add_relationship(_association("to_a", "A", "A", "to_b"))
        assert_index_matches_scan(schema)
        schema.get("B").replace_relationship(
            _association("to_a", "A", "A", "to_b", to_many=True)
        )
        assert_index_matches_scan(schema)
        schema.remove_interface("B")
        assert_index_matches_scan(schema)
