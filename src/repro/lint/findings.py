"""Finding model, baseline/suppression file, and report rendering.

A :class:`Finding` carries a stable rule id, a severity, a ``file:line``
anchor, and a *symbol* -- the qualified name the finding is about
(``repro.model.interface:InterfaceDef.add_attribute``).  The baseline
matches on ``rule`` + ``symbol`` rather than line numbers, so unrelated
edits do not churn it, and every entry must carry a one-line
justification (``--`` separator); an entry without one is itself a
lint error.  Stale entries (nothing matches them any more) are reported
so the baseline shrinks over time instead of fossilising.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One contract violation (or advisory) found by a pass."""

    rule: str  #: stable rule id, e.g. ``read-scope``
    path: str  #: file the finding anchors to
    line: int  #: 1-based line
    symbol: str  #: qualified name the finding is about
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def baseline_key(self) -> str:
        return f"{self.rule} {self.symbol}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity}[{self.rule}] "
            f"{self.symbol}: {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class Baseline:
    """Checked-in grandfathered findings: ``<rule> <symbol> -- <why>``."""

    entries: dict[str, str] = field(default_factory=dict)  #: key -> justification
    errors: list[str] = field(default_factory=list)
    path: str | None = None

    @classmethod
    def load(cls, path: Path | None) -> "Baseline":
        baseline = cls(path=str(path) if path else None)
        if path is None or not path.exists():
            return baseline
        for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "--" not in line:
                baseline.errors.append(
                    f"{path}:{lineno}: baseline entry lacks a '-- justification'; "
                    "every grandfathered finding must say why it is allowed"
                )
                continue
            key, justification = (part.strip() for part in line.split("--", 1))
            if len(key.split()) != 2:
                baseline.errors.append(
                    f"{path}:{lineno}: baseline key must be '<rule> <symbol>', "
                    f"got {key!r}"
                )
                continue
            if not justification:
                baseline.errors.append(
                    f"{path}:{lineno}: baseline justification is empty"
                )
                continue
            baseline.entries[key] = justification
        return baseline

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Partition into (new, baselined) and list stale baseline keys."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        matched: set[str] = set()
        for finding in findings:
            if finding.baseline_key in self.entries:
                matched.add(finding.baseline_key)
                baselined.append(finding)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - matched)
        return new, baselined, stale


def render_text(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[str],
    pass_summaries: list[str],
    baseline_errors: list[str],
) -> str:
    lines: list[str] = []
    for message in baseline_errors:
        lines.append(f"baseline: {message}")
    for finding in new:
        lines.append(finding.render())
    for finding in baselined:
        lines.append(f"{finding.render()}  [baselined]")
    for key in stale:
        lines.append(
            f"baseline: stale entry {key!r} matches no current finding; "
            "remove it from the baseline file"
        )
    lines.extend(pass_summaries)
    errors = sum(1 for f in new if f.severity == "error")
    warnings = len(new) - errors
    lines.append(
        f"repro.lint: {errors} error(s), {warnings} warning(s), "
        f"{len(baselined)} baselined, {len(stale)} stale baseline entr(y/ies)"
    )
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    baselined: list[Finding],
    stale: list[str],
    passes: list[dict[str, object]],
    baseline_errors: list[str],
) -> str:
    return json.dumps(
        {
            "findings": [f.to_json() for f in new],
            "baselined": [f.to_json() for f in baselined],
            "stale_baseline": stale,
            "baseline_errors": baseline_errors,
            "passes": passes,
            "summary": {
                "errors": sum(1 for f in new if f.severity == "error"),
                "warnings": sum(1 for f in new if f.severity == "warning"),
                "baselined": len(baselined),
            },
        },
        indent=2,
        sort_keys=True,
    )
