"""Tests for the design-document generator."""

from repro.designer.docgen import document_repository, document_schema
from repro.ops.language import parse_operation
from repro.repository.repository import SchemaRepository


class TestDocumentSchema:
    def test_sections_present(self, small):
        document = document_schema(small)
        assert "# Schema design document: small" in document
        assert "## Overview" in document
        assert "## Concept schemas" in document
        assert "## Object type reference" in document
        assert "## Appendix: extended ODL" in document

    def test_concept_explanations_included(self, small):
        document = document_schema(small)
        assert "### gh:Person — generalization hierarchy" in document
        assert "Person is the root" in document

    def test_member_tables(self, small):
        document = document_schema(small)
        assert "| name | attribute | string(30) |" in document
        assert (
            "| works_in | association | to one Department "
            "(inverse Department::staff) |" in document
        )

    def test_odl_appendix_parses_back(self, small):
        from repro.model.fingerprint import schemas_equal
        from repro.odl.parser import parse_schema

        document = document_schema(small)
        appendix = document.split("## Appendix: extended ODL")[1]
        odl_text = appendix.split("```")[1]
        assert schemas_equal(small, parse_schema(odl_text, name="x"))

    def test_empty_member_placeholder(self):
        from repro.odl.parser import parse_schema

        schema = parse_schema("interface Lonely {};", name="s")
        assert "*(no members)*" in document_schema(schema)


class TestDocumentRepository:
    def test_records_steps_and_mapping(self, small):
        repository = SchemaRepository(small, custom_name="doc")
        repository.apply(
            parse_operation("add_attribute(Person, date, dob)"),
            concept_id="ww:Person",
        )
        repository.apply(parse_operation("delete_type_definition(Department)"))
        repository.generate_custom_schema()
        document = document_repository(repository)
        assert "# Customization record: small -> doc" in document
        assert "| 1 | ww:Person | `add_attribute(Person, date, dob)` | 0 |" in (
            document
        )
        assert "`delete_type_definition(Department)` | 1" in document
        assert "## Mapping summary" in document
        assert "reuse ratio" in document

    def test_untouched_repository(self, small):
        repository = SchemaRepository(small, custom_name="doc")
        document = document_repository(repository)
        assert "*(no changes applied)*" in document

    def test_local_names_section(self, small):
        repository = SchemaRepository(small, custom_name="doc")
        repository.local_names.set_alias(
            "Person", "Kunde", repository.workspace.schema
        )
        document = document_repository(repository)
        assert "## Local names" in document
        assert "Person -> Kunde" in document
