"""Tests for schema families (the ACEDB-style derivation tree)."""

import pytest

from repro.analysis.family import SchemaFamily
from repro.catalog import AATDB_SCRIPT, SACCHDB_SCRIPT, acedb_schema
from repro.model.errors import SchemaError


@pytest.fixture
def family():
    result = SchemaFamily(acedb_schema())
    result.derive("aatdb", AATDB_SCRIPT)
    result.derive("sacchdb", SACCHDB_SCRIPT)
    return result


class TestDerivation:
    def test_members_carry_full_repositories(self, family):
        member = family.member("aatdb")
        assert member.schema.name == "aatdb"
        assert member.operation_count == 16
        assert 0.8 < member.reuse_ratio < 1.0

    def test_duplicate_member_rejected(self, family):
        with pytest.raises(SchemaError):
            family.derive("aatdb", "")

    def test_unknown_member(self, family):
        with pytest.raises(SchemaError):
            family.member("flybase")

    def test_root_untouched_by_derivations(self, family):
        assert "Cell" in family.root
        assert "Phenotype" not in family.root

    def test_trivial_member(self):
        family = SchemaFamily(acedb_schema())
        member = family.derive("verbatim", "")
        assert member.reuse_ratio == 1.0


class TestInteroperation:
    def test_common_objects_between_members(self, family):
        shared = family.common_objects("aatdb", "sacchdb")
        assert "Locus" in shared
        assert "Map.loci" in shared
        # Contig survives only in AAtDB, Strain only in SacchDB.
        assert "Contig" not in shared
        assert "Strain.genotype" not in shared

    def test_family_common_objects(self, family):
        shared = family.family_common_objects()
        assert "Locus" in shared
        assert shared == family.common_objects("aatdb", "sacchdb")

    def test_modified_constructs_still_common(self, family):
        # Locus.symbol was resized in AAtDB (modified, not deleted):
        # it remains a semantically identical construct.
        assert "Locus.symbol" in family.common_objects("aatdb", "sacchdb")

    def test_affinity_matrix_shape(self, family):
        matrix = family.affinities()
        assert len(matrix) == 3
        assert all(matrix[i][i] == 1.0 for i in range(3))
        assert matrix[0][1] == pytest.approx(matrix[1][0])

    def test_render(self, family):
        rendered = family.render()
        assert "+- aatdb: 16 operations" in rendered
        assert "aatdb <-> sacchdb:" in rendered
        assert "common objects" in rendered

    def test_empty_family_common_objects(self):
        assert SchemaFamily(acedb_schema()).family_common_objects() == set()
