"""Base machinery for schema modification operations.

Every operation of the paper's Appendix A grammar is one
:class:`SchemaOperation` subclass.  Operations are small immutable command
objects with a uniform life cycle:

1. ``validate(schema, context)`` -- check the operation's own constraints
   (existence, name freedom, semantic stability, ...) without mutating
   anything;
2. ``apply(schema, context)`` -- validate, perform the change, and return
   an :class:`Undo` closure that restores the previous state exactly.

``context`` carries the *reference schema* -- the original shrink wrap
schema whose generalization hierarchy bounds all move operations
(Section 3.2, "semantic stability": "attributes, relationships, and
methods are moved only within the generalization hierarchy established by
the shrink wrap schema").

Class attributes declare each operation's place in the paper's tables:

* ``op_name`` -- the canonical name of the Appendix A grammar;
* ``candidate`` / ``sub_candidate`` -- the row of Tables 2/3 the
  operation covers (e.g. ``Attribute`` / ``Type``);
* ``action`` -- ``add`` / ``delete`` / ``modify``;
* ``admissible_in`` -- the concept schema types in which the operation
  may be issued (the Table 1 matrix, materialised in
  :mod:`repro.ops.registry`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, fields
from typing import Callable, ClassVar

from repro.concepts.base import ConceptKind
from repro.model.errors import ReproError
from repro.model.mutation import ALL_ASPECTS, Aspect
from repro.model.schema import Schema


class OperationError(ReproError):
    """Base class for failures raised by modification operations."""


class ConstraintViolation(OperationError):
    """The operation's own preconditions do not hold on this schema."""


class SemanticStabilityError(ConstraintViolation):
    """A move crosses the shrink wrap generalization hierarchy.

    Section 3.2: information may only move between object types on one
    generalization path, because replacing a participant with a type that
    is not semantically comparable yields a semantically distinct
    construct.
    """


class InadmissibleOperationError(OperationError):
    """The operation is not allowed in the issuing concept schema type.

    Raised by the designer / registry when, e.g., ``modify_supertype`` is
    issued through a wagon wheel (Table 1 reserves it for generalization
    hierarchies).
    """


#: Restores the schema state from immediately before an ``apply``.
Undo = Callable[[], None]


@dataclass(frozen=True)
class OperationContext:
    """Ambient information operations validate against.

    ``reference`` is the shrink wrap schema; when ``None`` (free-standing
    use of the operation layer, outside a repository), stability checks
    fall back to the schema being edited.
    """

    reference: Schema | None = None

    def stability_hierarchy(self, schema: Schema) -> Schema:
        """The schema whose generalization hierarchy bounds moves."""
        return self.reference if self.reference is not None else schema

    def check_isa_related(
        self, schema: Schema, first: str, second: str, what: str
    ) -> None:
        """Raise unless *first* and *second* share a generalization path.

        Types added during customization (absent from the reference
        schema) are checked against the current workspace hierarchy
        instead -- the designer may first build a subtype and then move
        information into it.
        """
        hierarchy = self.stability_hierarchy(schema)
        if first in hierarchy and second in hierarchy:
            related = hierarchy.isa_related(first, second)
        else:
            related = first in schema and second in schema and schema.isa_related(
                first, second
            )
        if not related:
            raise SemanticStabilityError(
                f"{what}: {first!r} and {second!r} are not on one "
                "generalization path (semantic stability)"
            )


#: Context used when no repository is involved.
FREE_CONTEXT = OperationContext()


class SchemaOperation(abc.ABC):
    """One schema modification command of the Appendix A language."""

    op_name: ClassVar[str]
    candidate: ClassVar[str]
    sub_candidate: ClassVar[str] = ""
    action: ClassVar[str]
    admissible_in: ClassVar[frozenset[ConceptKind]]
    #: :class:`~repro.model.mutation.Aspect` members this operation may
    #: change on its affected types.  The default claims everything;
    #: concrete operations narrow it so incremental validation can skip
    #: rules whose read scope is disjoint (see
    #: :data:`repro.model.validation.RULE_SCOPES`).
    touched_aspects: ClassVar[frozenset[Aspect]] = ALL_ASPECTS
    #: True for operations that never change which populations a schema
    #: admits (operation signatures, extent renames, pure reorderings of
    #: unordered clauses).  Declares ``instance_impact()`` empty, which
    #: the example-preservation oracle and ``Workspace.preview`` rely on.
    instance_neutral: ClassVar[bool] = False

    @abc.abstractmethod
    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        """Raise :class:`ConstraintViolation` when preconditions fail."""

    @abc.abstractmethod
    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        """Validate, mutate *schema*, and return an undo closure."""

    @abc.abstractmethod
    def arguments(self) -> tuple[str, ...]:
        """The operation's arguments rendered as operation-language text."""

    def to_text(self) -> str:
        """Render this operation in the Appendix A operation language."""
        return f"{self.op_name}({', '.join(self.arguments())})"

    def describe(self) -> str:
        """Human-readable one-liner for logs and feedback."""
        return self.to_text()

    @abc.abstractmethod
    def affected_types(self) -> tuple[str, ...]:
        """Interface names this operation touches (for impact/mapping)."""

    def validation_scope(self) -> tuple[tuple[str, ...], frozenset[Aspect]]:
        """(affected type names, aspects) for dirty-set derivation.

        The workspace feeds this to
        :meth:`repro.model.schema.Schema.note_validation_scope` after a
        successful apply/undo/redo, as a declarative complement to the
        mutator-level spine records.
        """
        return self.affected_types(), self.touched_aspects

    # ------------------------------------------------------------------
    # Effect signatures (static plan analysis, repro.analysis.plan)
    # ------------------------------------------------------------------
    #
    # The default signature is derived from the validation-scope
    # machinery above: the op may write every declared aspect of every
    # affected type, reads what it writes, and requires each affected
    # name to exist.  Concrete operations narrow the hooks below; the
    # precision contract (writes/reads over-approximate, requires
    # under-approximates, creates/deletes exact) is documented in
    # :mod:`repro.ops.effects`.

    def created_names(self) -> tuple[str, ...]:
        """Interface names this operation introduces into the schema."""
        return ()

    def deleted_names(self) -> tuple[str, ...]:
        """Interface names this operation removes from the schema."""
        return ()

    def required_names(self) -> tuple[str, ...]:
        """Names whose absence makes ``validate`` reject the operation."""
        return self.affected_types()

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        """(interface, Aspect) cells ``apply`` (with cascades) may mutate."""
        return frozenset(
            (name, aspect)
            for name in self.affected_types()
            for aspect in self.touched_aspects
        )

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        """(interface, Aspect) cells ``validate`` may inspect."""
        return self.written_footprint()

    def instance_impact(self) -> frozenset[str]:
        """Interface names whose admitted populations may change.

        The instance-level analogue of ``written_footprint()``: an
        over-approximation of the interfaces for which
        :func:`repro.instances.check.check_population` may give a
        different verdict after ``apply``.  Defaults to every written,
        created, or deleted name; operations that only rename extents,
        edit operation signatures, or reorder unordered clauses set
        :attr:`instance_neutral` and declare the empty set.
        """
        if self.instance_neutral:
            return frozenset()
        impacted = {name for name, _ in self.written_footprint()}
        impacted.update(self.created_names())
        impacted.update(self.deleted_names())
        return frozenset(impacted)

    def effect_signature(self) -> "EffectSignature":
        """The operation's static footprint (see :mod:`repro.ops.effects`)."""
        from repro.ops.effects import EffectSignature

        return EffectSignature(
            reads=self.read_footprint(),
            writes=self.written_footprint(),
            creates=frozenset(self.created_names()),
            deletes=frozenset(self.deleted_names()),
            requires=frozenset(self.required_names()),
            instances=self.instance_impact(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.to_text()}>"

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return _field_values(self) == _field_values(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, _field_values(self)))


def _field_values(operation: SchemaOperation) -> tuple:
    """Dataclass field values; operations are all frozen dataclasses."""
    return tuple(
        getattr(operation, f.name) for f in fields(operation)  # type: ignore[arg-type]
    )


def render_list(items: tuple[str, ...] | list[str]) -> str:
    """Render a parenthesised identifier list, e.g. ``(a, b)`` or ``()``."""
    return f"({', '.join(items)})"
