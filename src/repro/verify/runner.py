"""Campaign runner and CLI for the differential verification subsystem.

``python -m repro.verify`` sweeps the fuzzer over every catalog schema
plus a ladder of generated schemas, one seeded run per (subject, seed)
pair.  On a failure it delta-debugs the trace to a minimal reproducer
and prints it as a ready-to-paste pytest module, then exits non-zero --
the shrunk test is the bug report.

The smoke configuration (``make fuzz-smoke``) keeps the sweep around
half a minute; the acceptance configuration (``--seeds 25 --steps 200``)
is the deeper soak the ROADMAP's verification contract calls for.

Runs are declared as picklable :class:`RunSpec` values, so ``--jobs``
can shard them over a ``multiprocessing`` pool: each worker rebuilds
its subject from the spec, fuzzes (and shrinks) in isolation, and
returns its full printed output, which the parent emits strictly in
submission order -- byte-identical to a sequential sweep up to the
first failure.
"""

from __future__ import annotations

import argparse
import io
import os
import sys
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.catalog import SCHEMA_BUILDERS, load
from repro.model.schema import Schema
from repro.verify.fuzzer import FuzzReport, fuzz
from repro.verify.invariants import (
    DIFFERENTIAL_STRIDE_DEFAULT,
    check_schema,
    describe_registry,
    set_differential_stride,
)
from repro.verify.shrinker import emit_pytest, shrink
from repro.workload.generator import WorkloadSpec, generate_schema


@dataclass(frozen=True)
class Subject:
    """One reference schema the campaign fuzzes against.

    ``source`` is an expression rebuilding the schema -- it goes
    verbatim into emitted reproducers, so it must be self-contained
    given the catalog / workload imports.
    """

    name: str
    source: str
    build: Callable[[], Schema]


def catalog_subjects() -> list[Subject]:
    """Every shrink wrap schema shipped in the catalog."""
    return [
        Subject(name, f"load({name!r})", lambda name=name: load(name))
        for name in SCHEMA_BUILDERS
    ]


def generated_subject(seed: int, types: int = 14) -> Subject:
    """A deterministic synthetic schema (exercises generated shapes)."""
    spec = WorkloadSpec(types=types, seed=seed)
    return Subject(
        f"synthetic_{types}_{seed}",
        f"generate_schema({spec!r})",
        lambda: generate_schema(spec),
    )


def campaign_subjects(seeds: int) -> list[tuple[Subject, int]]:
    """(subject, fuzz seed) pairs: catalog and synthetic interleaved."""
    catalog = catalog_subjects()
    pairs: list[tuple[Subject, int]] = []
    for seed in range(seeds):
        pairs.append((catalog[seed % len(catalog)], seed))
        pairs.append((generated_subject(seed), seed))
    return pairs


# Sizes the large profile ladders through, cycled per seed.  Each step
# on these subjects is cheap, but every invariant sweep is a full scan,
# so run_campaign checks them sparsely (see large_check_every).
LARGE_SIZES = (1_000, 2_000, 5_000, 10_000)


def large_subject(seed: int, types: int) -> Subject:
    """A large synthetic schema: deep ISA chain plus a wide hub.

    These shapes (thousands of types, a supertype chain hundreds deep, a
    wagon-wheel hub with hundreds of spokes) are the ones that exposed
    the PR 6 scale bugs; the profile keeps fuzzing them.
    """
    spec = WorkloadSpec(
        types=types,
        seed=seed,
        isa_chain=types // 5,
        hub_fanout=min(200, types // 5),
        part_of_chain=min(100, types // 10),
        instance_of_chain=min(50, types // 20),
    )
    return Subject(
        f"large_{types}_{seed}",
        f"generate_schema({spec!r})",
        lambda: generate_schema(spec),
    )


def large_subjects(seeds: int) -> list[tuple[Subject, int]]:
    """(subject, fuzz seed) pairs laddering through LARGE_SIZES."""
    return [
        (large_subject(seed, LARGE_SIZES[seed % len(LARGE_SIZES)]), seed)
        for seed in range(seeds)
    ]


@dataclass(frozen=True)
class RunSpec:
    """One (subject, seed) run, declaratively -- picklable, so a
    ``--jobs`` worker process can rebuild the subject on its side.

    ``family`` selects the builder: ``"catalog"`` (``name`` is the
    catalog schema), ``"synthetic"`` or ``"large"`` (``types`` and
    ``seed`` parameterize the workload generator).
    """

    family: str
    name: str
    seed: int
    steps: int
    check_every: int
    cheap_every: int = 1
    types: int = 0
    scoped: bool = False
    with_populations: bool = False
    do_shrink: bool = True
    differential_stride: int | None = None


def subject_for(spec: RunSpec) -> Subject:
    """Rebuild the spec's subject (deterministic in the spec alone)."""
    if spec.family == "catalog":
        name = spec.name
        return Subject(name, f"load({name!r})", lambda: load(name))
    if spec.family == "synthetic":
        return generated_subject(spec.seed, spec.types)
    if spec.family == "large":
        return large_subject(spec.seed, spec.types)
    raise ValueError(f"unknown run family {spec.family!r}")


def execute_run(spec: RunSpec) -> tuple[str, FuzzReport | None]:
    """One full run: build, baseline check, fuzz, shrink on failure.

    Returns everything the run would have printed plus its report
    (``None`` when the reference schema was dirty and the run was
    skipped).  Workers call this; the sequential path calls it too, so
    both produce identical output.
    """
    if spec.differential_stride is not None:
        set_differential_stride(spec.differential_stride)
    out = io.StringIO()
    subject = subject_for(spec)
    reference = subject.build()
    baseline = check_schema(reference)
    if baseline:
        print(f"SKIP {subject.name}: reference schema is dirty", file=out)
        for violation in baseline:
            print(f"  {violation}", file=out)
        return out.getvalue(), None
    report = fuzz(
        reference,
        seed=spec.seed,
        steps=spec.steps,
        check_every=spec.check_every,
        subject_name=subject.name,
        cheap_every=spec.cheap_every,
        with_populations=spec.with_populations,
        scoped_checks=spec.scoped,
    )
    print(report.summary(), file=out)
    if report.sampled_sweeps:
        print(
            f"  note: {report.sampled_sweeps} sweep(s) stride-sampled the "
            "per-type index differentials instead of probing every type "
            "(tune with --differential-stride; 0 = exhaustive)",
            file=out,
        )
    if report.failure is not None:
        print(report.failure.render(), file=out)
        if spec.do_shrink:
            result = shrink(
                subject.build(),
                report.trace,
                report.failure,
                with_populations=spec.with_populations,
            )
            print(result.summary(), file=out)
            print("--- minimal reproducer ---", file=out)
            print(
                emit_pytest(
                    subject.source,
                    result.steps,
                    result.failure,
                    test_name=(
                        f"test_fuzz_{subject.name}_seed{spec.seed}"
                    ),
                ),
                file=out,
            )
    return out.getvalue(), report


def _resolve_jobs(jobs: int | str | None) -> int:
    """``--jobs`` value -> worker count (``auto``/``0`` = one per core)."""
    if jobs in (None, 1):
        return 1
    if jobs in ("auto", 0, "0"):
        return max(1, os.cpu_count() or 1)
    return max(1, int(jobs))


def run_campaign(
    seeds: int,
    steps: int,
    check_every: int = 4,
    only_schema: str | None = None,
    do_shrink: bool = True,
    fail_fast: bool = True,
    large_seeds: int = 0,
    large_steps: int = 60,
    large_check_every: int = 30,
    with_populations: bool = False,
    scoped_large: bool = True,
    differential_stride: int | None = None,
    jobs: int | str | None = 1,
    out=sys.stdout,
) -> list[FuzzReport]:
    """Run the sweep; prints one summary line per run, reproducers on
    failure.  Returns every report (failures included).

    ``large_seeds`` appends the large-schema profile: 1k-10k-type
    subjects fuzzed for ``large_steps`` steps with *both* invariant
    tiers spaced ``large_check_every`` steps apart.  With
    ``scoped_large`` (the default) those mid-run sweeps run in
    O(changed) scoped mode, so their cost tracks the steps between
    sweeps rather than the schema; each run still ends with a full
    sweep.  ``jobs`` > 1 shards the runs over a multiprocessing pool,
    one seed-sharded run per task, output merged in submission order.
    """
    catalog_names = list(SCHEMA_BUILDERS)
    specs: list[RunSpec] = []
    for seed in range(seeds):
        shared = dict(
            seed=seed,
            steps=steps,
            check_every=check_every,
            cheap_every=1,
            with_populations=with_populations,
            do_shrink=do_shrink,
            differential_stride=differential_stride,
        )
        specs.append(RunSpec(
            family="catalog",
            name=catalog_names[seed % len(catalog_names)],
            **shared,
        ))
        synthetic = generated_subject(seed)
        specs.append(RunSpec(
            family="synthetic", name=synthetic.name, types=14, **shared,
        ))
    specs.extend(
        RunSpec(
            family="large",
            name=subject.name,
            seed=seed,
            steps=large_steps,
            check_every=large_check_every,
            cheap_every=large_check_every,
            types=LARGE_SIZES[seed % len(LARGE_SIZES)],
            scoped=scoped_large,
            with_populations=with_populations,
            do_shrink=do_shrink,
            differential_stride=differential_stride,
        )
        for subject, seed in large_subjects(large_seeds)
    )
    if only_schema is not None:
        specs = [spec for spec in specs if spec.name == only_schema]
        if not specs:
            raise SystemExit(f"unknown subject {only_schema!r}")
    worker_count = _resolve_jobs(jobs)
    reports: list[FuzzReport] = []
    if worker_count == 1 or len(specs) <= 1:
        for spec in specs:
            text, report = execute_run(spec)
            out.write(text)
            if report is None:
                continue
            reports.append(report)
            if report.failure is not None and fail_fast:
                break
        return reports
    import multiprocessing

    with multiprocessing.Pool(min(worker_count, len(specs))) as pool:
        results = pool.imap(execute_run, specs)
        for text, report in results:
            out.write(text)
            if report is None:
                continue
            reports.append(report)
            if report.failure is not None and fail_fast:
                pool.terminate()
                break
    return reports


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description=(
            "Differential verification: fuzz operation sequences against "
            "the invariant registry, shrinking any failure to a minimal "
            "pytest reproducer."
        ),
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="fuzz seeds per subject family (default 10)",
    )
    parser.add_argument(
        "--steps", type=int, default=100,
        help="operations per fuzz run (default 100)",
    )
    parser.add_argument(
        "--check-every", type=int, default=4,
        help="run expensive-tier invariants every N steps (default 4)",
    )
    parser.add_argument(
        "--large-seeds", type=int, default=0,
        help=(
            "append N large-schema runs (1k-10k types, deep ISA chains, "
            "wide hubs); default 0 (off)"
        ),
    )
    parser.add_argument(
        "--large-steps", type=int, default=60,
        help="operations per large-schema run (default 60)",
    )
    parser.add_argument(
        "--large-check-every", type=int, default=30,
        help=(
            "invariant cadence (both tiers) on large subjects "
            "(default 30)"
        ),
    )
    parser.add_argument(
        "--schema", default=None,
        help="restrict the sweep to one subject name",
    )
    parser.add_argument(
        "--with-populations", action="store_true",
        help=(
            "carry witness populations alongside each schema: at the "
            "expensive-tier cadence, generate a population the current "
            "schema must admit and cross-check it against a structural "
            "copy (reproducers then include the witnessing data)"
        ),
    )
    parser.add_argument(
        "--jobs", default="1",
        help=(
            "shard runs over N worker processes ('auto' or 0 = one per "
            "core); output is merged in submission order (default 1)"
        ),
    )
    parser.add_argument(
        "--differential-stride", type=int, default=None,
        help=(
            "per-type index differentials sample past this many types "
            f"(default {DIFFERENTIAL_STRIDE_DEFAULT}; 0 probes every "
            "type exhaustively); sampled sweeps are flagged in the run "
            "summary"
        ),
    )
    parser.add_argument(
        "--full-sweeps-large", action="store_true",
        help=(
            "disable O(changed) scoped sweeps on the large profile and "
            "run every mid-run sweep over the whole schema"
        ),
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without delta-debugging them",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="continue the sweep past the first failure",
    )
    parser.add_argument(
        "--list-invariants", action="store_true",
        help="print the invariant registry and exit",
    )
    options = parser.parse_args(argv)
    if options.list_invariants:
        print(describe_registry())
        return 0
    if options.differential_stride is not None:
        set_differential_stride(options.differential_stride)
    reports = run_campaign(
        seeds=options.seeds,
        steps=options.steps,
        check_every=options.check_every,
        only_schema=options.schema,
        do_shrink=not options.no_shrink,
        fail_fast=not options.keep_going,
        large_seeds=options.large_seeds,
        large_steps=options.large_steps,
        large_check_every=options.large_check_every,
        with_populations=options.with_populations,
        scoped_large=not options.full_sweeps_large,
        differential_stride=options.differential_stride,
        jobs=options.jobs,
    )
    failures = [report for report in reports if not report.ok]
    accepted = sum(report.accepted for report in reports)
    rejected = sum(report.rejected for report in reports)
    scoped = sum(report.scoped_sweeps for report in reports)
    sampled = sum(report.sampled_sweeps for report in reports)
    line = (
        f"{len(reports)} runs, {accepted} operations accepted, "
        f"{rejected} rejected, {len(failures)} failing runs"
    )
    if scoped:
        line += f", {scoped} scoped sweeps"
    if sampled:
        line += (
            f" [note: {sampled} sweeps stride-sampled the per-type "
            "differentials; pass --differential-stride 0 for exhaustive]"
        )
    print(line)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
