"""Relationship ends of the extended ODMG object model.

ODMG relationships are declared twice, once in each participating
interface, with each declaration naming its inverse traversal path.  We
model each declaration as a :class:`RelationshipEnd` owned by an interface;
schema validation (:mod:`repro.model.validation`) checks that the two ends
of every relationship agree.

The paper extends the ODMG Object Model with two additional relationship
kinds (Section 3.1):

* **part-of** (aggregation) -- whole/part with an implicit 1:N cardinality
  from the whole to its components;
* **instance-of** -- generic specification vs. specific instances, also
  implicitly 1:N from the generic entity to its instances.

The implicit 1:N cardinality is enforced structurally: the *many* end of a
part-of or instance-of relationship (``TO_PARTS`` / ``TO_INSTANCES``) must
carry a collection type, and the *one* end (``TO_WHOLE`` / ``TO_GENERIC``)
must be a plain interface reference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.model.errors import InvalidModelError
from repro.model.types import CollectionType, NamedType, TypeRef


class RelationshipKind(enum.Enum):
    """The three relationship families of the extended object model."""

    ASSOCIATION = "association"
    PART_OF = "part_of"
    INSTANCE_OF = "instance_of"

    def keyword(self) -> str:
        """The ODL keyword prefix for this kind ('' for associations)."""
        if self is RelationshipKind.ASSOCIATION:
            return ""
        return self.value


class Cardinality(enum.Enum):
    """Cardinality of one relationship end (one target or many)."""

    ONE = "one"
    MANY = "many"


@dataclass(frozen=True, slots=True)
class RelationshipEnd:
    """One declared traversal path of a (binary, inverse-paired) relationship.

    Fields follow the grammar of Appendix A:

    * ``name`` -- the traversal path name (``<traversal_pathname_1>``);
    * ``target`` -- the ``<target_of_path>``: either ``NamedType`` (a
      to-one end) or ``CollectionType`` over a ``NamedType`` (a to-many
      end, e.g. ``set<Employee>``);
    * ``inverse_type`` / ``inverse_name`` -- the ``<inverse_traversal_path>``
      written ``Type::path`` in ODL;
    * ``order_by`` -- attribute names of the target type ordering a
      to-many end (``<order_by_list>``);
    * ``kind`` -- association, part-of, or instance-of.
    """

    name: str
    target: TypeRef
    inverse_type: str
    inverse_name: str
    kind: RelationshipKind = RelationshipKind.ASSOCIATION
    order_by: tuple[str, ...] = field(default_factory=tuple)
    # Derived from ``target`` once at construction (the dataclass is
    # frozen): hot-path graph walks read these hundreds of thousands of
    # times per plan, so recomputing the isinstance chain per access is
    # measurable at 10k-type scale.
    _is_to_many: bool = field(init=False, repr=False, compare=False)
    _target_type: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name or not (self.name[0].isalpha() or self.name[0] == "_"):
            raise InvalidModelError(f"invalid traversal path name {self.name!r}")
        if not isinstance(self.order_by, tuple):
            object.__setattr__(self, "order_by", tuple(self.order_by))
        self._check_target()
        target = self.target
        many = isinstance(target, CollectionType)
        object.__setattr__(self, "_is_to_many", many)
        object.__setattr__(
            self, "_target_type", target.element.name if many else target.name
        )
        if not self.inverse_type or not self.inverse_name:
            raise InvalidModelError(
                f"relationship {self.name!r} must declare an inverse "
                "traversal path (Type::path)"
            )
        if self.order_by and not self.is_to_many:
            raise InvalidModelError(
                f"relationship {self.name!r} is to-one; order_by only "
                "applies to to-many ends"
            )

    def _check_target(self) -> None:
        target = self.target
        if isinstance(target, NamedType):
            return
        if isinstance(target, CollectionType) and isinstance(
            target.element, NamedType
        ):
            return
        raise InvalidModelError(
            f"relationship {self.name!r} must target an interface or a "
            f"collection of interfaces, got {target!r}"
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def is_to_many(self) -> bool:
        """True when the end targets a collection of objects."""
        return self._is_to_many

    @property
    def cardinality(self) -> Cardinality:
        """One-way cardinality of this end."""
        return Cardinality.MANY if self.is_to_many else Cardinality.ONE

    @property
    def target_type(self) -> str:
        """Name of the interface this end points at."""
        return self._target_type

    @property
    def collection_kind(self) -> str | None:
        """Collection constructor of a to-many end (``set``/``list``/...)."""
        if isinstance(self.target, CollectionType):
            return self.target.kind
        return None

    @property
    def role(self) -> str:
        """Descriptive role of this end within its relationship kind.

        Associations have no distinguished roles; part-of and instance-of
        ends are classified by cardinality, reflecting the implicit 1:N of
        those relationship kinds:

        * part-of: the whole's ``to_parts`` end is to-many, the part's
          ``to_whole`` end is to-one;
        * instance-of: the generic entity's ``to_instances`` end is
          to-many, the instance's ``to_generic`` end is to-one.
        """
        if self.kind is RelationshipKind.PART_OF:
            return "to_parts" if self.is_to_many else "to_whole"
        if self.kind is RelationshipKind.INSTANCE_OF:
            return "to_instances" if self.is_to_many else "to_generic"
        return "association"

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------

    def with_target(self, target: TypeRef) -> "RelationshipEnd":
        """Return a copy pointing at a different target-of-path."""
        return replace(self, target=target)

    def with_target_type(self, type_name: str) -> "RelationshipEnd":
        """Return a copy re-targeted at *type_name*, keeping cardinality.

        This is the model-level core of the paper's
        ``modify_relationship_target_type`` example (Figure 8): a
        ``set<Employee>`` target becomes ``set<Person>``.
        """
        if isinstance(self.target, CollectionType):
            new_target: TypeRef = CollectionType(
                self.target.kind, NamedType(type_name), self.target.size
            )
        else:
            new_target = NamedType(type_name)
        return replace(self, target=new_target)

    def with_inverse(self, inverse_type: str, inverse_name: str) -> "RelationshipEnd":
        """Return a copy with a re-pointed inverse traversal path."""
        return replace(self, inverse_type=inverse_type, inverse_name=inverse_name)

    def with_order_by(self, order_by: tuple[str, ...]) -> "RelationshipEnd":
        """Return a copy with a different order-by attribute list."""
        return replace(self, order_by=tuple(order_by))

    def __str__(self) -> str:
        prefix = self.kind.keyword()
        head = f"{prefix} relationship" if prefix else "relationship"
        text = (
            f"{head} {self.target} {self.name} inverse "
            f"{self.inverse_type}::{self.inverse_name}"
        )
        if self.order_by:
            text += f" order_by ({', '.join(self.order_by)})"
        return text


def association(
    name: str,
    target: TypeRef,
    inverse_type: str,
    inverse_name: str,
    order_by: tuple[str, ...] = (),
) -> RelationshipEnd:
    """Build a plain (ODMG) association end."""
    return RelationshipEnd(
        name, target, inverse_type, inverse_name,
        RelationshipKind.ASSOCIATION, tuple(order_by),
    )


def part_of(
    name: str,
    target: TypeRef,
    inverse_type: str,
    inverse_name: str,
    order_by: tuple[str, ...] = (),
) -> RelationshipEnd:
    """Build a part-of (aggregation) end.

    Whether this is the whole's to-parts end or the part's to-whole end is
    determined by the target: a collection target makes it to-parts.
    """
    return RelationshipEnd(
        name, target, inverse_type, inverse_name,
        RelationshipKind.PART_OF, tuple(order_by),
    )


def instance_of(
    name: str,
    target: TypeRef,
    inverse_type: str,
    inverse_name: str,
    order_by: tuple[str, ...] = (),
) -> RelationshipEnd:
    """Build an instance-of end (generic entity vs. instances)."""
    return RelationshipEnd(
        name, target, inverse_type, inverse_name,
        RelationshipKind.INSTANCE_OF, tuple(order_by),
    )
