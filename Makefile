PYTHON ?= python
PYTHONPATH := src

.PHONY: test lint bench bench-smoke fuzz fuzz-smoke

## tier-1 suite (unit + integration under tests/)
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## static checks: the spine-emission AST check always runs; ruff runs
## when installed (the sandbox image ships without it, CI installs it)
lint:
	$(PYTHON) tools/check_mutators.py
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks tools; \
	else \
		echo "lint: ruff not installed; skipping style pass"; \
	fi

## full benchmark sweep; reports land in benchmarks/reports/
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

## fast scaling regression tripwire (reduced sizes, relaxed floors)
bench-smoke:
	REPRO_BENCH_SMOKE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/test_bench_index_scaling.py \
		benchmarks/test_bench_validation.py \
		benchmarks/test_bench_spine.py -q

## differential fuzzing soak: every invariant over catalog + generated
## schemas, shrinking any failure to a minimal pytest reproducer
fuzz:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.verify --seeds 25 --steps 200

## ~30s fuzzing tripwire for CI (fixed seeds, deterministic)
fuzz-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.verify --seeds 20 --steps 200 \
		--check-every 3
