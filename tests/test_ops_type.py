"""Unit tests for add/delete type definition operations."""

import pytest

from repro.concepts.base import ConceptKind
from repro.model.fingerprint import schema_fingerprint
from repro.ops.base import ConstraintViolation
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition


class TestAddTypeDefinition:
    def test_adds_empty_interface(self, small):
        AddTypeDefinition("Project").apply(small)
        assert "Project" in small
        assert small.get("Project").attributes == {}

    def test_duplicate_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            AddTypeDefinition("Person").apply(small)

    def test_undo_removes(self, small):
        before = schema_fingerprint(small)
        undo = AddTypeDefinition("Project").apply(small)
        undo()
        assert schema_fingerprint(small) == before

    def test_admissible_everywhere(self):
        assert AddTypeDefinition.admissible_in == frozenset(ConceptKind)

    def test_text_form(self):
        assert AddTypeDefinition("X").to_text() == "add_type_definition(X)"

    def test_affected_types(self):
        assert AddTypeDefinition("X").affected_types() == ("X",)


class TestDeleteTypeDefinition:
    def test_deletes_unreferenced_type(self, small):
        AddTypeDefinition("Project").apply(small)
        DeleteTypeDefinition("Project").apply(small)
        assert "Project" not in small

    def test_referenced_type_rejected(self, small):
        # Department is targeted by Employee.works_in.
        with pytest.raises(ConstraintViolation) as info:
            DeleteTypeDefinition("Department").apply(small)
        assert "referenced" in str(info.value)

    def test_supertype_in_use_rejected(self, small):
        with pytest.raises(ConstraintViolation):
            DeleteTypeDefinition("Person").apply(small)

    def test_unknown_type_rejected(self, small):
        from repro.model.errors import UnknownTypeError

        with pytest.raises(UnknownTypeError):
            DeleteTypeDefinition("Ghost").apply(small)

    def test_undo_restores_content_and_position(self, small):
        # Make Employee deletable by clearing the relationship pair first.
        small.get("Employee").remove_relationship("works_in")
        small.get("Department").remove_relationship("staff")
        before = schema_fingerprint(small)
        order_before = small.type_names()
        undo = DeleteTypeDefinition("Employee").apply(small)
        assert "Employee" not in small
        undo()
        assert schema_fingerprint(small) == before
        assert small.type_names() == order_before
