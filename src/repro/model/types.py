"""Type system for the extended ODMG object model.

Three kinds of type reference appear in schemas:

* :class:`ScalarType` -- a built-in literal type (``string``, ``short``,
  ``float`` ...), optionally sized (``string(30)``);
* :class:`NamedType` -- a reference, by name, to an interface defined in
  the schema.  Name-based references are deliberate: the paper assumes
  *name equivalence* (Section 3.2), so constructs are identified by name
  and moving or deleting an interface never requires pointer fix-ups;
* :class:`CollectionType` -- ``set<T>``, ``list<T>``, ``bag<T>``, or
  ``array<T[, size]>`` over an element type.

All types are immutable value objects: they hash and compare by content
and render back to extended-ODL syntax via ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.model.errors import InvalidModelError

#: Scalar type names recognised by the extended ODL grammar.
SCALAR_TYPE_NAMES = frozenset(
    {
        "boolean",
        "char",
        "octet",
        "short",
        "long",
        "float",
        "double",
        "string",
        "date",
        "time",
        "timestamp",
        "interval",
        "void",
    }
)

#: Scalar types that accept a size argument, e.g. ``string(30)``.
SIZED_SCALAR_NAMES = frozenset({"string", "char"})

#: Collection constructors of the object model.  The paper's future-work
#: section mentions set-of / list-of / bag-of / array-of explicitly.
COLLECTION_KINDS = ("set", "list", "bag", "array")


@dataclass(frozen=True, slots=True)
class ScalarType:
    """A built-in literal type such as ``string`` or ``string(30)``.

    ``size`` is only meaningful for the sized scalars (``string``,
    ``char``); supplying it for any other scalar raises
    :class:`~repro.model.errors.InvalidModelError`.
    """

    name: str
    size: int | None = None

    def __post_init__(self) -> None:
        if self.name not in SCALAR_TYPE_NAMES:
            raise InvalidModelError(f"unknown scalar type {self.name!r}")
        if self.size is not None:
            if self.name not in SIZED_SCALAR_NAMES:
                raise InvalidModelError(
                    f"scalar type {self.name!r} does not accept a size"
                )
            if self.size <= 0:
                raise InvalidModelError(
                    f"size of {self.name!r} must be positive, got {self.size}"
                )

    def __str__(self) -> str:
        if self.size is not None:
            return f"{self.name}({self.size})"
        return self.name


@dataclass(frozen=True, slots=True)
class NamedType:
    """A reference to an interface (object type) by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise InvalidModelError(f"invalid interface name {self.name!r}")
        if self.name in SCALAR_TYPE_NAMES:
            raise InvalidModelError(
                f"{self.name!r} is a scalar type name, not an interface name"
            )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class CollectionType:
    """A collection over an element type: ``set<T>``, ``array<T, 10>``, ...

    ``size`` is only allowed for ``array``.
    """

    kind: str
    element: "TypeRef"
    size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in COLLECTION_KINDS:
            raise InvalidModelError(f"unknown collection kind {self.kind!r}")
        if self.size is not None and self.kind != "array":
            raise InvalidModelError(
                f"collection kind {self.kind!r} does not accept a size"
            )
        if self.size is not None and self.size <= 0:
            raise InvalidModelError(
                f"array size must be positive, got {self.size}"
            )
        if isinstance(self.element, ScalarType) and self.element.name == "void":
            raise InvalidModelError("collections of void are not allowed")

    def __str__(self) -> str:
        if self.size is not None:
            return f"{self.kind}<{self.element}, {self.size}>"
        return f"{self.kind}<{self.element}>"


#: Anything that can appear where the grammar says <domain-type>.
TypeRef = Union[ScalarType, NamedType, CollectionType]

#: Convenience singleton for operation signatures without a return value.
VOID = ScalarType("void")


def is_type_ref(value: object) -> bool:
    """Return ``True`` if *value* is one of the three type-reference kinds."""
    return isinstance(value, (ScalarType, NamedType, CollectionType))


def referenced_interfaces(type_ref: TypeRef) -> set[str]:
    """Collect every interface name mentioned by *type_ref*.

    Used by schema validation to find dangling type references.
    """
    if isinstance(type_ref, NamedType):
        return {type_ref.name}
    if isinstance(type_ref, CollectionType):
        return referenced_interfaces(type_ref.element)
    return set()


def scalar(name: str, size: int | None = None) -> ScalarType:
    """Shorthand constructor: ``scalar("string", 30)``."""
    return ScalarType(name, size)


def named(name: str) -> NamedType:
    """Shorthand constructor: ``named("Course")``."""
    return NamedType(name)


def set_of(element: TypeRef | str) -> CollectionType:
    """Shorthand constructor: ``set_of("Employee")`` -> ``set<Employee>``."""
    return CollectionType("set", _coerce(element))


def list_of(element: TypeRef | str) -> CollectionType:
    """Shorthand constructor for ``list<T>``."""
    return CollectionType("list", _coerce(element))


def bag_of(element: TypeRef | str) -> CollectionType:
    """Shorthand constructor for ``bag<T>``."""
    return CollectionType("bag", _coerce(element))


def array_of(element: TypeRef | str, size: int | None = None) -> CollectionType:
    """Shorthand constructor for ``array<T[, size]>``."""
    return CollectionType("array", _coerce(element), size)


def _coerce(element: TypeRef | str) -> TypeRef:
    """Accept a bare string as an interface or scalar name."""
    if isinstance(element, str):
        if element in SCALAR_TYPE_NAMES:
            return ScalarType(element)
        return NamedType(element)
    if not is_type_ref(element):
        raise InvalidModelError(f"not a type reference: {element!r}")
    return element


def parse_type_text(text: str) -> TypeRef:
    """Parse a type written in extended-ODL syntax, e.g. ``set<string(30)>``.

    This is a convenience for operation arguments given as text (the
    modification language of Appendix A passes domain types textually);
    the full ODL parser in :mod:`repro.odl` reuses the same grammar.
    """
    from repro.odl.parser import parse_type  # local import avoids a cycle

    return parse_type(text)
