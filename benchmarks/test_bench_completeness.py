"""Section 3.5: the completeness / reachability argument, executed.

"In the extreme case, the entire shrink wrap schema can be deleted, and
an entirely new (custom) schema can be added ... our approach does not
prevent the user from creating any possible schema."  The bench turns
every catalog schema into every other catalog schema using only add and
delete operations (with propagation), and reports the script sizes.
"""

import pytest

from repro.analysis.completeness import full_rebuild_script
from repro.catalog import SCHEMA_BUILDERS
from repro.knowledge.propagation import expand
from repro.model.fingerprint import schemas_equal
from repro.ops.base import OperationContext

PAIRS = [
    ("university", "acedb"),
    ("acedb", "lumber_yard"),
    ("lumber_yard", "emsl_software"),
    ("emsl_software", "company"),
    ("company", "university"),
]


def rebuild(source, target):
    scratch = source.copy("scratch")
    context = OperationContext(reference=source)
    plan = full_rebuild_script(source, target)
    for operation in plan:
        for step in expand(scratch, operation, context):
            step.apply(scratch, context)
    return scratch, plan


@pytest.mark.parametrize("source_name,target_name", PAIRS)
def test_bench_completeness(benchmark, report, source_name, target_name):
    source = SCHEMA_BUILDERS[source_name]()
    target = SCHEMA_BUILDERS[target_name]()
    scratch, plan = benchmark(rebuild, source, target)

    assert schemas_equal(scratch, target)
    deletes = sum(1 for op in plan if op.action == "delete")
    adds = sum(1 for op in plan if op.action == "add")
    reshapes = len(plan) - deletes - adds  # inverse-end shape adjustments
    report(
        f"completeness_{source_name}_to_{target_name}",
        f"{source_name} -> {target_name}: {len(plan)} operations "
        f"({deletes} delete, {adds} add, {reshapes} inverse reshapes); "
        "target reached exactly.",
    )
