"""Composite modification operations with well-defined semantics.

The paper's future-work list asks for "more complex schema modification
operations with well-defined semantics ... incorporated into the schema
designer along with expected constraints and impact on the schema"
(Section 5).  Composites expand to plans of the primitive Appendix A
operations, so the workspace log, impact reports, undo, and persistence
all keep working at the primitive level -- a composite is a macro, not
a new kind of change.

Three composites cover the restructurings the paper itself discusses:

* :class:`IntroduceAbstractSupertype` -- "any hierarchy with two or more
  roots can be easily transformed by creating an abstract supertype of
  the multiple roots" (Section 3.2), also the sanctioned replacement for
  interface *merging*;
* :class:`ExtractSupertype` -- factor attributes/operations shared by
  several subtypes into a (possibly new) common supertype and move them
  up, the classic generalization refactoring within semantic stability;
* :class:`SplitBySubtyping` -- the paper "excludes operations that split
  ... interface definitions.  We believe that it is more appropriate to
  subtype the interface definitions to be split"; this composite creates
  the subtype and pushes the chosen properties down.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.model.schema import Schema
from repro.ops.attribute_ops import ModifyAttribute
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    OperationContext,
    SchemaOperation,
)
from repro.ops.operation_ops import ModifyOperation
from repro.ops.type_ops import AddTypeDefinition
from repro.ops.type_property_ops import AddSupertype


class CompositeOperation(abc.ABC):
    """A macro expanding to a plan of primitive schema operations.

    ``expand_plan`` computes the primitive sequence against the current
    schema; the workspace applies the primitives one by one (each with
    its own propagation and undo), logging the composite's name for the
    designer.
    """

    composite_name: str

    @abc.abstractmethod
    def expand_plan(
        self, schema: Schema, context: OperationContext = FREE_CONTEXT
    ) -> list[SchemaOperation]:
        """Compute the primitive operations realising this composite."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable summary for logs and feedback."""


@dataclass(frozen=True)
class IntroduceAbstractSupertype(CompositeOperation):
    """Create *supertype_name* and make every listed type its subtype.

    With ``lift_common`` set, attributes and operations defined (with
    identical values) in *all* the subtypes are moved up into the new
    supertype -- exactly the generic-entity factoring the related-work
    section describes for merging similar entities.
    """

    composite_name = "introduce_abstract_supertype"

    supertype_name: str
    subtype_names: tuple[str, ...]
    lift_common: bool = True

    def expand_plan(
        self, schema: Schema, context: OperationContext = FREE_CONTEXT
    ) -> list[SchemaOperation]:
        if len(self.subtype_names) < 2:
            raise ConstraintViolation(
                f"{self.composite_name} needs at least two subtypes"
            )
        if self.supertype_name in schema:
            raise ConstraintViolation(
                f"type {self.supertype_name!r} already exists"
            )
        for name in self.subtype_names:
            schema.get(name)  # raise early for unknown subtypes
        plan: list[SchemaOperation] = [AddTypeDefinition(self.supertype_name)]
        plan.extend(
            AddSupertype(name, self.supertype_name)
            for name in self.subtype_names
        )
        if self.lift_common:
            plan.extend(self._lift_plan(schema))
        return plan

    def _lift_plan(self, schema: Schema) -> list[SchemaOperation]:
        """Move up every member identical across all subtypes."""
        first, *rest = [schema.get(name) for name in self.subtype_names]
        plan: list[SchemaOperation] = []
        for attr_name, attribute in first.attributes.items():
            if all(
                other.attributes.get(attr_name) == attribute for other in rest
            ):
                plan.append(
                    ModifyAttribute(first.name, attr_name, self.supertype_name)
                )
                # The siblings' copies become redundant: the moved
                # attribute is inherited.  They are deleted, which is the
                # factoring the paper's related work describes.
                from repro.ops.attribute_ops import DeleteAttribute

                plan.extend(
                    DeleteAttribute(other.name, attr_name) for other in rest
                )
        for op_name, operation in first.operations.items():
            if all(
                other.operations.get(op_name) == operation for other in rest
            ):
                plan.append(
                    ModifyOperation(first.name, op_name, self.supertype_name)
                )
                from repro.ops.operation_ops import DeleteOperation

                plan.extend(
                    DeleteOperation(other.name, op_name) for other in rest
                )
        return plan

    def describe(self) -> str:
        return (
            f"introduce abstract supertype {self.supertype_name!r} over "
            f"{', '.join(self.subtype_names)}"
            + (" (lifting common members)" if self.lift_common else "")
        )


@dataclass(frozen=True)
class ExtractSupertype(CompositeOperation):
    """Move the named members of *source* up into *supertype*.

    The supertype must already be a (transitive) supertype of *source*
    -- the move stays within semantic stability by construction.
    """

    composite_name = "extract_supertype"

    source: str
    supertype: str
    attribute_names: tuple[str, ...] = field(default_factory=tuple)
    operation_names: tuple[str, ...] = field(default_factory=tuple)

    def expand_plan(
        self, schema: Schema, context: OperationContext = FREE_CONTEXT
    ) -> list[SchemaOperation]:
        if self.supertype not in schema.ancestors(self.source):
            raise ConstraintViolation(
                f"{self.supertype!r} is not a supertype of {self.source!r}"
            )
        interface = schema.get(self.source)
        for attr_name in self.attribute_names:
            interface.get_attribute(attr_name)
        for op_name in self.operation_names:
            interface.get_operation(op_name)
        plan: list[SchemaOperation] = []
        plan.extend(
            ModifyAttribute(self.source, attr_name, self.supertype)
            for attr_name in self.attribute_names
        )
        plan.extend(
            ModifyOperation(self.source, op_name, self.supertype)
            for op_name in self.operation_names
        )
        if not plan:
            raise ConstraintViolation(
                f"{self.composite_name} given nothing to move"
            )
        return plan

    def describe(self) -> str:
        moved = list(self.attribute_names) + [
            f"{name}()" for name in self.operation_names
        ]
        return (
            f"extract {', '.join(moved)} from {self.source!r} up into "
            f"{self.supertype!r}"
        )


@dataclass(frozen=True)
class SplitBySubtyping(CompositeOperation):
    """Create *subtype_name* under *source* and push members down.

    This is the paper's sanctioned alternative to splitting an interface
    definition: the new subtype takes over the listed attributes and
    operations; everything else stays inherited from *source*.
    """

    composite_name = "split_by_subtyping"

    source: str
    subtype_name: str
    attribute_names: tuple[str, ...] = field(default_factory=tuple)
    operation_names: tuple[str, ...] = field(default_factory=tuple)

    def expand_plan(
        self, schema: Schema, context: OperationContext = FREE_CONTEXT
    ) -> list[SchemaOperation]:
        if self.subtype_name in schema:
            raise ConstraintViolation(
                f"type {self.subtype_name!r} already exists"
            )
        interface = schema.get(self.source)
        for attr_name in self.attribute_names:
            interface.get_attribute(attr_name)
        for op_name in self.operation_names:
            interface.get_operation(op_name)
        if not self.attribute_names and not self.operation_names:
            raise ConstraintViolation(
                f"{self.composite_name} given nothing to push down"
            )
        plan: list[SchemaOperation] = [
            AddTypeDefinition(self.subtype_name),
            AddSupertype(self.subtype_name, self.source),
        ]
        plan.extend(
            ModifyAttribute(self.source, attr_name, self.subtype_name)
            for attr_name in self.attribute_names
        )
        plan.extend(
            ModifyOperation(self.source, op_name, self.subtype_name)
            for op_name in self.operation_names
        )
        return plan

    def describe(self) -> str:
        pushed = list(self.attribute_names) + [
            f"{name}()" for name in self.operation_names
        ]
        return (
            f"split {self.source!r} by subtyping: {self.subtype_name!r} "
            f"takes {', '.join(pushed)}"
        )
