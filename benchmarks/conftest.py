"""Shared benchmark helpers.

Every bench regenerates one of the paper's tables or figures.  Timing is
handled by pytest-benchmark; the regenerated artifact itself (the rows /
series the paper reports) is written to ``benchmarks/reports/<id>.txt``
so it survives output capturing, and is also printed for ``-s`` runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture
def report():
    """Write one regenerated paper artifact to the reports directory."""

    def write(artifact_id: str, text: str) -> None:
        REPORTS_DIR.mkdir(exist_ok=True)
        path = REPORTS_DIR / f"{artifact_id}.txt"
        path.write_text(text.rstrip() + "\n", encoding="utf-8")
        print(f"\n--- {artifact_id} (also at {path}) ---")
        print(text)

    return write
