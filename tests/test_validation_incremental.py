"""The incremental validation engine vs the full-scan reference.

PR 3's tentpole: :class:`repro.model.validation_cache.ValidationCache`
re-checks only the dirty set each mutation leaves behind, but must stay
byte-for-byte equal to :func:`repro.model.validation.validate_schema`
(the preserved reference spec).  These tests pin that equality across
the workspace loop (apply / undo / redo / reset), direct mutator churn,
warning-severity rule transitions, cycle and membership transitions,
and the coarse fallbacks (``touch`` / ``touch_order``).
"""

from __future__ import annotations

import pytest

from repro.model.attributes import Attribute
from repro.model.errors import ValidationError
from repro.model.interface import InterfaceDef
from repro.model.types import scalar
from repro.model.validation import validate_schema
from repro.odl.parser import parse_schema
from repro.ops.attribute_ops import AddAttribute
from repro.ops.base import OperationContext
from repro.ops.type_property_ops import AddSupertype, DeleteSupertype
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


def assert_matches_reference(schema):
    """The cache's issue list must equal the full scan's, byte for byte."""
    fast = schema.validation.validate()
    slow = validate_schema(schema)
    assert fast == slow
    return fast


class TestWorkspaceLoop:
    """Apply / undo / redo / reset all keep issues == reference scan."""

    def test_operation_stream_stays_equal(self):
        reference = generate_schema(WorkloadSpec(types=24, seed=5))
        workspace = Workspace(reference)
        for operation in generate_operations(reference, 40, seed=9):
            workspace.apply(operation)
            assert workspace.issues == validate_schema(workspace.schema)

    def test_undo_redo_reset_stay_equal(self):
        reference = generate_schema(WorkloadSpec(types=18, seed=3))
        workspace = Workspace(reference)
        for operation in generate_operations(reference, 25, seed=4):
            workspace.apply(operation)
        while workspace.undo_depth:
            workspace.undo_last()
            assert workspace.issues == validate_schema(workspace.schema)
        while workspace.redo_depth:
            workspace.redo()
            assert workspace.issues == validate_schema(workspace.schema)
        workspace.reset()
        assert workspace.issues == validate_schema(workspace.schema)

    def test_stream_runs_incrementally_not_by_rebuilds(self):
        reference = generate_schema(WorkloadSpec(types=24, seed=5))
        workspace = Workspace(reference)
        for operation in generate_operations(reference, 30, seed=9):
            workspace.apply(operation)
        stats = workspace.schema.stats()
        # one initial build, then dirty-set passes only
        assert stats["validation_full"] == 1
        assert stats["validation_incremental"] >= 30
        assert stats["validation_reused"] > stats["validation_revalidated"]


MULTI_ROOT_ODL = """
interface A {};
interface B {};
interface C : A {};
"""


class TestMultiRootTransitions:
    """The warning-severity component rule under incrementality."""

    def test_warning_appears_and_disappears(self):
        reference = parse_schema(MULTI_ROOT_ODL, name="mr")
        workspace = Workspace(reference)

        def rules():
            assert workspace.issues == validate_schema(workspace.schema)
            return {issue.rule for issue in workspace.issues}

        assert "multi-root-hierarchy" not in rules()
        workspace.apply(AddSupertype("C", "B"))  # component {A,B,C}, roots A+B
        assert "multi-root-hierarchy" in rules()
        workspace.undo_last()
        assert "multi-root-hierarchy" not in rules()
        workspace.redo()
        assert "multi-root-hierarchy" in rules()
        workspace.reset()
        assert "multi-root-hierarchy" not in rules()

    def test_warning_severity_and_anchor(self):
        reference = parse_schema(MULTI_ROOT_ODL, name="mr")
        workspace = Workspace(reference)
        workspace.apply(AddSupertype("C", "B"))
        issues = [
            issue for issue in workspace.issues
            if issue.rule == "multi-root-hierarchy"
        ]
        assert len(issues) == 1
        assert issues[0].severity == "warning"
        assert issues[0].location == "A"  # anchored at the first-declared root

    def test_component_split_via_delete_supertype(self):
        reference = parse_schema(
            """
            interface A {};
            interface B {};
            interface C : A, B {};
            """,
            name="mr",
        )
        workspace = Workspace(reference)
        assert {i.rule for i in workspace.issues} == {"multi-root-hierarchy"}
        workspace.apply(DeleteSupertype("C", "B"))  # back to one root
        assert workspace.issues == validate_schema(workspace.schema)
        assert workspace.issues == []
        workspace.undo_last()
        assert {i.rule for i in workspace.issues} == {"multi-root-hierarchy"}
        assert workspace.issues == validate_schema(workspace.schema)


ORDER_BY_ODL = """
interface A { relationship set<B> bs inverse B::a order_by (rank); };
interface B { relationship A a inverse A::bs; };
"""


class TestOrderByTransitions:
    """Cross-interface reach: fixing B must clear the issue anchored at A."""

    def test_fix_unfix_across_history(self):
        reference = parse_schema(ORDER_BY_ODL, name="ob")
        workspace = Workspace(reference)

        def rules():
            assert workspace.issues == validate_schema(workspace.schema)
            return {issue.rule for issue in workspace.issues}

        assert "order-by-unknown" in rules()
        # the dirty interface is B; the stale issue lives at referencer A
        workspace.apply(AddAttribute("B", scalar("long"), "rank"))
        assert "order-by-unknown" not in rules()
        workspace.undo_last()
        assert "order-by-unknown" in rules()
        workspace.redo()
        assert "order-by-unknown" not in rules()
        workspace.reset()
        assert "order-by-unknown" in rules()

    def test_inherited_fix_reaches_referencer(self):
        schema = parse_schema(
            ORDER_BY_ODL + "interface Base {};", name="ob"
        )
        assert_matches_reference(schema)
        # give B a supertype carrying the attribute: two hops from A
        schema.get("Base").add_attribute(Attribute("rank", scalar("long")))
        schema.get("B").add_supertype("Base")
        issues = assert_matches_reference(schema)
        assert "order-by-unknown" not in {i.rule for i in issues}
        schema.get("B").remove_supertype("Base")
        issues = assert_matches_reference(schema)
        assert "order-by-unknown" in {i.rule for i in issues}


class TestCycleTransitions:
    """Cycle rules re-check only the touched weak component."""

    def test_isa_cycle_appears_and_clears(self):
        schema = parse_schema(
            "interface A {};\ninterface B : A {};", name="cy"
        )
        assert assert_matches_reference(schema) == []
        # ops refuse cycles, so go through the raw mutators
        schema.get("A").add_supertype("B")
        issues = assert_matches_reference(schema)
        assert "isa-cycle" in {i.rule for i in issues}
        schema.get("A").remove_supertype("B")
        assert assert_matches_reference(schema) == []

    def test_cycle_in_untouched_component_is_reused(self):
        schema = parse_schema(
            """
            interface A {};
            interface B : A {};
            interface X {};
            interface Y {};
            """,
            name="cy",
        )
        schema.validation.validate()
        schema.get("A").add_supertype("B")
        before = assert_matches_reference(schema)
        assert "isa-cycle" in {i.rule for i in before}
        # touching the unrelated component keeps the cached cycle issue
        schema.get("X").add_attribute(Attribute("name", scalar("string")))
        after = assert_matches_reference(schema)
        assert [i for i in after if i.rule == "isa-cycle"] == [
            i for i in before if i.rule == "isa-cycle"
        ]

    def test_part_of_cycle_via_mutators(self, small):
        small.validation.validate()
        from repro.model.relationships import RelationshipEnd, RelationshipKind
        from repro.model.types import set_of

        small.get("Department").add_relationship(
            RelationshipEnd(
                "boxes",
                set_of("Department"),
                "Department",
                "box_of",
                RelationshipKind.PART_OF,
            )
        )
        issues = assert_matches_reference(small)
        assert "part-of-cycle" in {i.rule for i in issues}
        small.get("Department").remove_relationship("boxes")
        assert_matches_reference(small)


class TestMembershipTransitions:
    """Adding / removing interfaces re-roots danglers and components."""

    def test_remove_creates_dangling_then_restore(self, small):
        small.validation.validate()
        removed = small.remove_interface("Department")
        issues = assert_matches_reference(small)
        assert "dangling-type" in {i.rule for i in issues}
        small.add_interface(removed)
        issues = assert_matches_reference(small)
        assert "dangling-type" not in {i.rule for i in issues}

    def test_add_interface_resolves_dangler(self):
        schema = parse_schema("interface A : Ghost {};", name="m")
        issues = assert_matches_reference(schema)
        assert "dangling-type" in {i.rule for i in issues}
        schema.add_interface(InterfaceDef("Ghost"))
        issues = assert_matches_reference(schema)
        assert "dangling-type" not in {i.rule for i in issues}

    def test_removed_supertype_re_roots_component(self):
        schema = parse_schema(
            """
            interface R {};
            interface A : R {};
            interface B : R {};
            interface C : A, B {};
            """,
            name="m",
        )
        issues = assert_matches_reference(schema)
        assert "multi-root-hierarchy" not in {i.rule for i in issues}
        # removing R leaves {A,B,C} dangling-rooted at both A and B
        schema.remove_interface("R")
        issues = assert_matches_reference(schema)
        assert "multi-root-hierarchy" in {i.rule for i in issues}


class TestFallbacksAndApi:
    def test_touch_forces_full_revalidation(self, small):
        small.validation.validate()
        small.validation.reset_stats()
        small.touch()
        assert_matches_reference(small)
        assert small.validation.stats()["full_validations"] == 1

    def test_touch_order_keeps_reference_order(self):
        schema = parse_schema(MULTI_ROOT_ODL, name="mr")
        schema.get("C").add_supertype("B")
        schema.validation.validate()
        schema.touch_order()
        assert_matches_reference(schema)

    def test_clean_hit_when_nothing_changed(self, small):
        small.validation.validate()
        small.validation.reset_stats()
        small.validation.validate()
        small.validation.validate()
        assert small.validation.stats()["clean_hits"] == 2

    def test_raise_on_error_matches_reference(self):
        schema = parse_schema("interface A : Ghost {};", name="r")
        with pytest.raises(ValidationError) as fast:
            schema.validation.validate(raise_on_error=True)
        with pytest.raises(ValidationError) as slow:
            validate_schema(schema, raise_on_error=True)
        assert str(fast.value) == str(slow.value)

    def test_extent_only_touch_is_validation_noop(self, small):
        small.validation.validate()
        small.validation.reset_stats()
        small.get("Person").set_extent("folks")
        small.validation.validate()
        stats = small.validation.stats()
        assert stats["interfaces_revalidated"] == 0

    def test_validate_each_step_off_skips_refresh(self, small):
        workspace = Workspace(small, validate_each_step=False)
        assert workspace.issues == []
        workspace.apply(AddAttribute("Person", scalar("date"), "dob"))
        assert workspace.issues == []


class TestEdgeCountAccessors:
    """Satellite: O(1) edge counts feeding Schema.stats()."""

    def test_counts_match_edge_lists(self):
        schema = generate_schema(
            WorkloadSpec(types=30, seed=2, part_of_chain=8, instance_of_chain=5)
        )
        index = schema.index
        assert index.part_of_edge_count() == len(schema.part_of_edges())
        assert index.instance_of_edge_count() == len(schema.instance_of_edges())
        assert index.part_of_edge_count() > 0
        assert index.instance_of_edge_count() > 0

    def test_stats_report_edge_counts(self, small):
        stats = small.stats()
        assert stats["part_of_links"] == len(small.part_of_edges())
        assert stats["instance_of_links"] == len(small.instance_of_edges())
