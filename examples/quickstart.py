"""Quickstart: shrink-wrap-based design in a dozen lines.

Loads the university shrink wrap schema (the paper's running example),
browses its concept schemas, elaborates the Course Offering wagon wheel
into the Figure 7 shape (a class Schedule consisting of course
offerings), and generates the deliverables: the custom schema as
extended ODL, the original-to-custom mapping, and the consistency
report.

Run with::

    python examples/quickstart.py
"""

from repro.catalog import FIGURE7_ELABORATION_SCRIPT, university_schema
from repro.designer import DesignSession
from repro.ops import parse_script
from repro.repository import SchemaRepository


def main() -> None:
    session = DesignSession(
        SchemaRepository(university_schema(), custom_name="my_university")
    )

    print("=== concept schemas of the shrink wrap schema ===")
    print(session.list_concepts())

    print()
    print("=== the Course Offering point of view (Figure 3) ===")
    print(session.select("ww:Course_Offering"))

    print()
    print("=== elaborating it into Figure 7 ===")
    for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
        applied = session.modify(operation.to_text())
        marker = "ok " if applied else "REJ"
        print(f"  [{marker}] {operation.to_text()}")

    deliverables = session.finish()

    print()
    print("=== custom schema: the new Schedule type ===")
    print(session.show_odl("Schedule"))

    print()
    print("=== mapping (original -> custom) ===")
    print(deliverables.mapping.render())

    print()
    print("=== consistency report ===")
    print(session.check())


if __name__ == "__main__":
    main()
