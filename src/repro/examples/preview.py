"""Designer feedback: what data a pending plan newly admits or forbids.

``Workspace.preview(plan)`` delegates here.  The plan is applied to a
throw-away fork of the workspace, significant examples are generated on
both sides for the interfaces the plan's instance-impact facet names,
and the two example sets are diffed through
:func:`repro.instances.check.check_population`:

* a *before* witness the *after* schema rejects -- and an *after*
  near-miss the *before* schema admitted -- is data the plan **newly
  forbids**;
* an *after* witness the *before* schema rejects -- and a *before*
  near-miss the *after* schema admits -- is data the plan **newly
  admits**.

Findings surface as ordinary :mod:`repro.knowledge.feedback` messages
(cautions for forbidden data, infos for admitted data), so the designer
CLI and the session feedback log render them like any other caution.
The workspace itself is never mutated; a plan that fails pre-flight or
application reports that as error-level feedback instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.examples.generator import ExamplePair, significant_examples
from repro.instances.check import check_population
from repro.instances.population import Population, PopulationIssue
from repro.knowledge.feedback import Feedback, caution, error, info
from repro.model.errors import SchemaError
from repro.ops.base import OperationError, SchemaOperation
from repro.ops.effects import WILDCARD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.repository.workspace import Workspace

#: Cap per finding family; the rest is summarized in one info message.
_MAX_FINDINGS = 8


@dataclass(frozen=True)
class PreviewFinding:
    """One population whose admission the pending plan flips."""

    subject: str  # the constraint site, e.g. "Department.staff"
    kind: str  # constraint family of the site
    population: Population
    issues: tuple[PopulationIssue, ...]  # why the rejecting side rejects

    def describe(self) -> str:
        reason = f" ({self.issues[0]})" if self.issues else ""
        return f"{self.subject}{reason}\n{self.population.render()}"


@dataclass
class PlanPreview:
    """Everything ``Workspace.preview(plan)`` learned."""

    ok: bool  # the plan pre-flights and applies on a fork
    impacted: tuple[str, ...]  # interfaces the instance facet names
    newly_forbidden: list[PreviewFinding] = field(default_factory=list)
    newly_admitted: list[PreviewFinding] = field(default_factory=list)
    feedback: list[Feedback] = field(default_factory=list)

    def render(self) -> str:
        lines = [str(message) for message in self.feedback]
        return "\n".join(lines) if lines else "preview: no instance impact"


def plan_instance_impact(plan: list[SchemaOperation]) -> frozenset[str]:
    """Union of the plan ops' instance-impact facets (may hold WILDCARD)."""
    impacted: set[str] = set()
    for operation in plan:
        impacted |= operation.effect_signature().instances
    return frozenset(impacted)


def _flips(
    pairs: list[ExamplePair],
    other_schema,
    *,
    witnesses_failing: bool,
) -> list[PreviewFinding]:
    """Pairs whose admission verdict flips on *other_schema*.

    ``witnesses_failing=True`` selects witnesses the other side rejects;
    ``False`` selects near-misses the other side admits.
    """
    findings: list[PreviewFinding] = []
    for pair in pairs:
        if witnesses_failing:
            issues = check_population(other_schema, pair.witness)
            if issues:
                findings.append(PreviewFinding(
                    pair.subject, pair.kind, pair.witness, tuple(issues)
                ))
        else:
            if not check_population(other_schema, pair.near_miss):
                findings.append(PreviewFinding(
                    pair.subject, pair.kind, pair.near_miss, ()
                ))
    return findings


def _emit(
    preview: PlanPreview,
    findings: list[PreviewFinding],
    code: str,
    level_constructor,
    verb: str,
) -> None:
    for finding in findings[:_MAX_FINDINGS]:
        preview.feedback.append(level_constructor(
            code, finding.subject,
            f"the plan {verb} this population:\n{finding.describe()}",
        ))
    rest = len(findings) - _MAX_FINDINGS
    if rest > 0:
        preview.feedback.append(info(
            code, "summary", f"... and {rest} more population(s) {verb}",
        ))


def preview_plan(
    workspace: "Workspace",
    plan: list[SchemaOperation],
    concept=None,
) -> PlanPreview:
    """Diff the populations a pending plan admits; mutates nothing."""
    from repro.analysis.plan import PlanPreflightError

    branch = workspace.fork(f"{workspace.schema.name}_preview")
    try:
        branch.apply_plan(plan, concept=concept)
    except PlanPreflightError as failure:
        preview = PlanPreview(ok=False, impacted=())
        preview.feedback.extend(
            error("plan-preflight", f"op[{diagnostic.index}]",
                  diagnostic.message)
            for diagnostic in failure.diagnostics
        )
        return preview
    except (OperationError, SchemaError) as failure:
        preview = PlanPreview(ok=False, impacted=())
        preview.feedback.append(
            error("plan-rejected", "plan", str(failure))
        )
        return preview
    before = workspace.schema
    after = branch.schema
    impacted = plan_instance_impact(plan)
    if WILDCARD in impacted:
        impacted = frozenset(before.type_names()) | frozenset(
            after.type_names()
        )
    preview = PlanPreview(ok=True, impacted=tuple(sorted(impacted)))
    if not impacted:
        preview.feedback.append(info(
            "instance-neutral", "plan",
            "the plan does not change which populations the schema admits",
        ))
        return preview
    before_pairs = significant_examples(
        before, interfaces=impacted & set(before.type_names())
    )
    after_pairs = significant_examples(
        after, interfaces=impacted & set(after.type_names())
    )
    forbidden = _flips(before_pairs, after, witnesses_failing=True)
    forbidden += _flips(after_pairs, before, witnesses_failing=False)
    admitted = _flips(after_pairs, before, witnesses_failing=True)
    admitted += _flips(before_pairs, after, witnesses_failing=False)
    preview.newly_forbidden = forbidden
    preview.newly_admitted = admitted
    _emit(preview, forbidden, "forbids-examples", caution, "newly forbids")
    _emit(preview, admitted, "admits-examples", info, "newly admits")
    if not preview.feedback:
        preview.feedback.append(info(
            "examples-preserved", "plan",
            "every generated example keeps its admission verdict",
        ))
    return preview
