"""Consistency checks over the customized user schema.

"We enforce consistency checks to provide feedback to the designer about
interactions among the concept schemas" (Abstract).  Two layers:

* the structural rules of :mod:`repro.model.validation`, re-expressed as
  designer feedback;
* design-quality checks that compare the workspace against the concept
  schema decomposition: concept schemas that lost their anchor, wagon
  wheels whose focal type became isolated, extents without keys, and
  empty interface definitions.
"""

from __future__ import annotations

from repro.concepts.decompose import Decomposition
from repro.knowledge.feedback import (
    Feedback,
    FeedbackLevel,
    caution,
    info,
    warning,
)
from repro.model.schema import Schema
from repro.model.validation import SEVERITY_ERROR


def structural_feedback(schema: Schema) -> list[Feedback]:
    """The structural validation issues as feedback messages."""
    messages: list[Feedback] = []
    # The incremental engine returns exactly what the full scan
    # would (its reference spec) at dirty-set cost per call.
    for issue in schema.validation.validate():
        level = (
            FeedbackLevel.ERROR
            if issue.severity == SEVERITY_ERROR
            else FeedbackLevel.WARNING
        )
        messages.append(
            Feedback(level, issue.rule, issue.location, issue.message)
        )
    return messages


def concept_interaction_feedback(
    schema: Schema, decomposition: Decomposition
) -> list[Feedback]:
    """Interactions between the workspace and the extracted concepts.

    The decomposition reflects the shrink wrap schema as originally
    presented to the designer; once customization begins, the workspace
    can drift away from individual concept schemas.  These checks tell
    the designer which points of view were invalidated.
    """
    messages: list[Feedback] = []
    for concept in decomposition.all_concepts():
        if concept.anchor not in schema:
            messages.append(
                caution(
                    "concept-anchor-deleted", concept.identifier,
                    f"the {concept.kind.label()} anchored at "
                    f"{concept.anchor!r} lost its anchor type",
                )
            )
            continue
        missing = sorted(
            name for name in concept.members if name not in schema
        )
        if missing:
            messages.append(
                info(
                    "concept-members-deleted", concept.identifier,
                    f"member type(s) no longer present: {', '.join(missing)}",
                )
            )
    return messages


def design_quality_feedback(schema: Schema) -> list[Feedback]:
    """Schema smells worth flagging before the custom schema ships."""
    messages: list[Feedback] = []
    subtype_map = schema.index.subtype_map()
    for interface in schema:
        has_properties = (
            interface.attributes
            or interface.relationships
            or interface.operations
            or interface.supertypes
            or subtype_map.get(interface.name)
        )
        if not has_properties:
            messages.append(
                warning(
                    "empty-interface", interface.name,
                    "interface defines no properties and participates in "
                    "no hierarchy",
                )
            )
        if interface.extent is not None and not interface.keys:
            # ancestors() yields only resolved types, so no guard needed.
            inherited_keys = any(
                schema.get(ancestor).keys
                for ancestor in schema.ancestors(interface.name)
            )
            if not inherited_keys:
                messages.append(
                    caution(
                        "extent-without-key", interface.name,
                        f"extent {interface.extent!r} is declared but no "
                        "key identifies its members",
                    )
                )
    return messages


def consistency_report(
    schema: Schema, decomposition: Decomposition | None = None
) -> list[Feedback]:
    """The full consistency report the designer sees on demand."""
    messages = structural_feedback(schema)
    if decomposition is not None:
        messages.extend(concept_interaction_feedback(schema, decomposition))
    messages.extend(design_quality_feedback(schema))
    return messages
