"""Figure 7 + Section 3.4: elaborating and simplifying Course Offering.

The elaboration adds a class Schedule aggregating course offerings
(Figure 3 -> Figure 7); the simplification serves the correspondence-
only school by removing the time slot entity and room attribute.  The
bench runs both customizations through the repository and reports the
operation counts and mapping outcomes.
"""

from repro.catalog import (
    CORRESPONDENCE_SIMPLIFICATION_SCRIPT,
    FIGURE7_ELABORATION_SCRIPT,
    university_schema,
)
from repro.concepts.wagon_wheel import extract_wagon_wheel
from repro.designer.render import render_wagon_wheel
from repro.ops.language import parse_script
from repro.repository.repository import SchemaRepository


def customize(script: str, name: str) -> SchemaRepository:
    repository = SchemaRepository(university_schema(), custom_name=name)
    for operation in parse_script(script):
        repository.apply(operation)
    repository.generate_custom_schema()
    repository.generate_mapping()
    return repository


def test_bench_fig7_elaboration(benchmark, report):
    repository = benchmark(customize, FIGURE7_ELABORATION_SCRIPT, "fig7")
    custom = repository.custom_schema
    assert custom is not None
    wheel = extract_wagon_wheel(custom, "Course_Offering")
    report(
        "fig7_elaborated_course_offering",
        render_wagon_wheel(wheel)
        + "\n\nmapping:\n"
        + repository.mapping.render(),
    )

    # The elaborated wheel gains the aggregation spoke to Schedule.
    spokes = {spoke.target_type: spoke for spoke in wheel.spokes}
    assert spokes["Schedule"].kind.value == "part_of"
    assert repository.mapping.reuse_ratio() == 1.0


def test_bench_fig7_simplification(benchmark, report):
    repository = benchmark(
        customize, CORRESPONDENCE_SIMPLIFICATION_SCRIPT, "correspondence"
    )
    custom = repository.custom_schema
    assert custom is not None
    report(
        "fig7_correspondence_simplification",
        render_wagon_wheel(extract_wagon_wheel(custom, "Course_Offering"))
        + "\n\nmapping:\n"
        + repository.mapping.render(),
    )

    assert "Time_Slot" not in custom
    assert "room" not in custom.get("Course_Offering").attributes
    deleted = {entry.path for entry in repository.mapping.deleted()}
    assert {"Time_Slot", "Course_Offering.room",
            "Course_Offering.offered_during"} <= deleted
