"""The textual modification language of Appendix A.

"The language that is created for specifying modifications formalizes
the modification choices for implementation in a system" (Section 5).
:func:`parse_operation` turns one textual operation like::

    modify_relationship_target_type(Employee, works_in_a, Person)
    add_attribute(Course_Offering, string(30), room)
    add_operation(Employee, float, salary, (in short month), (NoSuchMonth))

into the corresponding :class:`~repro.ops.base.SchemaOperation` command
object; :meth:`~repro.ops.base.SchemaOperation.to_text` is its inverse
(``parse_operation(op.to_text()) == op`` is a tested property).

:func:`parse_script` parses a sequence of operations -- one per line or
separated by semicolons -- which is how example customization scripts
and the genome case study express their modification sequences.
"""

from __future__ import annotations

from typing import Callable

from repro.model.operations import Parameter
from repro.model.types import ScalarType, TypeRef
from repro.odl.lexer import IDENT, NUMBER, OdlSyntaxError, TokenStream
from repro.odl.parser import parse_type_from
from repro.ops.base import SchemaOperation
from repro.ops.instance_of_ops import (
    AddInstanceOfRelationship,
    DeleteInstanceOfRelationship,
    ModifyInstanceOfCardinality,
    ModifyInstanceOfOrderBy,
    ModifyInstanceOfTargetType,
)
from repro.ops.operation_ops import (
    AddOperation,
    DeleteOperation,
    ModifyOperation,
    ModifyOperationArgList,
    ModifyOperationExceptionsRaised,
    ModifyOperationReturnType,
)
from repro.ops.part_of_ops import (
    AddPartOfRelationship,
    DeletePartOfRelationship,
    ModifyPartOfCardinality,
    ModifyPartOfOrderBy,
    ModifyPartOfTargetType,
)
from repro.ops.relationship_ops import (
    AddRelationship,
    DeleteRelationship,
    ModifyRelationshipCardinality,
    ModifyRelationshipOrderBy,
    ModifyRelationshipTargetType,
)
from repro.ops.attribute_ops import (
    AddAttribute,
    DeleteAttribute,
    ModifyAttribute,
    ModifyAttributeSize,
    ModifyAttributeType,
)
from repro.ops.type_ops import AddTypeDefinition, DeleteTypeDefinition
from repro.ops.type_property_ops import (
    AddExtentName,
    AddKeyList,
    AddSupertype,
    DeleteExtentName,
    DeleteKeyList,
    DeleteSupertype,
    ModifyExtentName,
    ModifyKeyList,
    ModifySupertype,
)

_DIRECTIONS = ("in", "out", "inout")


def parse_operation(text: str) -> SchemaOperation:
    """Parse one operation written in the Appendix A language."""
    stream = TokenStream(text)
    operation = _parse_one(stream)
    stream.accept_punct(";")
    stream.expect_end()
    return operation


def parse_composite(text: str):
    """Parse one composite (macro) operation.

    Accepted forms::

        introduce_abstract_supertype(Name, (Sub1, Sub2[, ...])[, nolift])
        extract_supertype(Source, Supertype, (attrs)[, (operations)])
        split_by_subtyping(Source, NewSubtype, (attrs)[, (operations)])
    """
    from repro.ops.composite import (
        ExtractSupertype,
        IntroduceAbstractSupertype,
        SplitBySubtyping,
    )

    stream = TokenStream(text)
    name_token = stream.expect_ident()
    stream.expect_punct("(")
    if name_token.value == "introduce_abstract_supertype":
        supertype = _ident(stream)
        _comma(stream)
        subtypes = _name_list(stream)
        lift = True
        if stream.accept_punct(","):
            flag = _ident(stream)
            if flag not in ("lift", "nolift"):
                raise OdlSyntaxError(
                    f"expected 'lift' or 'nolift', found {flag!r}",
                    stream.current.line, stream.current.column,
                )
            lift = flag == "lift"
        composite = IntroduceAbstractSupertype(supertype, subtypes, lift)
    elif name_token.value in ("extract_supertype", "split_by_subtyping"):
        source = _ident(stream)
        _comma(stream)
        other = _ident(stream)
        _comma(stream)
        attributes = _name_list(stream)
        operations: tuple[str, ...] = ()
        if stream.accept_punct(","):
            operations = _name_list(stream)
        cls = (
            ExtractSupertype
            if name_token.value == "extract_supertype"
            else SplitBySubtyping
        )
        composite = cls(source, other, attributes, operations)
    else:
        raise OdlSyntaxError(
            f"unknown composite operation {name_token.value!r}",
            name_token.line, name_token.column,
        )
    stream.expect_punct(")")
    stream.accept_punct(";")
    stream.expect_end()
    return composite


def parse_script(text: str) -> list[SchemaOperation]:
    """Parse a whole modification script (``;`` or newline separated)."""
    stream = TokenStream(text)
    operations: list[SchemaOperation] = []
    while stream.current.type == IDENT:
        operations.append(_parse_one(stream))
        stream.accept_punct(";")
    stream.expect_end()
    return operations


def _parse_one(stream: TokenStream) -> SchemaOperation:
    name_token = stream.expect_ident()
    try:
        builder = _BUILDERS[name_token.value]
    except KeyError:
        raise OdlSyntaxError(
            f"unknown operation {name_token.value!r}",
            name_token.line, name_token.column,
        ) from None
    stream.expect_punct("(")
    operation = builder(stream)
    stream.expect_punct(")")
    return operation


# ----------------------------------------------------------------------
# Argument micro-parsers
# ----------------------------------------------------------------------

def _comma(stream: TokenStream) -> None:
    stream.expect_punct(",")


def _ident(stream: TokenStream) -> str:
    return stream.expect_ident().value


def _type(stream: TokenStream) -> TypeRef:
    return parse_type_from(stream)


def _name_list(stream: TokenStream) -> tuple[str, ...]:
    """A parenthesised identifier list, possibly empty: ``(a, b)`` / ``()``."""
    stream.expect_punct("(")
    names: list[str] = []
    if not stream.at_punct(")"):
        names.append(_ident(stream))
        while stream.accept_punct(","):
            names.append(_ident(stream))
    stream.expect_punct(")")
    return tuple(names)


def _param_list(stream: TokenStream) -> tuple[Parameter, ...]:
    """A parenthesised ODL parameter list: ``(in short month, ...)``."""
    stream.expect_punct("(")
    parameters: list[Parameter] = []
    if not stream.at_punct(")"):
        parameters.append(_parameter(stream))
        while stream.accept_punct(","):
            parameters.append(_parameter(stream))
    stream.expect_punct(")")
    return tuple(parameters)


def _parameter(stream: TokenStream) -> Parameter:
    if stream.current.value not in _DIRECTIONS:
        raise stream.error(
            f"expected a parameter direction (in/out/inout), found "
            f"{stream.current}"
        )
    direction = stream.advance().value
    param_type = _type(stream)
    param_name = _ident(stream)
    return Parameter(direction, param_type, param_name)


def _inverse_path(stream: TokenStream) -> tuple[str, str]:
    """``Type::path``."""
    inverse_type = _ident(stream)
    stream.expect_punct("::")
    inverse_name = _ident(stream)
    return inverse_type, inverse_name


def _size(stream: TokenStream) -> int | None:
    """A size argument where 0 denotes "no size"."""
    value = stream.expect_number()
    return value if value else None


# ----------------------------------------------------------------------
# Per-operation builders
# ----------------------------------------------------------------------

def _build_add_attribute(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    domain = _type(stream)
    _comma(stream)
    if stream.current.type == NUMBER:
        # The optional explicit [ <size> ] argument of the grammar.
        size = stream.expect_number()
        _comma(stream)
        if not isinstance(domain, ScalarType):
            raise stream.error("a size argument requires a scalar type")
        domain = ScalarType(domain.name, size)
    attribute_name = _ident(stream)
    return AddAttribute(typename, domain, attribute_name)


def _build_add_relationship(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        typename = _ident(stream)
        _comma(stream)
        target = _type(stream)
        _comma(stream)
        path = _ident(stream)
        _comma(stream)
        inverse_type, inverse_name = _inverse_path(stream)
        order_by: tuple[str, ...] = ()
        if stream.accept_punct(","):
            order_by = _name_list(stream)
        return cls(typename, target, path, inverse_type, inverse_name, order_by)

    return build


def _build_modify_target_type(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        typename = _ident(stream)
        _comma(stream)
        path = _ident(stream)
        _comma(stream)
        first = _ident(stream)
        if stream.accept_punct(","):
            return cls(typename, path, _ident(stream), old_target_type=first)
        return cls(typename, path, first)

    return build


def _build_modify_cardinality(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        typename = _ident(stream)
        _comma(stream)
        path = _ident(stream)
        _comma(stream)
        old_target = _type(stream)
        _comma(stream)
        new_target = _type(stream)
        return cls(typename, path, old_target, new_target)

    return build


def _build_modify_order_by(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        typename = _ident(stream)
        _comma(stream)
        path = _ident(stream)
        _comma(stream)
        old_list = _name_list(stream)
        _comma(stream)
        new_list = _name_list(stream)
        return cls(typename, path, old_list, new_list)

    return build


def _build_two_idents(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        first = _ident(stream)
        _comma(stream)
        return cls(first, _ident(stream))

    return build


def _build_three_idents(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        first = _ident(stream)
        _comma(stream)
        second = _ident(stream)
        _comma(stream)
        return cls(first, second, _ident(stream))

    return build


def _build_add_operation(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    return_type = _type(stream)
    _comma(stream)
    operation_name = _ident(stream)
    parameters: tuple[Parameter, ...] = ()
    exceptions: tuple[str, ...] = ()
    if stream.accept_punct(","):
        # The next list is the argument list when its first element opens
        # with a parameter direction (or the list is empty); otherwise it
        # is the exceptions-raised list with the argument list omitted.
        checkpoint_is_params = (
            stream.peek(1).value in _DIRECTIONS
            or (stream.at_punct("(") and stream.peek(1).value == ")")
        )
        if checkpoint_is_params:
            parameters = _param_list(stream)
            if stream.accept_punct(","):
                exceptions = _name_list(stream)
        else:
            exceptions = _name_list(stream)
    return AddOperation(typename, return_type, operation_name, parameters, exceptions)


def _build_modify_arg_list(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    operation_name = _ident(stream)
    _comma(stream)
    old_parameters = _param_list(stream)
    _comma(stream)
    new_parameters = _param_list(stream)
    return ModifyOperationArgList(
        typename, operation_name, old_parameters, new_parameters
    )


def _build_one_ident(cls: type) -> Callable[[TokenStream], SchemaOperation]:
    def build(stream: TokenStream) -> SchemaOperation:
        return cls(_ident(stream))

    return build


def _build_ident_then_lists(
    cls: type, list_count: int
) -> Callable[[TokenStream], SchemaOperation]:
    """``op(Typename, (list) [, (list)])`` shapes (keys, supertype lists)."""

    def build(stream: TokenStream) -> SchemaOperation:
        typename = _ident(stream)
        lists = []
        for _ in range(list_count):
            _comma(stream)
            lists.append(_name_list(stream))
        return cls(typename, *lists)

    return build


def _build_modify_attribute_type(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    attribute_name = _ident(stream)
    _comma(stream)
    old_type = _type(stream)
    _comma(stream)
    new_type = _type(stream)
    return ModifyAttributeType(typename, attribute_name, old_type, new_type)


def _build_modify_attribute_size(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    attribute_name = _ident(stream)
    _comma(stream)
    old_size = _size(stream)
    _comma(stream)
    new_size = _size(stream)
    return ModifyAttributeSize(typename, attribute_name, old_size, new_size)


def _build_modify_return_type(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    operation_name = _ident(stream)
    _comma(stream)
    old_type = _type(stream)
    _comma(stream)
    new_type = _type(stream)
    return ModifyOperationReturnType(typename, operation_name, old_type, new_type)


def _build_modify_exceptions(stream: TokenStream) -> SchemaOperation:
    typename = _ident(stream)
    _comma(stream)
    operation_name = _ident(stream)
    _comma(stream)
    old_exceptions = _name_list(stream)
    _comma(stream)
    new_exceptions = _name_list(stream)
    return ModifyOperationExceptionsRaised(
        typename, operation_name, old_exceptions, new_exceptions
    )


_BUILDERS: dict[str, Callable[[TokenStream], SchemaOperation]] = {
    "add_type_definition": _build_one_ident(AddTypeDefinition),
    "delete_type_definition": _build_one_ident(DeleteTypeDefinition),
    "add_supertype": _build_two_idents(AddSupertype),
    "delete_supertype": _build_two_idents(DeleteSupertype),
    "modify_supertype": _build_ident_then_lists(ModifySupertype, 2),
    "add_extent_name": _build_two_idents(AddExtentName),
    "delete_extent_name": _build_two_idents(DeleteExtentName),
    "modify_extent_name": _build_three_idents(ModifyExtentName),
    "add_key_list": _build_ident_then_lists(AddKeyList, 1),
    "delete_key_list": _build_ident_then_lists(DeleteKeyList, 1),
    "modify_key_list": _build_ident_then_lists(ModifyKeyList, 2),
    "add_attribute": _build_add_attribute,
    "delete_attribute": _build_two_idents(DeleteAttribute),
    "modify_attribute": _build_three_idents(ModifyAttribute),
    "modify_attribute_type": _build_modify_attribute_type,
    "modify_attribute_size": _build_modify_attribute_size,
    "add_relationship": _build_add_relationship(AddRelationship),
    "delete_relationship": _build_two_idents(DeleteRelationship),
    "modify_relationship_target_type": _build_modify_target_type(
        ModifyRelationshipTargetType
    ),
    "modify_relationship_cardinality": _build_modify_cardinality(
        ModifyRelationshipCardinality
    ),
    "modify_relationship_order_by": _build_modify_order_by(
        ModifyRelationshipOrderBy
    ),
    "add_operation": _build_add_operation,
    "delete_operation": _build_two_idents(DeleteOperation),
    "modify_operation": _build_three_idents(ModifyOperation),
    "modify_operation_return_type": _build_modify_return_type,
    "modify_operation_arg_list": _build_modify_arg_list,
    "modify_operation_exceptions_raised": _build_modify_exceptions,
    "add_part_of_relationship": _build_add_relationship(AddPartOfRelationship),
    "delete_part_of_relationship": _build_two_idents(DeletePartOfRelationship),
    "modify_part_of_target_type": _build_modify_target_type(
        ModifyPartOfTargetType
    ),
    "modify_part_of_cardinality": _build_modify_cardinality(
        ModifyPartOfCardinality
    ),
    "modify_part_of_order_by": _build_modify_order_by(ModifyPartOfOrderBy),
    "add_instance_of_relationship": _build_add_relationship(
        AddInstanceOfRelationship
    ),
    "delete_instance_of_relationship": _build_two_idents(
        DeleteInstanceOfRelationship
    ),
    "modify_instance_of_target_type": _build_modify_target_type(
        ModifyInstanceOfTargetType
    ),
    "modify_instance_of_cardinality": _build_modify_cardinality(
        ModifyInstanceOfCardinality
    ),
    "modify_instance_of_order_by": _build_modify_order_by(
        ModifyInstanceOfOrderBy
    ),
}
