"""Figure 8: modify_relationship_target_type, before/after ODL listings.

The paper prints the two relationship declarations before and after
``modify_relationship_target_type(Employee, works_in_a, Person)``; the
bench applies the operation and checks our printed ODL contains exactly
the paper's lines.
"""

from repro.catalog import (
    FIGURE8_AFTER,
    FIGURE8_BEFORE,
    FIGURE8_OPERATION,
    company_schema,
)
from repro.odl.printer import print_interface
from repro.ops.language import parse_operation
from repro.repository.repository import SchemaRepository


def run_figure8() -> SchemaRepository:
    repository = SchemaRepository(company_schema(), custom_name="fig8")
    repository.apply(parse_operation(FIGURE8_OPERATION))
    repository.generate_custom_schema()
    return repository


def test_bench_fig8_modify_target(benchmark, report):
    repository = benchmark(run_figure8)
    custom = repository.custom_schema
    assert custom is not None

    before_dept = print_interface(repository.shrink_wrap.get("Department"))
    before_empl = print_interface(repository.shrink_wrap.get("Employee"))
    after_dept = print_interface(custom.get("Department"))
    after_person = print_interface(custom.get("Person"))
    report(
        "fig8_modify_target_type",
        "operation: " + FIGURE8_OPERATION + "\n\n"
        "-- before --\n" + before_dept + "\n" + before_empl + "\n\n"
        "-- after --\n" + after_dept + "\n" + after_person,
    )

    # The paper's exact before/after declarations.
    assert FIGURE8_BEFORE["Department"] + ";" in before_dept
    assert FIGURE8_BEFORE["Employee"] + ";" in before_empl
    assert FIGURE8_AFTER["Department"] + ";" in after_dept
    assert FIGURE8_AFTER["Person"] + ";" in after_person
    # The moved inverse leaves Employee entirely.
    assert "works_in_a" not in custom.get("Employee").relationships
    custom.validate()
