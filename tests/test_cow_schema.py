"""Copy-on-write fork aliasing torture tests (DESIGN.md 5j).

``Schema.fork`` shares every ``InterfaceDef`` (and the columnar
adjacency) with its parent; divergence is paid per touched interface.
These tests hammer the aliasing boundary from every direction: parent
writes after fork, fork writes after parent, interleaved undo/redo on
both workspaces, fork-of-fork chains, ``fork(at=snapshot)`` on a CoW
child, delete/re-add name reuse, and the satellite regression that an
undone type deletion restores an object whose recorded history stays
independent of later mutations.
"""

from __future__ import annotations

import gc

import pytest

from repro.model.attributes import Attribute
from repro.model.fingerprint import schema_fingerprint, schemas_equal
from repro.model.index import scan_parts, scan_subtypes
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd, RelationshipKind
from repro.model.schema import Schema
from repro.model.types import ScalarType, set_of
from repro.ops.attribute_ops import AddAttribute
from repro.ops.type_ops import DeleteTypeDefinition
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


def build_schema(name: str = "cow") -> Schema:
    schema = Schema(name)
    schema.add_interface(InterfaceDef("Person"))
    schema.add_interface(InterfaceDef("Student", supertypes=["Person"]))
    schema.add_interface(InterfaceDef("Course"))
    schema.get("Person").add_attribute(Attribute("name", ScalarType("string")))
    schema.get("Course").add_attribute(Attribute("title", ScalarType("string")))
    schema.get("Student").add_relationship(
        RelationshipEnd(
            "takes", set_of("Course"), "Course", "taken_by",
            RelationshipKind.ASSOCIATION,
        )
    )
    schema.get("Course").add_relationship(
        RelationshipEnd(
            "taken_by", set_of("Student"), "Student", "takes",
            RelationshipKind.ASSOCIATION,
        )
    )
    return schema


class TestForkSharing:
    def test_fork_shares_every_interface_object(self):
        parent = build_schema()
        fork = parent.fork("branch")
        for name in parent.type_names():
            assert fork.interfaces[name] is parent.interfaces[name]
        assert schemas_equal(parent, fork)
        assert fork.type_names() == parent.type_names()

    def test_fork_get_materialises_a_private_copy(self):
        parent = build_schema()
        fork = parent.fork("branch")
        fetched = fork.get("Person")
        assert fetched is not parent.interfaces["Person"]
        assert fork.interfaces["Person"] is fetched
        # the parent still owns its original, untouched
        assert parent.interfaces["Person"] is parent.get("Person")

    def test_fork_adjacency_answers_without_a_rebuild(self):
        parent = build_schema()
        parent.descendants("Person")  # warm the parent's columns
        fork = parent.fork("branch")
        assert fork.descendants("Person") == {"Student"}
        assert fork.index.referencers_of("Course") == {"Student"}
        assert fork.parts("Person") == scan_parts(fork, "Person")
        assert fork.index.adjacency.rebuilds == 0

    def test_parent_mutation_trips_the_fork_overlay_pin(self):
        parent = build_schema()
        fork = parent.fork("branch")
        assert fork.subtypes("Person") == ["Student"]
        parent.add_interface(InterfaceDef("Staff", supertypes=["Person"]))
        # memoized answers stay valid (the fork's content did not move) ...
        assert fork.subtypes("Person") == ["Student"]
        # ... and a columnar query hits the overlay's base-version pin,
        # which privatises the columns with one full rebuild
        assert fork.descendants("Person") == {"Student"}
        assert fork.index.adjacency.rebuilds == 1
        assert parent.subtypes("Person") == ["Student", "Staff"]


class TestParentWritesAfterFork:
    def test_attribute_write_is_invisible_to_the_fork(self):
        parent = build_schema()
        fork = parent.fork("branch")
        before = schema_fingerprint(fork)
        parent.get("Person").add_attribute(Attribute("age", ScalarType("long")))
        assert schema_fingerprint(fork) == before
        assert "age" not in fork.get("Person").attributes

    def test_delete_and_name_reuse_are_invisible_to_the_fork(self):
        parent = build_schema()
        fork = parent.fork("branch")
        parent.remove_interface("Course")
        replacement = InterfaceDef("Course")
        replacement.add_attribute(Attribute("code", ScalarType("long")))
        parent.add_interface(replacement)
        course = fork.get("Course")
        assert "title" in course.attributes
        assert "code" not in course.attributes
        assert "code" in parent.get("Course").attributes

    def test_sibling_forks_stay_mutually_isolated(self):
        parent = build_schema()
        left = parent.fork("left")
        right = parent.fork("right")
        parent.get("Person").add_attribute(Attribute("p", ScalarType("long")))
        left.get("Person").add_attribute(Attribute("l", ScalarType("long")))
        attrs = lambda s: set(s.get("Person").attributes)  # noqa: E731
        assert attrs(parent) == {"name", "p"}
        assert attrs(left) == {"name", "l"}
        assert attrs(right) == {"name"}

    def test_random_parent_workload_never_leaks_into_the_fork(self):
        parent = generate_schema(WorkloadSpec(types=20, seed=11))
        fork = parent.fork("branch")
        before = schema_fingerprint(fork)
        workspace = Workspace(parent)
        # the workspace copies; mutate the original schema directly too
        for operation in generate_operations(parent, count=12, seed=11):
            operation.apply(parent)
        assert schema_fingerprint(fork) == before
        for name in fork.type_names():
            assert fork.subtypes(name) == scan_subtypes(fork, name)
        del workspace


class TestForkWritesAfterParent:
    def test_fork_mutators_are_invisible_to_the_parent(self):
        parent = build_schema()
        fork = parent.fork("branch")
        before = schema_fingerprint(parent)
        fork.get("Person").add_attribute(Attribute("x", ScalarType("long")))
        fork.get("Student").remove_supertype("Person")
        assert schema_fingerprint(parent) == before
        assert parent.subtypes("Person") == ["Student"]
        assert fork.subtypes("Person") == []

    def test_fork_delete_and_name_reuse_are_invisible_to_the_parent(self):
        parent = build_schema()
        fork = parent.fork("branch")
        fork.remove_interface("Course")
        fork.add_interface(InterfaceDef("Course"))
        assert "title" in parent.get("Course").attributes
        assert "title" not in fork.get("Course").attributes

    def test_fork_replays_through_the_origin_prefix(self):
        parent = build_schema()
        fork = parent.fork("branch")
        fork.get("Person").add_attribute(Attribute("x", ScalarType("long")))
        assert fork.log.replayable
        rebuilt = fork.log.replay(fork.name)
        assert schemas_equal(rebuilt, fork)


class TestForkOfForkChains:
    def test_three_generation_chain_is_pairwise_isolated(self):
        grand = build_schema("grand")
        parent = grand.fork("parent")
        child = parent.fork("child")
        grand.get("Person").add_attribute(Attribute("g", ScalarType("long")))
        parent.get("Person").add_attribute(Attribute("p", ScalarType("long")))
        child.get("Person").add_attribute(Attribute("c", ScalarType("long")))
        attrs = lambda s: set(s.get("Person").attributes)  # noqa: E731
        assert attrs(grand) == {"name", "g"}
        assert attrs(parent) == {"name", "p"}
        assert attrs(child) == {"name", "c"}

    def test_grandchild_replays_through_both_origin_prefixes(self):
        grand = build_schema("grand")
        parent = grand.fork("parent")
        parent.get("Course").set_extent("courses")
        child = parent.fork("child")
        child.get("Person").add_attribute(Attribute("c", ScalarType("long")))
        rebuilt = child.log.replay(child.name)
        assert schemas_equal(rebuilt, child)

    def test_middle_deletion_leaves_both_neighbours_whole(self):
        grand = build_schema("grand")
        parent = grand.fork("parent")
        child = parent.fork("child")
        parent.remove_interface("Course")
        assert "Course" in grand
        assert "Course" in child
        assert "title" in child.get("Course").attributes


class TestInterleavedWorkspaceHistory:
    def _op(self, typename: str, attr: str) -> AddAttribute:
        return AddAttribute(typename, ScalarType("long"), attr)

    def test_undo_redo_interleaved_across_the_cow_boundary(self):
        workspace = Workspace(build_schema())
        workspace.apply(self._op("Person", "a"))
        branch = workspace.fork("branch")
        branch.apply(self._op("Person", "b"))
        workspace.apply(self._op("Course", "c"))
        parent_full = schema_fingerprint(workspace.schema)
        branch_full = schema_fingerprint(branch.schema)

        workspace.undo_last()  # drop "c"; branch must not move
        assert schema_fingerprint(branch.schema) == branch_full
        branch.undo_last()  # drop "b"; parent must not move
        assert "c" not in workspace.schema.get("Course").attributes
        assert "b" not in branch.schema.get("Person").attributes
        workspace.redo()
        branch.redo()
        assert schema_fingerprint(workspace.schema) == parent_full
        assert schema_fingerprint(branch.schema) == branch_full

    def test_branch_undo_of_shared_type_edit_stays_private(self):
        workspace = Workspace(build_schema())
        branch = workspace.fork("branch")
        parent_before = schema_fingerprint(workspace.schema)
        branch.apply(self._op("Person", "b"))
        branch.undo_last()
        branch.redo()
        branch.undo_last()
        assert schema_fingerprint(workspace.schema) == parent_before
        assert schemas_equal(branch.schema, workspace.schema)

    def test_fork_at_snapshot_on_a_cow_child_rewinds_with_warning(self):
        workspace = Workspace(build_schema())
        workspace.apply(self._op("Person", "a"))
        branch = workspace.fork("branch")
        bookmark = branch.snapshot()
        bookmarked = schema_fingerprint(branch.schema)
        branch.apply(self._op("Course", "c"))
        diverged = schema_fingerprint(branch.schema)
        with pytest.warns(RuntimeWarning, match="itself a fork"):
            rewound = branch.fork("rewound", at=bookmark)
        assert schema_fingerprint(rewound.schema) == bookmarked
        # the donor branch is rolled forward again afterwards
        assert schema_fingerprint(branch.schema) == diverged
        # and the new branch is itself isolated
        rewound.apply(self._op("Person", "r"))
        assert "r" not in branch.schema.get("Person").attributes


class TestDeleteUndoIndependence:
    """Satellite: delete-undo restores an object with frozen history."""

    def test_undone_deletion_restores_a_mutable_independent_object(self):
        schema = build_schema()
        schema.add_interface(InterfaceDef("Lonely"))
        workspace = Workspace(schema)
        workspace.apply(DeleteTypeDefinition("Lonely"))
        assert "Lonely" not in workspace.schema
        workspace.undo_last()
        restored = workspace.schema.get("Lonely")
        restored.add_attribute(Attribute("late", ScalarType("long")))
        # the add-record payload froze the as-added state, so replay
        # still reproduces the live schema exactly
        rebuilt = workspace.schema.log.replay(workspace.schema.name)
        assert schemas_equal(rebuilt, workspace.schema)

    def test_restored_object_is_independent_of_prior_forks(self):
        parent = build_schema()
        parent.add_interface(InterfaceDef("Lonely"))
        fork = parent.fork("branch")
        removed = parent.remove_interface("Lonely")
        parent.add_interface(removed)  # undo of the deletion
        parent.get("Lonely").add_attribute(Attribute("p", ScalarType("long")))
        assert "p" not in fork.get("Lonely").attributes


class TestBorrowLifecycle:
    def test_release_cow_withdraws_the_registrations(self):
        parent = build_schema()
        scratch = parent.fork("scratch")
        assert parent.log._cow_borrows
        scratch.release_cow()
        assert not parent.log._cow_borrows
        # idempotent
        scratch.release_cow()

    def test_dead_forks_are_pruned_by_the_barrier_after_gc(self):
        parent = build_schema()
        fork = parent.fork("branch")
        assert len(parent.log._cow_borrows) == 1
        del fork
        gc.collect()
        parent.get("Person").add_attribute(Attribute("a", ScalarType("long")))
        assert parent.log._cow_borrows == []

    def test_eager_copy_stays_fully_independent(self):
        parent = build_schema()
        duplicate = parent.copy("dup")
        duplicate.get("Person").add_attribute(Attribute("d", ScalarType("long")))
        parent.get("Person").add_attribute(Attribute("p", ScalarType("long")))
        assert "d" not in parent.get("Person").attributes
        assert "p" not in duplicate.get("Person").attributes
