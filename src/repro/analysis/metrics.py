"""Schema complexity metrics.

The introduction motivates the whole approach with schema complexity:
"a global schema, by its very nature, integrates all views ... global
schemas can be difficult to understand and to modify."  These metrics
quantify that complexity -- and, by comparing a whole schema against its
concept schemas, quantify how much smaller each point of view is than
the global schema the designer would otherwise face (the decomposition
payoff the paper argues for).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concepts.decompose import Decomposition, decompose
from repro.model.schema import Schema


@dataclass(frozen=True, slots=True)
class SchemaMetrics:
    """Size and shape numbers for one schema."""

    interfaces: int
    attributes: int
    relationship_ends: int
    operations: int
    supertype_links: int
    part_of_links: int
    instance_of_links: int
    constructs: int
    max_generalization_depth: int
    max_relationship_fanout: int
    isolated_types: int

    def render(self) -> str:
        """Aligned one-metric-per-line rendering."""
        rows = [
            ("interfaces", self.interfaces),
            ("attributes", self.attributes),
            ("relationship ends", self.relationship_ends),
            ("operations", self.operations),
            ("supertype links", self.supertype_links),
            ("part-of links", self.part_of_links),
            ("instance-of links", self.instance_of_links),
            ("total constructs", self.constructs),
            ("max generalization depth", self.max_generalization_depth),
            ("max relationship fan-out", self.max_relationship_fanout),
            ("isolated types", self.isolated_types),
        ]
        width = max(len(label) for label, _ in rows)
        return "\n".join(
            f"{label.ljust(width)}  {value}" for label, value in rows
        )


def schema_metrics(schema: Schema) -> SchemaMetrics:
    """Compute the complexity metrics of *schema*."""
    stats = schema.stats()
    constructs = (
        stats["interfaces"]
        + stats["attributes"]
        + stats["relationship_ends"]
        + stats["operations"]
        + stats["supertype_links"]
        + sum(len(i.keys) for i in schema)
        + sum(1 for i in schema if i.extent is not None)
    )
    depth = 0
    for root in schema.generalization_roots():
        depth = max(depth, _depth_below(schema, root))
    fanout = max(
        (len(i.relationships) for i in schema), default=0
    )
    isolated = sum(
        1
        for i in schema
        if not i.relationships
        and not i.supertypes
        and not schema.subtypes(i.name)
    )
    return SchemaMetrics(
        interfaces=stats["interfaces"],
        attributes=stats["attributes"],
        relationship_ends=stats["relationship_ends"],
        operations=stats["operations"],
        supertype_links=stats["supertype_links"],
        part_of_links=stats["part_of_links"],
        instance_of_links=stats["instance_of_links"],
        constructs=constructs,
        max_generalization_depth=depth,
        max_relationship_fanout=fanout,
        isolated_types=isolated,
    )


def _depth_below(schema: Schema, node: str, seen: frozenset[str] = frozenset()) -> int:
    subtypes = [s for s in schema.subtypes(node) if s not in seen]
    if not subtypes:
        return 0
    return 1 + max(
        _depth_below(schema, s, seen | {node}) for s in subtypes
    )


@dataclass(frozen=True, slots=True)
class DecompositionPayoff:
    """How much smaller the points of view are than the global schema.

    ``mean_concept_fraction`` is the average number of types a designer
    faces per concept schema divided by the global type count -- the
    paper's "consider the shrink wrap schema a piece at a time" benefit,
    as a number.
    """

    global_types: int
    concept_count: int
    mean_concept_types: float
    largest_concept_types: int
    mean_concept_fraction: float

    def render(self) -> str:
        return (
            f"global schema: {self.global_types} types; "
            f"{self.concept_count} concept schemas averaging "
            f"{self.mean_concept_types:.1f} types each "
            f"({self.mean_concept_fraction:.0%} of the global schema; "
            f"largest {self.largest_concept_types})"
        )


def decomposition_payoff(
    schema: Schema, decomposition: Decomposition | None = None
) -> DecompositionPayoff:
    """Quantify the per-concept-schema size relative to the whole."""
    decomposition = decomposition or decompose(schema)
    sizes = [len(c.members) for c in decomposition.all_concepts()]
    global_types = max(len(schema), 1)
    mean_size = sum(sizes) / len(sizes) if sizes else 0.0
    return DecompositionPayoff(
        global_types=len(schema),
        concept_count=len(sizes),
        mean_concept_types=mean_size,
        largest_concept_types=max(sizes, default=0),
        mean_concept_fraction=mean_size / global_types,
    )
