"""Memoized reverse-adjacency indexes over a schema's link graphs.

Every concept-schema extraction, propagation expansion, and consistency
pass bottoms out in :class:`~repro.model.schema.Schema`'s graph queries.
Answering them by scanning all interfaces makes ``descendants`` O(N^2)
and rebuilds the complete part-of edge list on every ``parts`` call.
:class:`SchemaIndex` maintains the reverse direction of each link family
once and answers from dictionaries instead:

* ``subtype_map``     -- supertype name -> direct subtype names,
* ``parts_map``       -- whole name -> direct part names,
* ``wholes_map``      -- part name -> direct whole names,
* ``instance_map``    -- generic name -> direct instance names,
* ``generic_map``     -- instance name -> direct generic names,
* ``part_of_edges`` / ``instance_of_edges`` -- the cached edge triples,
* ``relationship_pairs`` -- the cached (owner, end) listing,
* ``declaration_order``  -- interface name -> declaration position.

**Invalidation contract.**  The index is a subscriber of the schema's
mutation spine (:mod:`repro.model.mutation`): ``Schema.generation`` is
the spine's monotonic ``seq``, bumped by every emitted
:class:`~repro.model.mutation.MutationRecord` -- i.e. by every mutator
on :class:`~repro.model.schema.Schema` and
:class:`~repro.model.interface.InterfaceDef`.  Each cache family is
stamped with the generation it was built at; a query whose stamp no
longer matches rebuilds that family lazily.  Code that mutates schema
content without going through a mutator (direct container assignment)
must call ``Schema.touch()`` itself -- see DESIGN.md §5e.

The module also ships the ``scan_*`` reference implementations: the
original full-scan queries, kept as the executable specification the
index is validated against (property tests) and benchmarked against
(``benchmarks/test_bench_index_scaling.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.model.relationships import RelationshipEnd, RelationshipKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.schema import Schema

#: (one-side owner, many-side target, to-many end) of one hierarchy link.
Edge = tuple[str, str, RelationshipEnd]


# ----------------------------------------------------------------------
# Compatibility re-exports
# ----------------------------------------------------------------------
#
# The aspect vocabulary and the dirty journal moved to the mutation
# spine (repro.model.mutation) when mutations were reified; the legacy
# string constants are now Aspect enum members (StrEnum: they compare
# and hash like the old strings).  Kept importable from here for one
# release.

from repro.model.mutation import (  # noqa: E402,F401 (re-export)
    ALL_ASPECTS as ALL_TOUCH_ASPECTS,
    ORDER_CLOCK,
    Aspect,
    AspectClock,
    DirtyJournal,
    MutationRecord,
    aspect_for_kind,
    replayable_kind,
)
from repro.model.columnar import ColumnarAdjacency  # noqa: E402

ASPECT_ISA = Aspect.ISA
ASPECT_ATTRS = Aspect.ATTRS
ASPECT_KEYS = Aspect.KEYS
ASPECT_EXTENT = Aspect.EXTENT
ASPECT_OPS = Aspect.OPS
ASPECT_REL_ASSOCIATION = Aspect.REL_ASSOCIATION
ASPECT_REL_PART_OF = Aspect.REL_PART_OF
ASPECT_REL_INSTANCE_OF = Aspect.REL_INSTANCE_OF
ASPECT_MEMBERSHIP = Aspect.MEMBERSHIP


# Aspect-sharded stamp dependencies per cache family.  A family rebuilds
# only when a record carrying one of its dependency clocks has landed on
# the spine since it was built (membership and declaration order affect
# every listing's content or ordering).
_ISA_DEPS = (Aspect.ISA, Aspect.MEMBERSHIP, ORDER_CLOCK)
_PART_DEPS = (Aspect.REL_PART_OF, Aspect.MEMBERSHIP, ORDER_CLOCK)
_INSTANCE_DEPS = (Aspect.REL_INSTANCE_OF, Aspect.MEMBERSHIP, ORDER_CLOCK)
_PAIR_DEPS = (
    Aspect.REL_ASSOCIATION,
    Aspect.REL_PART_OF,
    Aspect.REL_INSTANCE_OF,
    Aspect.MEMBERSHIP,
    ORDER_CLOCK,
)
_ORDER_DEPS = (Aspect.MEMBERSHIP, ORDER_CLOCK)


class SchemaIndex:
    """Aspect-stamped caches plus the columnar incremental adjacency.

    Two complementary mechanisms keep graph queries fast at 100k types:

    * **Aspect-sharded stamps** -- each scan-built cache family stamps
      the :class:`~repro.model.mutation.AspectClock` counters of only
      the aspects whose records can change it, so an attribute edit no
      longer forces an O(N) subtype-map rebuild.
    * **Columnar adjacency** -- ISA parents/children and the reverse
      reference map live in :class:`~repro.model.columnar.
      ColumnarAdjacency`: interned-name integer ids over flat
      ``array('i')`` rows with free-list id reuse, folded
      record-by-record from the spine, so ``descendants`` and "who
      references type X" answer in O(result) with no per-mutation
      rebuild at all and no per-edge container overhead.  The previous
      dict implementation survives as :class:`~repro.model.columnar.
      DictAdjacency`, the differential reference spec.

    ``scope`` records are declarative annotations (belt-and-suspenders
    for the validation journal's dirty-name set); actual content changes
    always land as mutator records (``tools/check_mutators.py`` and the
    spine differentials enforce this), so they advance no clock here.
    Lossy records (``touch`` / unknown kinds) invalidate everything.
    """

    __slots__ = (
        "_schema",
        "_caches",
        "_clock",
        "adjacency",
        "hits",
        "misses",
        "rebuilds",
    )

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        self._caches: dict[str, tuple[object, object]] = {}
        self._clock = AspectClock()
        #: The columnar (struct-of-arrays) ISA / reverse-reference store:
        #: interned-name ids, flat ``array('i')`` rows, free-list reuse.
        #: The dict implementation it replaced survives as
        #: :class:`repro.model.columnar.DictAdjacency`, the reference
        #: spec the ``columnar-vs-dict-adjacency`` differential holds
        #: this store to.
        self.adjacency = ColumnarAdjacency(schema)
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0
        schema.log.subscribe(self._observe)

    # ------------------------------------------------------------------
    # Spine subscriber
    # ------------------------------------------------------------------

    def _observe(self, record: MutationRecord) -> None:
        """Fold one mutation record into clocks and the columnar store."""
        if record.kind == "scope":
            return
        self._clock.observe(record)
        self.adjacency.observe(record)

    def adopt_base_adjacency(self, parent: "SchemaIndex") -> None:
        """Overlay the parent's columnar store instead of rebuilding.

        Called by ``Schema.fork`` right after the fork's fresh index is
        wired: replaces the cold (dirty) columnar store with a CoW
        overlay of the parent's, so the fork's first graph query costs
        O(ids) pointer copies instead of an O(types) scan rebuild.  The
        sharded dict caches stay cold -- they are already lazy and
        per-family.  ``_observe`` looks ``self.adjacency`` up
        dynamically, so swapping the store here keeps the spine
        subscription intact.
        """
        self.adjacency = parent.adjacency.fork_view(self._schema)

    def _count_adjacency(self, rebuilt: bool) -> None:
        """Keep the hit/miss counters honest for columnar answers."""
        if rebuilt:
            self.misses += 1
        else:
            self.hits += 1

    # ------------------------------------------------------------------
    # Cache machinery
    # ------------------------------------------------------------------

    def _get(self, family: str, builder: Callable[[], object]) -> object:
        generation = self._schema.generation
        cached = self._caches.get(family)
        if cached is not None:
            if cached[0] == generation:
                self.hits += 1
                return cached[1]
            self.rebuilds += 1
        self.misses += 1
        value = builder()
        self._caches[family] = (generation, value)
        return value

    def _get_sharded(
        self,
        family: str,
        deps: tuple[object, ...],
        builder: Callable[[], object],
    ) -> object:
        """Like :meth:`_get` but stamped with per-aspect clocks."""
        stamp = self._clock.stamp(deps)
        cached = self._caches.get(family)
        if cached is not None:
            if cached[0] == stamp:
                self.hits += 1
                return cached[1]
            self.rebuilds += 1
        self.misses += 1
        value = builder()
        self._caches[family] = (stamp, value)
        return value

    def invalidate(self) -> None:
        """Drop every cache family (normally the stamps suffice)."""
        self._caches.clear()
        self.adjacency.mark_dirty()

    def memo(self, family: str, builder: Callable[[], object]) -> object:
        """Generation-stamped memoization for derived whole-schema values.

        Callers own the *family* namespace (prefix it); the cached value
        is dropped automatically when the schema's generation moves, so
        the value must be a pure function of schema content.  Used by
        the verification engine to avoid re-fingerprinting an unchanged
        schema between differential checks.
        """
        return self._get(family, builder)

    def stats(self) -> dict[str, int]:
        """Hit / miss / rebuild counters plus current cache residency."""
        adjacency = self.adjacency.stats()
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rebuilds": self.rebuilds,
            "cached_families": len(self._caches),
            "generation": self._schema.generation,
            "adjacency_ids": adjacency["ids"],
            "adjacency_capacity": adjacency["capacity"],
            "adjacency_free_ids": adjacency["free_ids"],
            "adjacency_rebuilds": adjacency["rebuilds"],
        }

    def reset_stats(self) -> None:
        """Zero the counters (benchmarks measure phases separately)."""
        self.hits = 0
        self.misses = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # Generalization hierarchy
    # ------------------------------------------------------------------

    def subtype_map(self) -> dict[str, list[str]]:
        """Supertype name -> direct subtypes, in declaration order.

        Keys include dangling supertype names (a subtype may reference a
        type the schema does not define); resolution against the schema
        is the caller's concern.
        """
        return self._get_sharded(  # type: ignore[return-value]
            "subtypes", _ISA_DEPS, self._build_subtype_map
        )

    def _build_subtype_map(self) -> dict[str, list[str]]:
        result: dict[str, list[str]] = {}
        for interface in self._schema:
            for supertype in interface.supertypes:
                result.setdefault(supertype, []).append(interface.name)
        return result

    def descendants_of(self, name: str) -> set[str]:
        """Transitive subtypes of *name*; excludes *name* itself.

        Answered from the columnar store: an integer BFS over the flat
        ISA-children rows, folded record-by-record from the spine, so a
        100-op plan pays O(ops) maintenance instead of O(N) rebuilds.
        """
        self._count_adjacency(self.adjacency.ensure_fresh())
        return self.adjacency.descendants_of(name)

    def descendants_closure(self, seeds: set[str]) -> set[str]:
        """Every descendant of any seed, the seeds themselves excluded
        unless reachable from another seed."""
        self._count_adjacency(self.adjacency.ensure_fresh())
        return self.adjacency.descendants_closure(seeds)

    # ------------------------------------------------------------------
    # Reverse references (who mentions type X?)
    # ------------------------------------------------------------------

    def referencers_of(self, target: str) -> set[str]:
        """Names of interfaces whose definition references *target*.

        Reference = supertype entry, attribute domain, relationship
        target/inverse type, or operation signature type — exactly
        :meth:`InterfaceDef.referenced_type_names`.  Maintained
        incrementally: a mutator record only marks its owner pending,
        and pending owners re-derive their reference rows lazily.
        """
        self._count_adjacency(self.adjacency.ensure_fresh())
        return self.adjacency.referencers_of(target)

    def ends_targeting(
        self, targets: set[str]
    ) -> list[tuple[str, RelationshipEnd]]:
        """(owner, end) pairs with ``end.target_type`` in *targets*.

        Same relative order as :meth:`relationship_pairs`, but computed
        from the incremental reverse-reference rows: an end targeting X
        implies its owner references X (``referenced_type_names``
        includes every end's target type), so only referencing owners'
        end lists are inspected — no whole-schema pair listing rebuild.
        """
        self._count_adjacency(self.adjacency.ensure_fresh())
        owners: set[str] = set(targets)
        for target in targets:
            owners.update(self.adjacency.referencers_of(target))
        pairs: list[tuple[str, RelationshipEnd]] = []
        if not owners:
            return pairs
        for name in self._schema.interfaces:
            if name not in owners:
                continue
            for end in self._schema.interfaces[name].relationships.values():
                if end.target_type in targets:
                    pairs.append((name, end))
        return pairs

    # ------------------------------------------------------------------
    # Part-of / instance-of hierarchies
    # ------------------------------------------------------------------

    def part_of_edges(self) -> list[Edge]:
        """(whole, part, to-parts end) triples, in declaration order."""
        return self._get_sharded(  # type: ignore[return-value]
            "part_edges",
            _PART_DEPS,
            lambda: scan_link_edges(self._schema, RelationshipKind.PART_OF),
        )

    def instance_of_edges(self) -> list[Edge]:
        """(generic, instance, to-instances end) triples."""
        return self._get_sharded(  # type: ignore[return-value]
            "instance_edges",
            _INSTANCE_DEPS,
            lambda: scan_link_edges(self._schema, RelationshipKind.INSTANCE_OF),
        )

    def part_of_edge_count(self) -> int:
        """Number of part-of edges without copying the edge list.

        ``Schema.stats()`` used to materialise a fresh edge-list copy
        just to ``len()`` it; this answers from the cached family in
        O(1) once built.
        """
        return len(self.part_of_edges())

    def instance_of_edge_count(self) -> int:
        """Number of instance-of edges without copying the edge list."""
        return len(self.instance_of_edges())

    def parts_map(self) -> dict[str, list[str]]:
        """Whole name -> direct part names."""
        return self._get_sharded(  # type: ignore[return-value]
            "parts", _PART_DEPS, lambda: _forward_map(self.part_of_edges())
        )

    def wholes_map(self) -> dict[str, list[str]]:
        """Part name -> direct whole names."""
        return self._get_sharded(  # type: ignore[return-value]
            "wholes", _PART_DEPS, lambda: _reverse_map(self.part_of_edges())
        )

    def instance_map(self) -> dict[str, list[str]]:
        """Generic name -> direct instance names."""
        return self._get_sharded(  # type: ignore[return-value]
            "instances",
            _INSTANCE_DEPS,
            lambda: _forward_map(self.instance_of_edges()),
        )

    def generic_map(self) -> dict[str, list[str]]:
        """Instance name -> direct generic names."""
        return self._get_sharded(  # type: ignore[return-value]
            "generics",
            _INSTANCE_DEPS,
            lambda: _reverse_map(self.instance_of_edges()),
        )

    # ------------------------------------------------------------------
    # Whole-schema listings
    # ------------------------------------------------------------------

    def relationship_pairs(self) -> list[tuple[str, RelationshipEnd]]:
        """Every (owner name, end) pair in declaration order."""
        return self._get_sharded(  # type: ignore[return-value]
            "pairs", _PAIR_DEPS, lambda: scan_relationship_pairs(self._schema)
        )

    def declaration_order(self) -> dict[str, int]:
        """Interface name -> position in declaration order."""
        return self._get_sharded(  # type: ignore[return-value]
            "order",
            _ORDER_DEPS,
            lambda: {name: i for i, name in enumerate(self._schema.interfaces)},
        )


def _forward_map(edges: list[Edge]) -> dict[str, list[str]]:
    result: dict[str, list[str]] = {}
    for owner, target, _ in edges:
        result.setdefault(owner, []).append(target)
    return result


def _reverse_map(edges: list[Edge]) -> dict[str, list[str]]:
    result: dict[str, list[str]] = {}
    for owner, target, _ in edges:
        result.setdefault(target, []).append(owner)
    return result


# ----------------------------------------------------------------------
# Full-scan reference implementations
# ----------------------------------------------------------------------
#
# These are the pre-index query bodies, preserved verbatim in behaviour.
# The invalidation property tests assert that after any operation stream
# (including undo / redo / reset) every indexed query still equals its
# scan counterpart, and the scaling bench quantifies what the index buys
# over them.


def scan_link_edges(schema: "Schema", kind: RelationshipKind) -> list[Edge]:
    """Directed edges (one-side -> many-side) for part-of/instance-of.

    Only the to-many end contributes an edge so each relationship is
    counted once; the edge runs from the owner of the to-many end (the
    whole / the generic entity) to its target (the part / instance).
    """
    edges: list[Edge] = []
    for interface in schema:
        for end in interface.relationships_of_kind(kind):
            if end.is_to_many:
                edges.append((interface.name, end.target_type, end))
    return edges


def scan_subtypes(schema: "Schema", name: str) -> list[str]:
    """Direct subtypes of *name* by scanning every interface."""
    return [
        interface.name
        for interface in schema
        if name in interface.supertypes
    ]


def scan_descendants(schema: "Schema", name: str) -> set[str]:
    """Transitive subtypes of *name* via repeated full scans."""
    schema.get(name)  # raise for unknown types
    result: set[str] = set()
    frontier = scan_subtypes(schema, name)
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(scan_subtypes(schema, current))
    return result


def scan_ancestors(schema: "Schema", name: str) -> set[str]:
    """Transitive *resolved* supertypes of *name* (dangling names are
    not types and are excluded, mirroring ``Schema.ancestors``)."""
    result: set[str] = set()
    frontier = [
        supertype
        for supertype in schema.get(name).supertypes
        if supertype in schema.interfaces
    ]
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(
            supertype
            for supertype in schema.interfaces[current].supertypes
            if supertype in schema.interfaces
        )
    return result


def scan_generalization_roots(schema: "Schema") -> list[str]:
    """Types with subtypes but no *resolved* supertypes."""
    return [
        interface.name
        for interface in schema
        if not any(s in schema.interfaces for s in interface.supertypes)
        and scan_subtypes(schema, interface.name)
    ]


def scan_parts(schema: "Schema", name: str) -> list[str]:
    """Direct components of *name* by rebuilding the edge list."""
    edges = scan_link_edges(schema, RelationshipKind.PART_OF)
    return [part for whole, part, _ in edges if whole == name]


def scan_wholes(schema: "Schema", name: str) -> list[str]:
    """Direct wholes of *name* by rebuilding the edge list."""
    edges = scan_link_edges(schema, RelationshipKind.PART_OF)
    return [whole for whole, part, _ in edges if part == name]


def scan_aggregation_roots(schema: "Schema") -> list[str]:
    """Wholes that are not themselves parts of anything."""
    edges = scan_link_edges(schema, RelationshipKind.PART_OF)
    wholes = {whole for whole, _, _ in edges}
    parts = {part for _, part, _ in edges}
    return [name for name in schema.type_names() if name in wholes - parts]


def scan_instance_of_roots(schema: "Schema") -> list[str]:
    """Generic entities that are not instances of anything."""
    edges = scan_link_edges(schema, RelationshipKind.INSTANCE_OF)
    generics = {generic for generic, _, _ in edges}
    instances = {inst for _, inst, _ in edges}
    return [name for name in schema.type_names() if name in generics - instances]


def scan_relationship_pairs(
    schema: "Schema",
) -> list[tuple[str, RelationshipEnd]]:
    """Every (owner name, end) pair in declaration order."""
    return [
        (interface.name, end)
        for interface in schema
        for end in interface.relationships.values()
    ]
