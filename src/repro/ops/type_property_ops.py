"""Type-property operations: supertypes (ISA), extent names, key lists.

Per Table 1, the supertype operations belong to generalization hierarchy
concept schemas ("supertype relationships can be added, deleted, and
modified for re-wiring the generalization hierarchy"), while extent and
key operations belong to wagon wheels ("the complete set of operations
for the type properties, extent name and key list, are allowed").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concepts.base import ConceptKind
from repro.model.mutation import Aspect
from repro.model.schema import Schema
from repro.ops.base import (
    FREE_CONTEXT,
    ConstraintViolation,
    OperationContext,
    SchemaOperation,
    Undo,
    render_list,
)
from repro.ops.effects import WILDCARD

_GH = frozenset({ConceptKind.GENERALIZATION})
_WW = frozenset({ConceptKind.WAGON_WHEEL})

#: Cells the supertype re-wiring family may rewrite via propagation:
#: keys and relationship order-by lists stranded in any descendant.
_STRAND_CASCADES = frozenset({
    (WILDCARD, Aspect.KEYS),
    (WILDCARD, Aspect.REL_ASSOCIATION),
    (WILDCARD, Aspect.REL_PART_OF),
    (WILDCARD, Aspect.REL_INSTANCE_OF),
})

#: Cells :func:`_check_nothing_stranded` inspects.
_STRAND_READS = _STRAND_CASCADES | frozenset({
    (WILDCARD, Aspect.ISA),
    (WILDCARD, Aspect.ATTRS),
})


def attributes_visible_with_supertypes(
    schema: Schema,
    name: str,
    override_type: str,
    override_supertypes: tuple[str, ...],
) -> set[str]:
    """Attribute names *name* would see were *override_type* re-wired.

    Equivalent to forking the schema, giving *override_type* the
    supertype list *override_supertypes*, and unioning *name*'s own and
    inherited attribute names -- but computed as a plain ancestry walk,
    so the ISA re-wiring family and its propagation cascades never pay
    for a scratch schema copy.  Dangling supertype names are skipped,
    matching ``Schema.ancestors``.
    """
    interfaces = schema.interfaces
    seen: set[str] = set()
    attrs: set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in seen or current not in interfaces:
            continue
        seen.add(current)
        attrs.update(interfaces[current].attributes)
        supertypes = (
            override_supertypes
            if current == override_type
            else interfaces[current].supertypes
        )
        stack.extend(supertypes)
    return attrs


def _check_nothing_stranded(
    schema: Schema, typename: str, resulting_supertypes: list[str]
) -> None:
    """Re-wiring ISA links must not strand keys or order-by lists.

    Keys and order-by lists may name attributes the type only sees
    through supertypes the re-wiring drops (directly or in descendants).
    Propagation cascades the dependent deletions first
    (:func:`repro.knowledge.propagation._cascades_for_lost_supertype`);
    applied bare, the operation must refuse instead of leaving the
    schema unresolvable -- the language stays closed either way.
    """
    current = tuple(schema.get(typename).supertypes)
    resulting = tuple(resulting_supertypes)
    affected = {typename} | schema.descendants(typename)
    ends_by_target: dict[str, list] | None = None
    for name in sorted(affected):
        interface = schema.get(name)
        before = attributes_visible_with_supertypes(
            schema, name, typename, current
        )
        after = attributes_visible_with_supertypes(
            schema, name, typename, resulting
        )
        lost = before - after
        if not lost:
            continue
        for key in interface.keys:
            stranded = sorted(set(key) & lost)
            if stranded:
                raise ConstraintViolation(
                    f"removing supertype(s) of {typename!r} would strand "
                    f"key {tuple(key)!r} of {name!r} (attribute(s) "
                    f"{', '.join(stranded)} become unresolvable); delete "
                    "the key list first"
                )
        if ends_by_target is None:
            ends_by_target = {}
            for owner, end in schema.index.ends_targeting(affected):
                ends_by_target.setdefault(end.target_type, []).append(
                    (owner, end)
                )
        for owner, end in ends_by_target.get(name, ()):
            stranded = sorted(set(end.order_by) & lost)
            if stranded:
                raise ConstraintViolation(
                    f"removing supertype(s) of {typename!r} would strand "
                    f"order-by {end.order_by!r} of {owner}.{end.name} "
                    f"(attribute(s) {', '.join(stranded)} become "
                    "unresolvable); modify the order-by list first"
                )


def _check_no_isa_cycle(schema: Schema, subtype: str, supertype: str) -> None:
    """Adding subtype -> supertype must not close a generalization cycle."""
    if subtype == supertype:
        raise ConstraintViolation(
            f"{subtype!r} cannot be its own supertype"
        )
    if supertype in schema and subtype in schema.ancestors(supertype):
        raise ConstraintViolation(
            f"making {supertype!r} a supertype of {subtype!r} would create "
            "a generalization cycle"
        )


@dataclass(frozen=True, eq=False)
class AddSupertype(SchemaOperation):
    """``add_supertype(typename, supertype)`` -- add one ISA link."""

    op_name = "add_supertype"
    touched_aspects = frozenset({Aspect.ISA})
    candidate = "Type Properties"
    sub_candidate = "Supertype (ISA)"
    action = "add"
    admissible_in = _GH

    typename: str
    supertype: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        schema.get(self.supertype)
        if self.supertype in interface.supertypes:
            raise ConstraintViolation(
                f"{self.typename!r} already has supertype {self.supertype!r}"
            )
        _check_no_isa_cycle(schema, self.typename, self.supertype)

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).add_supertype(self.supertype)

        def undo() -> None:
            schema.edit(self.typename).remove_supertype(self.supertype)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.supertype)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename, self.supertype)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ISA)})

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # The cycle check walks the whole generalization graph.
        return frozenset(
            {(self.typename, Aspect.ISA), (WILDCARD, Aspect.ISA)}
        )


@dataclass(frozen=True, eq=False)
class DeleteSupertype(SchemaOperation):
    """``delete_supertype(typename, supertype)`` -- remove one ISA link."""

    op_name = "delete_supertype"
    touched_aspects = frozenset({Aspect.ISA})
    candidate = "Type Properties"
    sub_candidate = "Supertype (ISA)"
    action = "delete"
    admissible_in = _GH

    typename: str
    supertype: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if self.supertype not in interface.supertypes:
            raise ConstraintViolation(
                f"{self.typename!r} has no supertype {self.supertype!r}"
            )
        _check_nothing_stranded(
            schema,
            self.typename,
            [s for s in interface.supertypes if s != self.supertype],
        )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        position = interface.supertypes.index(self.supertype)
        interface.remove_supertype(self.supertype)

        def undo() -> None:
            schema.edit(self.typename).add_supertype(self.supertype, position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.supertype)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename, self.supertype)

    def required_names(self) -> tuple[str, ...]:
        # The supertype link may dangle; only the subtype must exist.
        return (self.typename,)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ISA)}) | _STRAND_CASCADES

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ISA)}) | _STRAND_READS


@dataclass(frozen=True, eq=False)
class ModifySupertype(SchemaOperation):
    """``modify_supertype(typename, old_list, new_list)`` -- re-wire ISA.

    Replaces the full supertype list in one step (the grammar's comment:
    "re-wiring isa").  ``old_supertypes`` must match the current list so
    the designer's view of the schema is up to date.
    """

    op_name = "modify_supertype"
    touched_aspects = frozenset({Aspect.ISA})
    candidate = "Type Properties"
    sub_candidate = "Supertype (ISA)"
    action = "modify"
    admissible_in = _GH

    typename: str
    old_supertypes: tuple[str, ...]
    new_supertypes: tuple[str, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if tuple(interface.supertypes) != self.old_supertypes:
            raise ConstraintViolation(
                f"supertypes of {self.typename!r} are "
                f"{tuple(interface.supertypes)!r}, not {self.old_supertypes!r}"
            )
        if len(set(self.new_supertypes)) != len(self.new_supertypes):
            raise ConstraintViolation("new supertype list has duplicates")
        for supertype in self.new_supertypes:
            schema.get(supertype)
            if supertype in interface.supertypes:
                continue  # keeping an existing link cannot add a cycle
            _check_no_isa_cycle(schema, self.typename, supertype)
        if any(
            supertype not in self.new_supertypes
            for supertype in self.old_supertypes
        ):
            _check_nothing_stranded(
                schema, self.typename, list(self.new_supertypes)
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        previous = list(interface.supertypes)
        interface.set_supertypes(list(self.new_supertypes))

        def undo() -> None:
            schema.edit(self.typename).set_supertypes(previous)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (
            self.typename,
            render_list(self.old_supertypes),
            render_list(self.new_supertypes),
        )

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename, *self.old_supertypes, *self.new_supertypes)

    def required_names(self) -> tuple[str, ...]:
        # validate resolves the type and each *new* supertype; the old
        # list only has to match the (possibly dangling) current links.
        return (self.typename, *self.new_supertypes)

    def written_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ISA)}) | _STRAND_CASCADES

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        return frozenset({(self.typename, Aspect.ISA)}) | _STRAND_READS


@dataclass(frozen=True, eq=False)
class AddExtentName(SchemaOperation):
    """``add_extent_name(typename, extent_name)``."""

    op_name = "add_extent_name"
    touched_aspects = frozenset({Aspect.EXTENT})
    instance_neutral = True
    candidate = "Type Properties"
    sub_candidate = "Extent name"
    action = "add"
    admissible_in = _WW

    typename: str
    extent_name: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if interface.extent is not None:
            raise ConstraintViolation(
                f"{self.typename!r} already has extent {interface.extent!r}; "
                "use modify_extent_name"
            )
        owners = [
            other.name
            for other in schema
            if other.extent == self.extent_name
        ]
        if owners:
            raise ConstraintViolation(
                f"extent name {self.extent_name!r} is already used by "
                f"{owners[0]!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).set_extent(self.extent_name)

        def undo() -> None:
            schema.edit(self.typename).set_extent(None)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.extent_name)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # Name equivalence: the clash check scans every extent.
        return frozenset({(WILDCARD, Aspect.EXTENT)})


@dataclass(frozen=True, eq=False)
class DeleteExtentName(SchemaOperation):
    """``delete_extent_name(typename, extent_name)``."""

    op_name = "delete_extent_name"
    touched_aspects = frozenset({Aspect.EXTENT})
    instance_neutral = True
    candidate = "Type Properties"
    sub_candidate = "Extent name"
    action = "delete"
    admissible_in = _WW

    typename: str
    extent_name: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if interface.extent != self.extent_name:
            raise ConstraintViolation(
                f"{self.typename!r} has extent {interface.extent!r}, "
                f"not {self.extent_name!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).set_extent(None)

        def undo() -> None:
            schema.edit(self.typename).set_extent(self.extent_name)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.extent_name)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)


@dataclass(frozen=True, eq=False)
class ModifyExtentName(SchemaOperation):
    """``modify_extent_name(typename, old_extent_name, new_extent_name)``."""

    op_name = "modify_extent_name"
    touched_aspects = frozenset({Aspect.EXTENT})
    instance_neutral = True
    candidate = "Type Properties"
    sub_candidate = "Extent name"
    action = "modify"
    admissible_in = _WW

    typename: str
    old_extent_name: str
    new_extent_name: str

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if interface.extent != self.old_extent_name:
            raise ConstraintViolation(
                f"{self.typename!r} has extent {interface.extent!r}, "
                f"not {self.old_extent_name!r}"
            )
        owners = [
            other.name
            for other in schema
            if other.extent == self.new_extent_name
            and other.name != self.typename
        ]
        if owners:
            raise ConstraintViolation(
                f"extent name {self.new_extent_name!r} is already used by "
                f"{owners[0]!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).set_extent(self.new_extent_name)

        def undo() -> None:
            schema.edit(self.typename).set_extent(self.old_extent_name)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, self.old_extent_name, self.new_extent_name)

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # Name equivalence: the clash check scans every extent.
        return frozenset({(WILDCARD, Aspect.EXTENT)})


@dataclass(frozen=True, eq=False)
class AddKeyList(SchemaOperation):
    """``add_key_list(typename, (attr, ...))`` -- declare one key."""

    op_name = "add_key_list"
    touched_aspects = frozenset({Aspect.KEYS})
    candidate = "Type Properties"
    sub_candidate = "Key list"
    action = "add"
    admissible_in = _WW

    typename: str
    key: tuple[str, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if not self.key:
            raise ConstraintViolation("a key must name at least one attribute")
        if tuple(self.key) in interface.keys:
            raise ConstraintViolation(
                f"{self.typename!r} already declares key {self.key!r}"
            )
        available = set(interface.attributes)
        available.update(schema.inherited_attributes(self.typename))
        for attr_name in self.key:
            if attr_name not in available:
                raise ConstraintViolation(
                    f"key names unknown attribute {attr_name!r} of "
                    f"{self.typename!r}"
                )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        schema.edit(self.typename).add_key(self.key)

        def undo() -> None:
            schema.edit(self.typename).remove_key(self.key)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, render_list(self.key))

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # Key attributes resolve through the inheritance closure.
        return frozenset({
            (self.typename, Aspect.KEYS),
            (WILDCARD, Aspect.ATTRS),
            (WILDCARD, Aspect.ISA),
        })


@dataclass(frozen=True, eq=False)
class DeleteKeyList(SchemaOperation):
    """``delete_key_list(typename, (attr, ...))`` -- drop one key."""

    op_name = "delete_key_list"
    touched_aspects = frozenset({Aspect.KEYS})
    candidate = "Type Properties"
    sub_candidate = "Key list"
    action = "delete"
    admissible_in = _WW

    typename: str
    key: tuple[str, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        interface = schema.get(self.typename)
        if tuple(self.key) not in interface.keys:
            raise ConstraintViolation(
                f"{self.typename!r} does not declare key {self.key!r}"
            )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        position = interface.keys.index(tuple(self.key))
        interface.remove_key(self.key)

        def undo() -> None:
            schema.edit(self.typename).insert_key(tuple(self.key), position)

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, render_list(self.key))

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)


@dataclass(frozen=True, eq=False)
class ModifyKeyList(SchemaOperation):
    """``modify_key_list(typename, (old...), (new...))`` -- replace a key."""

    op_name = "modify_key_list"
    touched_aspects = frozenset({Aspect.KEYS})
    candidate = "Type Properties"
    sub_candidate = "Key list"
    action = "modify"
    admissible_in = _WW

    typename: str
    old_key: tuple[str, ...]
    new_key: tuple[str, ...]

    def validate(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> None:
        DeleteKeyList(self.typename, self.old_key).validate(schema, context)
        if tuple(self.new_key) != tuple(self.old_key):
            interface = schema.get(self.typename)
            if tuple(self.new_key) in interface.keys:
                raise ConstraintViolation(
                    f"{self.typename!r} already declares key {self.new_key!r}"
                )
        available = set(schema.get(self.typename).attributes)
        available.update(schema.inherited_attributes(self.typename))
        for attr_name in self.new_key:
            if attr_name not in available:
                raise ConstraintViolation(
                    f"new key names unknown attribute {attr_name!r} of "
                    f"{self.typename!r}"
                )

    def apply(self, schema: Schema, context: OperationContext = FREE_CONTEXT) -> Undo:
        self.validate(schema, context)
        interface = schema.edit(self.typename)
        position = interface.keys.index(tuple(self.old_key))
        interface.replace_key_at(position, tuple(self.new_key))

        def undo() -> None:
            schema.edit(self.typename).replace_key_at(
                position, tuple(self.old_key)
            )

        return undo

    def arguments(self) -> tuple[str, ...]:
        return (self.typename, render_list(self.old_key), render_list(self.new_key))

    def affected_types(self) -> tuple[str, ...]:
        return (self.typename,)

    def read_footprint(self) -> frozenset[tuple[str, Aspect]]:
        # The new key's attributes resolve through the inheritance closure.
        return frozenset({
            (self.typename, Aspect.KEYS),
            (WILDCARD, Aspect.ATTRS),
            (WILDCARD, Aspect.ISA),
        })
