"""Tests for the standalone ODL checker and the good-faith-use guard."""

from repro.odl.check import check_text, main


class TestCheckText:
    def test_clean_schema(self):
        ok, lines = check_text("interface A { attribute long x; };", "demo")
        assert ok
        assert any("ok" in line for line in lines)

    def test_parse_error(self):
        ok, lines = check_text("interface {", "demo")
        assert not ok
        assert "parse error" in lines[0]

    def test_validation_errors_with_suggestions(self):
        ok, lines = check_text("interface A : Ghost {};", "demo")
        assert not ok
        text = "\n".join(lines)
        assert "dangling-type" in text
        assert "suggested repairs:" in text
        assert "add_type_definition(Ghost)" in text

    def test_warnings_do_not_fail(self):
        ok, lines = check_text(
            "interface A {}; interface B {}; interface C : A, B {};", "demo"
        )
        assert ok
        assert "multi-root-hierarchy" in "\n".join(lines)


class TestMain:
    def test_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_ok_file(self, tmp_path, capsys):
        path = tmp_path / "good.odl"
        path.write_text("interface A { attribute long x; };")
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.odl"
        path.write_text("interface A : Ghost {};")
        assert main([str(path)]) == 1
        assert "dangling-type" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/nowhere.odl"]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_multiple_files(self, tmp_path):
        good = tmp_path / "good.odl"
        good.write_text("interface A {};")
        bad = tmp_path / "bad.odl"
        bad.write_text("interface A : Ghost {};")
        assert main([str(good), str(bad)]) == 1


class TestGoodFaithUse:
    def test_wholesale_replacement_cautioned(self, small):
        from repro.designer.session import DesignSession
        from repro.repository.repository import SchemaRepository

        session = DesignSession(SchemaRepository(small, custom_name="new"))
        for text in (
            "delete_type_definition(Employee)",
            "delete_type_definition(Department)",
            "delete_type_definition(Person)",
            "add_type_definition(Completely_Different)",
            "add_attribute(Completely_Different, long, x)",
        ):
            assert session.modify(text), session.feedback.render()
        deliverables = session.finish()
        assert any(
            message.code == "good-faith-use"
            for message in deliverables.consistency
        )

    def test_moderate_customization_not_cautioned(self, small):
        from repro.designer.session import DesignSession
        from repro.repository.repository import SchemaRepository

        session = DesignSession(SchemaRepository(small, custom_name="mild"))
        session.modify("delete_attribute(Employee, salary)")
        deliverables = session.finish()
        assert not any(
            message.code == "good-faith-use"
            for message in deliverables.consistency
        )
