"""Tests for the catalog schemas and the paper's figure expectations."""

import pytest

from repro.catalog import (
    CORRESPONDENCE_SIMPLIFICATION_SCRIPT,
    FIGURE7_ELABORATION_SCRIPT,
    FIGURE8_AFTER,
    FIGURE8_BEFORE,
    FIGURE8_OPERATION,
    SCHEMA_BUILDERS,
    aatdb_repository,
    aatdb_schema,
    acedb_schema,
    common_classes,
    company_schema,
    load,
    sacchdb_repository,
    sacchdb_schema,
    university_schema,
)
from repro.concepts.decompose import decompose
from repro.model.errors import SchemaError
from repro.odl.printer import print_interface
from repro.ops.language import parse_operation, parse_script
from repro.repository.repository import SchemaRepository


class TestLoading:
    @pytest.mark.parametrize("name", sorted(SCHEMA_BUILDERS))
    def test_every_schema_is_valid(self, name):
        load(name).validate()

    def test_unknown_name(self):
        with pytest.raises(SchemaError):
            load("nonexistent")


class TestUniversity:
    def test_figure3_wagon_wheel_spokes(self, university):
        wheel = decompose(university).by_identifier("ww:Course_Offering")
        targets = {spoke.target_type for spoke in wheel.spokes}
        assert {"Course", "Syllabus", "Book", "Time_Slot", "Length"} <= targets

    def test_figure4_student_hierarchy(self, university):
        hierarchy = decompose(university).by_identifier("gh:Person")
        assert {"Student", "Graduate", "Non_Thesis_Masters"} <= hierarchy.members

    def test_figure7_elaboration_script_applies(self):
        repository = SchemaRepository(university_schema(), custom_name="fig7")
        for operation in parse_script(FIGURE7_ELABORATION_SCRIPT):
            repository.apply(operation)
        custom = repository.generate_custom_schema()
        end = custom.get("Schedule").get_relationship("consists_of")
        assert end.kind.value == "part_of"
        assert end.target_type == "Course_Offering"

    def test_correspondence_simplification_script_applies(self):
        repository = SchemaRepository(
            university_schema(), custom_name="correspondence"
        )
        for operation in parse_script(CORRESPONDENCE_SIMPLIFICATION_SCRIPT):
            repository.apply(operation)
        custom = repository.generate_custom_schema()
        assert "Time_Slot" not in custom
        assert "room" not in custom.get("Course_Offering").attributes
        assert "offered_during" not in custom.get("Course_Offering").relationships


class TestFigure8:
    def test_before_listings_match_paper(self, company):
        department = print_interface(company.get("Department"))
        employee = print_interface(company.get("Employee"))
        assert FIGURE8_BEFORE["Department"] + ";" in department
        assert FIGURE8_BEFORE["Employee"] + ";" in employee

    def test_after_listings_match_paper(self):
        repository = SchemaRepository(company_schema(), custom_name="fig8")
        repository.apply(parse_operation(FIGURE8_OPERATION))
        custom = repository.generate_custom_schema()
        department = print_interface(custom.get("Department"))
        person = print_interface(custom.get("Person"))
        assert FIGURE8_AFTER["Department"] + ";" in department
        assert FIGURE8_AFTER["Person"] + ";" in person


class TestGenomeFamily:
    def test_acedb_has_paper_classes(self, acedb):
        assert {"Locus", "Clone", "Map", "Sequence", "Strain", "Allele"} <= set(
            acedb.type_names()
        )

    def test_aatdb_replaces_strain_with_phenotype(self):
        schema = aatdb_schema()
        assert "Strain" not in schema
        assert "Phenotype" in schema
        assert "Ecotype" in schema
        schema.validate()

    def test_sacchdb_has_chromosomes_not_contigs(self):
        schema = sacchdb_schema()
        assert "Contig" not in schema
        assert "Chromosome" in schema
        schema.validate()

    def test_common_classes_shared_by_all_three(self):
        shared = common_classes()
        assert {"Locus", "Allele", "Clone", "Map", "Sequence", "Paper",
                "Author", "Lab"} <= shared
        assert "Strain" not in shared  # AAtDB uses Phenotype instead
        assert "Cell" not in shared

    def test_derivations_record_mappings(self):
        for repository in (aatdb_repository(), sacchdb_repository()):
            assert repository.mapping is not None
            assert repository.mapping.reuse_ratio() > 0.7

    def test_derivations_use_only_admissible_operations(self):
        """Section 4's claim: the ACEDB-family changes are expressible in
        the operation language (every script line parses and applies)."""
        repository = aatdb_repository()
        assert len(repository.workspace.log) >= 10

    def test_phenotype_takes_over_strain_links(self):
        schema = aatdb_schema()
        assert "found_in" in schema.get("Allele").relationships
        assert (
            schema.get("Allele").get_relationship("found_in").target_type
            == "Phenotype"
        )

    def test_semantic_equivalence_of_strain_and_phenotype(self):
        """The paper: strain (ACEDB) and phenotype (AAtDB) are
        semantically equivalent terms -- structurally near-identical."""
        from repro.analysis.similarity import type_affinity

        strain = acedb_schema().get("Strain")
        phenotype = aatdb_schema().get("Phenotype")
        renamed = phenotype.copy()
        renamed.name = "Strain"
        assert type_affinity(strain, renamed) > 0.4
