"""Tests for relationship path finding."""

import pytest

from repro.analysis.paths import find_path, render_path
from repro.model.errors import UnknownTypeError


class TestFindPath:
    def test_direct_relationship(self, small):
        path = find_path(small, "Employee", "Department")
        assert len(path) == 1
        assert path[0].label == "works_in"

    def test_path_is_symmetricish(self, small):
        forward = find_path(small, "Employee", "Department")
        backward = find_path(small, "Department", "Employee")
        assert len(forward) == len(backward) == 1

    def test_same_type(self, small):
        assert find_path(small, "Person", "Person") == []

    def test_isa_traversal(self, small):
        path = find_path(small, "Person", "Department")
        # Person -> Employee (inherits) -> Department (works_in)
        assert [step.kind for step in path] == ["inherits", "relationship"]

    def test_isa_traversal_can_be_disabled(self, small):
        assert find_path(small, "Person", "Department", follow_isa=False) is None

    def test_disconnected_types(self, small):
        from repro.ops.type_ops import AddTypeDefinition

        AddTypeDefinition("Island").apply(small)
        assert find_path(small, "Island", "Person") is None

    def test_unknown_types_rejected(self, small):
        with pytest.raises(UnknownTypeError):
            find_path(small, "Ghost", "Person")

    def test_multi_hop_in_university(self, university):
        path = find_path(university, "Book", "Faculty")
        # Book -> Course_Offering -> Faculty is the shortest route.
        assert [step.target for step in path] == [
            "Course_Offering", "Faculty"
        ]

    def test_part_of_and_instance_of_hops(self, university):
        path = find_path(university, "Syllabus", "Course", follow_isa=False)
        kinds = [step.kind for step in path]
        assert kinds == ["relationship", "instance_of"]

    def test_shortest_path_wins(self, university):
        # Student takes Course_Offering directly; the Person/Faculty
        # detour is longer and must not be chosen.
        path = find_path(university, "Student", "Course_Offering")
        assert len(path) == 1
        assert path[0].label == "takes"


class TestRenderPath:
    def test_render_connected(self, small):
        path = find_path(small, "Employee", "Department")
        text = render_path(path, "Employee", "Department")
        assert "Employee reaches Department in 1 step(s):" in text
        assert "works_in" in text

    def test_render_identity(self, small):
        assert render_path([], "A", "A") == "A is A"

    def test_render_disconnected(self):
        assert "not connected" in render_path(None, "A", "B")

    def test_cli_relate_command(self, small):
        from repro.designer.cli import execute
        from repro.designer.session import DesignSession
        from repro.repository.repository import SchemaRepository

        session = DesignSession(SchemaRepository(small))
        output = execute(session, "relate Employee Department")
        assert "works_in" in output
