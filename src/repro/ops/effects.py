"""Effect signatures: the static footprint of one modification operation.

The mutation spine (PR 4) reifies what an operation *did* -- every
mutator call becomes a :class:`~repro.model.mutation.MutationRecord`.
An :class:`EffectSignature` reifies what an operation *will do*, before
it runs: which ``(interface, Aspect)`` cells it may write, which it
reads while validating, and how it changes the schema's name bindings
(interfaces it creates, deletes, or requires to exist).

Signatures are the substrate of :mod:`repro.analysis.plan` -- the
def-use/conflict graph, the pre-flight diagnostics, and the
commutativity batching are all computed from them.  They are *derived
from* the existing ``validation_scope()`` machinery (the default write
footprint is ``affected_types() x touched_aspects``) and *cross-checked
against* it: :func:`signature_scope_violations` asserts that no
declared write escapes the scope the incremental validator is told
about, and ``tools/check_effects.py`` verifies at lint time that the
declared aspects cover every mutator kind ``apply``/``undo`` can emit.

Precision contract (what the analyzer is allowed to assume):

* ``writes`` over-approximates the cells the operation (and, for the
  cascading delete/move family, its propagation cascades) may mutate;
* ``reads`` over-approximates the cells ``validate`` inspects;
* ``requires`` *under*-approximates: every listed name is one whose
  absence makes the operation fail dynamically -- this direction is
  what makes the analyzer's "unknown name" diagnostics free of false
  positives;
* ``creates`` / ``deletes`` are exact.

The pseudo-interface name :data:`WILDCARD` (``"*"``) stands for "any
interface" -- e.g. ``add_extent_name`` reads ``("*", EXTENT)`` because
the paper's name-equivalence rule makes it scan every extent in the
schema for a clash.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.model.mutation import Aspect

#: Pseudo interface name matching every interface in footprint entries.
WILDCARD = "*"

#: One footprint: a set of (interface name | WILDCARD, Aspect) cells.
Footprint = frozenset[tuple[str, Aspect]]

EMPTY_FOOTPRINT: Footprint = frozenset()


def _cells_overlap(
    first: tuple[str, Aspect], second: tuple[str, Aspect]
) -> bool:
    """Wildcard- and membership-aware overlap of two footprint cells.

    A MEMBERSHIP cell (the interface appearing in / vanishing from the
    schema) overlaps every aspect of the same interface: no per-aspect
    read survives the interface being deleted out from under it.
    """
    name_a, aspect_a = first
    name_b, aspect_b = second
    if name_a != name_b and WILDCARD not in (name_a, name_b):
        return False
    if aspect_a is Aspect.MEMBERSHIP or aspect_b is Aspect.MEMBERSHIP:
        return True
    return aspect_a is aspect_b


def footprints_overlap(
    first: Footprint, second: Footprint
) -> tuple[str, Aspect] | None:
    """An overlapping cell between two footprints, or ``None``."""
    for cell_a in first:
        for cell_b in second:
            if _cells_overlap(cell_a, cell_b):
                return cell_a if cell_a[0] != WILDCARD else cell_b
    return None


def _index_footprint(footprint: Footprint) -> dict[str, frozenset[Aspect]]:
    """name -> aspects view of a footprint, for the fast overlap check."""
    by_name: dict[str, set[Aspect]] = {}
    for name, aspect in footprint:
        by_name.setdefault(name, set()).add(aspect)
    return {name: frozenset(aspects) for name, aspects in by_name.items()}


def _aspects_compat(
    first: frozenset[Aspect], second: frozenset[Aspect]
) -> bool:
    return bool(first & second) or (
        bool(first) and bool(second)
        and (Aspect.MEMBERSHIP in first or Aspect.MEMBERSHIP in second)
    )


def _indexed_overlap(
    first: dict[str, frozenset[Aspect]],
    second: dict[str, frozenset[Aspect]],
) -> tuple[str, Aspect] | None:
    """Same verdict as :func:`footprints_overlap`, on indexed views.

    The conflict graph compares every plan-op pair, so this runs
    O(plan^2) times; dict-keyed aspect sets beat the cell-product scan
    there, and the witness cell is only materialized on a hit.
    """
    if not first or not second:
        return None
    wild = first.get(WILDCARD)
    if wild is not None:
        for name, aspects in second.items():
            if _aspects_compat(wild, aspects):
                return _witness(name, aspects, wild)
    wild = second.get(WILDCARD)
    if wild is not None:
        for name, aspects in first.items():
            if _aspects_compat(aspects, wild):
                return _witness(name, aspects, wild)
    for name in first.keys() & second.keys():
        if name == WILDCARD:
            continue
        if _aspects_compat(first[name], second[name]):
            return _witness(name, first[name], second[name])
    return None


def _witness(
    name: str, aspects: frozenset[Aspect], other: frozenset[Aspect]
) -> tuple[str, Aspect]:
    common = aspects & other
    pool = common or (
        (aspects - {Aspect.MEMBERSHIP}) or (other - {Aspect.MEMBERSHIP})
        or aspects
    )
    return name, sorted(pool, key=lambda aspect: aspect.value)[0]


#: The empty instance-impact facet (for instance-neutral operations).
NO_INSTANCES: frozenset[str] = frozenset()


@dataclass(frozen=True)
class EffectSignature:
    """Static read/write footprint and name-binding effects of one op."""

    reads: Footprint
    writes: Footprint
    creates: frozenset[str]
    deletes: frozenset[str]
    requires: frozenset[str]
    #: The instance-impact facet: interface names whose *admitted
    #: populations* the operation may change (:data:`WILDCARD` for "any").
    #: Over-approximates, like ``writes``; instance-neutral operations
    #: (operation signatures, extent renames, pure reorderings) declare
    #: the empty set, which is what lets the example-preservation oracle
    #: (:mod:`repro.verify`) demand that witness populations of
    #: untouched interfaces survive a plan unchanged.
    instances: frozenset[str] = NO_INSTANCES

    @cached_property
    def _read_index(self) -> dict[str, frozenset[Aspect]]:
        return _index_footprint(self.reads)

    @cached_property
    def _write_index(self) -> dict[str, frozenset[Aspect]]:
        return _index_footprint(self.writes)

    @cached_property
    def _mentioned(self) -> frozenset[str]:
        names = set(self.creates) | set(self.deletes) | set(self.requires)
        for name, _ in self.reads | self.writes:
            if name != WILDCARD:
                names.add(name)
        return frozenset(names)

    def mentioned_names(self) -> frozenset[str]:
        """Every concrete interface name in the signature (no wildcard)."""
        return self._mentioned

    def binding_names(self) -> frozenset[str]:
        """Names whose existence this op changes (creates or deletes)."""
        return self.creates | self.deletes

    def conflicts_with(self, other: "EffectSignature") -> str | None:
        """Why this op does not commute with *other* (``None`` if it does).

        Two operations commute for the analyzer's purposes when their
        footprints are disjoint (no write/write or read/write overlap)
        and neither changes a name binding the other mentions.  The
        relation is symmetric; the returned string is a short human
        label for the conflict edge.
        """
        cell = _indexed_overlap(self._write_index, other._write_index)
        if cell is not None:
            return f"write-write on ({cell[0]}, {cell[1]})"
        cell = _indexed_overlap(self._write_index, other._read_index)
        if cell is not None:
            return f"read-after-write on ({cell[0]}, {cell[1]})"
        cell = _indexed_overlap(self._read_index, other._write_index)
        if cell is not None:
            return f"write-after-read on ({cell[0]}, {cell[1]})"
        binding = (
            self.binding_names() & other._mentioned
            or other.binding_names() & self._mentioned
        )
        if binding:
            return f"name binding on {sorted(binding)[0]!r}"
        return None


def signature_scope_violations(operation) -> list[str]:
    """Cross-check a signature against ``validation_scope()``.

    The incremental validator trusts ``validation_scope()`` to name
    every type an operation may dirty; a signature claiming writes
    outside that scope would mean one of the two declarations is wrong.
    Returns human-readable violation strings (empty when consistent).
    MEMBERSHIP writes are exempt from the aspect check -- the scope
    tuple describes per-interface dirt, while membership is resolved
    schema-wide by ``note_validation_scope``.
    """
    names, aspects = operation.validation_scope()
    signature = operation.effect_signature()
    violations: list[str] = []
    allowed_names = set(names) | {WILDCARD}
    for name, aspect in signature.writes:
        if name == WILDCARD:
            # Wildcard writes over-approximate propagation cascades;
            # each cascade op carries its own (checked) scope at apply
            # time, so they are outside the scope tuple by design.
            continue
        if name not in allowed_names:
            violations.append(
                f"{type(operation).__name__} writes ({name}, {aspect}) "
                f"but validation_scope only names {sorted(names)}"
            )
        if aspect is not Aspect.MEMBERSHIP and aspect not in aspects:
            violations.append(
                f"{type(operation).__name__} writes aspect {aspect} "
                f"outside its declared touched_aspects {sorted(aspects)}"
            )
    for name in signature.creates | signature.deletes:
        if name not in allowed_names:
            violations.append(
                f"{type(operation).__name__} binds name {name!r} "
                f"but validation_scope only names {sorted(names)}"
            )
    return violations
