"""Unit tests for the design session and the scriptable CLI."""

import pytest

from repro.catalog import UNIVERSITY_ODL
from repro.designer.cli import execute, run_commands
from repro.designer.session import DesignSession
from repro.knowledge.feedback import FeedbackLevel
from repro.model.errors import ReproError
from repro.repository.repository import SchemaRepository


@pytest.fixture
def session(small):
    return DesignSession(SchemaRepository(small, custom_name="small_custom"))


class TestSession:
    def test_list_concepts(self, session):
        listing = session.list_concepts()
        assert "ww:Person" in listing
        assert "gh:Person" in listing

    def test_select_and_show(self, session):
        rendered = session.select("ww:Department")
        assert "wagon wheel: Department" in rendered
        assert session.show() == rendered

    def test_show_without_selection(self, session):
        with pytest.raises(ReproError):
            session.show()

    def test_show_operations_reflects_table1(self, session):
        session.select("gh:Person")
        operations = session.show_operations().splitlines()
        assert "modify_attribute" in operations
        assert "add_attribute" not in operations

    def test_modify_success_records_feedback(self, session):
        assert session.modify("add_attribute(Person, date, dob)")
        assert any(
            m.code == "operation-applied" for m in session.feedback
        )

    def test_modify_rejection_is_feedback_not_exception(self, session):
        assert not session.modify("add_attribute(Ghost, date, dob)")
        errors = session.feedback.at_level(FeedbackLevel.ERROR)
        assert len(errors) == 1
        assert "Ghost" in errors[0].message

    def test_modify_honours_concept_restriction(self, session):
        session.select("ww:Person")
        assert not session.modify("add_supertype(Department, Person)")
        assert session.feedback.has_errors()

    def test_preview_does_not_apply(self, session):
        report = session.preview("delete_type_definition(Department)")
        assert "cascades" in report
        assert "Department" in session.repository.workspace.schema

    def test_undo(self, session):
        session.modify("add_attribute(Person, date, dob)")
        assert "add_attribute" in session.undo()
        assert session.undo() == "nothing to undo"

    def test_check(self, session):
        assert session.check() == "consistency: clean"
        session.modify("add_type_definition(Orphan)")
        assert "empty-interface" in session.check()

    def test_finish_produces_deliverables(self, session):
        session.modify("delete_attribute(Employee, salary)")
        deliverables = session.finish("tailored")
        assert deliverables.custom_schema.name == "tailored"
        assert "Employee.salary" in deliverables.mapping.render()
        assert "delete_attribute(Employee, salary)" in deliverables.script
        assert "custom schema" in deliverables.render()

    def test_show_odl(self, session):
        assert "interface Person" in session.show_odl()
        assert session.show_odl("Person").startswith("interface Person")

    def test_from_odl(self):
        session = DesignSession.from_odl(UNIVERSITY_ODL, name="university")
        assert "ww:Course_Offering" in session.list_concepts()


class TestCli:
    def test_concepts_command(self, session):
        assert "ww:Person" in execute(session, "concepts")

    def test_select_show_ops(self, session):
        execute(session, "select ww:Person")
        assert "wagon wheel: Person" in execute(session, "show")
        assert "add_attribute" in execute(session, "ops")

    def test_apply_ok(self, session):
        output = execute(session, "apply add_attribute(Person, date, dob)")
        assert output.startswith("ok:")

    def test_apply_rejected(self, session):
        output = execute(session, "apply add_attribute(Ghost, date, dob)")
        assert output.startswith("REJECTED:")

    def test_impact_command(self, session):
        output = execute(session, "impact delete_type_definition(Department)")
        assert "delete_relationship" in output

    def test_undo_script_finish(self, session):
        execute(session, "apply add_attribute(Person, date, dob)")
        assert "add_attribute(Person, date, dob)" in execute(session, "script")
        execute(session, "undo")
        assert execute(session, "script") == "(no changes)"
        assert "mapping" in execute(session, "finish tailored")

    def test_unknown_command(self, session):
        assert "unknown command" in execute(session, "frobnicate")

    def test_errors_are_messages_not_exceptions(self, session):
        assert execute(session, "select ww:Ghost").startswith("error:")

    def test_help_and_comments(self, session):
        assert "concepts" in execute(session, "help")
        assert execute(session, "# a comment") == ""
        assert execute(session, "") == ""

    def test_quit_stops_run_commands(self, session):
        outputs = run_commands(session, ["concepts", "quit", "concepts"])
        assert len(outputs) == 1

    def test_scripted_session(self, session):
        outputs = run_commands(
            session,
            [
                "select ww:Employee",
                "apply delete_attribute(Employee, salary)",
                "check",
                "finish tailored",
            ],
        )
        assert outputs[1].startswith("ok:")
        assert "customization script" in outputs[3]
