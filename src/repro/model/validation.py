"""Structural validation of schemas.

Each rule inspects one aspect of the extended object model and yields
:class:`Issue` records.  The knowledge component of the interactive
designer (:mod:`repro.knowledge`) layers designer-facing consistency
checks on top of these structural rules; here we only enforce what must
hold for a schema to *be* a schema of the extended ODMG model:

* every referenced type name is defined (``dangling-type``);
* relationship ends pair up with their declared inverses
  (``inverse-missing`` / ``inverse-mismatch``);
* relationship kinds agree across the two ends (``kind-mismatch``);
* part-of and instance-of relationships honour the implicit 1:N
  cardinality (``cardinality-role``);
* the generalization, aggregation, and instance-of graphs are acyclic
  (``isa-cycle`` / ``part-of-cycle`` / ``instance-of-cycle``);
* keys name attributes that exist, locally or inherited (``key-unknown``);
* order-by lists name attributes of the target type (``order-by-unknown``).

Severity ``warning`` marks conditions the paper treats as design smells
rather than errors (e.g. a multi-rooted generalization component, which
Section 3.2 says should be fixed by adding an abstract supertype).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.model.errors import ValidationError
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema
from repro.model.types import referenced_interfaces

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Issue:
    """One validation finding.

    ``rule`` is a stable identifier (e.g. ``"dangling-type"``),
    ``location`` a dotted construct path (``Type.property``), and
    ``message`` human-readable text for designer feedback.
    """

    rule: str
    severity: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.rule} at {self.location}: {self.message}"


Rule = Callable[[Schema], Iterator[Issue]]


def check_dangling_types(schema: Schema) -> Iterator[Issue]:
    """Every interface name used anywhere must be defined in the schema."""
    for interface in schema:
        for supertype in interface.supertypes:
            if supertype not in schema:
                yield Issue(
                    "dangling-type", SEVERITY_ERROR, interface.name,
                    f"supertype {supertype!r} is not defined",
                )
        for attribute in interface.attributes.values():
            for used in sorted(referenced_interfaces(attribute.type)):
                if used not in schema:
                    yield Issue(
                        "dangling-type", SEVERITY_ERROR,
                        f"{interface.name}.{attribute.name}",
                        f"attribute type references undefined {used!r}",
                    )
        for end in interface.relationships.values():
            if end.target_type not in schema:
                yield Issue(
                    "dangling-type", SEVERITY_ERROR,
                    f"{interface.name}.{end.name}",
                    f"relationship targets undefined {end.target_type!r}",
                )
            if end.inverse_type not in schema:
                yield Issue(
                    "dangling-type", SEVERITY_ERROR,
                    f"{interface.name}.{end.name}",
                    f"inverse names undefined {end.inverse_type!r}",
                )
        for operation in interface.operations.values():
            used_names: set[str] = set(
                referenced_interfaces(operation.return_type)
            )
            for parameter in operation.parameters:
                used_names |= referenced_interfaces(parameter.type)
            for used in sorted(used_names):
                if used not in schema:
                    yield Issue(
                        "dangling-type", SEVERITY_ERROR,
                        f"{interface.name}.{operation.name}",
                        f"operation signature references undefined {used!r}",
                    )


def check_inverses(schema: Schema) -> Iterator[Issue]:
    """Relationship ends must pair with a consistent declared inverse."""
    for owner, end in schema.relationship_pairs():
        if end.inverse_type not in schema:
            continue  # reported by check_dangling_types
        other = schema.get(end.inverse_type)
        inverse = other.relationships.get(end.inverse_name)
        location = f"{owner}.{end.name}"
        if inverse is None:
            yield Issue(
                "inverse-missing", SEVERITY_ERROR, location,
                f"declared inverse {end.inverse_type}::{end.inverse_name} "
                "does not exist",
            )
            continue
        if inverse.target_type != owner or inverse.inverse_name != end.name:
            yield Issue(
                "inverse-mismatch", SEVERITY_ERROR, location,
                f"inverse {end.inverse_type}::{end.inverse_name} does not "
                f"point back at {owner}::{end.name}",
            )
        if inverse.kind is not end.kind:
            yield Issue(
                "kind-mismatch", SEVERITY_ERROR, location,
                f"this end is {end.kind.value} but its inverse is "
                f"{inverse.kind.value}",
            )
        if end.inverse_type != end.target_type:
            yield Issue(
                "inverse-mismatch", SEVERITY_ERROR, location,
                f"target type {end.target_type!r} differs from inverse "
                f"owner {end.inverse_type!r}",
            )


def check_cardinality_roles(schema: Schema) -> Iterator[Issue]:
    """Part-of and instance-of relationships are implicitly 1:N.

    Exactly one end of each such relationship may be to-many (the whole's
    to-parts end / the generic entity's to-instances end); the opposite
    end must be to-one.
    """
    for owner, end in schema.relationship_pairs():
        if end.kind is RelationshipKind.ASSOCIATION:
            continue
        inverse = schema.find_inverse(owner, end)
        if inverse is None:
            continue  # reported by check_inverses
        if end.is_to_many == inverse.is_to_many:
            shape = "to-many" if end.is_to_many else "to-one"
            yield Issue(
                "cardinality-role", SEVERITY_ERROR, f"{owner}.{end.name}",
                f"{end.kind.value} relationship has both ends {shape}; "
                "the implicit cardinality is 1:N",
            )


def _find_cycle(
    nodes: Iterable[str], successors: Callable[[str], Iterable[str]]
) -> list[str] | None:
    """Return one directed cycle as a node list, or ``None``."""
    visiting: set[str] = set()
    done: set[str] = set()
    stack: list[str] = []

    def visit(node: str) -> list[str] | None:
        if node in done:
            return None
        if node in visiting:
            return stack[stack.index(node):] + [node]
        visiting.add(node)
        stack.append(node)
        for nxt in successors(node):
            found = visit(nxt)
            if found is not None:
                return found
        stack.pop()
        visiting.discard(node)
        done.add(node)
        return None

    for start in nodes:
        found = visit(start)
        if found is not None:
            return found
    return None


def check_isa_cycles(schema: Schema) -> Iterator[Issue]:
    """The generalization graph must be acyclic."""
    cycle = _find_cycle(
        schema.type_names(),
        lambda name: (
            supertype
            for supertype in schema.interfaces[name].supertypes
            if supertype in schema
        )
        if name in schema
        else (),
    )
    if cycle is not None:
        yield Issue(
            "isa-cycle", SEVERITY_ERROR, cycle[0],
            "generalization cycle: " + " -> ".join(cycle),
        )


def check_part_of_cycles(schema: Schema) -> Iterator[Issue]:
    """The aggregation graph must be acyclic (no whole is its own part)."""
    edges: dict[str, list[str]] = {}
    for whole, part, _ in schema.part_of_edges():
        edges.setdefault(whole, []).append(part)
    cycle = _find_cycle(schema.type_names(), lambda n: edges.get(n, ()))
    if cycle is not None:
        yield Issue(
            "part-of-cycle", SEVERITY_ERROR, cycle[0],
            "aggregation cycle: " + " -> ".join(cycle),
        )


def check_instance_of_cycles(schema: Schema) -> Iterator[Issue]:
    """The instance-of graph must be acyclic."""
    edges: dict[str, list[str]] = {}
    for generic, instance, _ in schema.instance_of_edges():
        edges.setdefault(generic, []).append(instance)
    cycle = _find_cycle(schema.type_names(), lambda n: edges.get(n, ()))
    if cycle is not None:
        yield Issue(
            "instance-of-cycle", SEVERITY_ERROR, cycle[0],
            "instance-of cycle: " + " -> ".join(cycle),
        )


def check_keys(schema: Schema) -> Iterator[Issue]:
    """Keys must name attributes available on the type (incl. inherited)."""
    for interface in schema:
        available = set(interface.attributes)
        available.update(schema.inherited_attributes(interface.name))
        for key in interface.keys:
            for attr_name in key:
                if attr_name not in available:
                    yield Issue(
                        "key-unknown", SEVERITY_ERROR,
                        f"{interface.name}.keys",
                        f"key {key!r} names unknown attribute {attr_name!r}",
                    )


def check_order_by(schema: Schema) -> Iterator[Issue]:
    """order_by lists must name attributes of the relationship target."""
    for owner, end in schema.relationship_pairs():
        if not end.order_by or end.target_type not in schema:
            continue
        target = schema.get(end.target_type)
        available = set(target.attributes)
        available.update(schema.inherited_attributes(target.name))
        for attr_name in end.order_by:
            if attr_name not in available:
                yield Issue(
                    "order-by-unknown", SEVERITY_ERROR,
                    f"{owner}.{end.name}",
                    f"order_by names unknown attribute {attr_name!r} of "
                    f"{end.target_type!r}",
                )


def check_multi_root_components(schema: Schema) -> Iterator[Issue]:
    """Warn about generalization components with more than one root.

    The paper's single-root assumption (Section 3.2) says any hierarchy
    with two or more roots should be transformed by adding an abstract
    supertype; we surface the condition as a warning rather than reject
    the schema.
    """
    neighbours: dict[str, set[str]] = {name: set() for name in schema.type_names()}
    for interface in schema:
        for supertype in interface.supertypes:
            if supertype in schema:
                neighbours[interface.name].add(supertype)
                neighbours[supertype].add(interface.name)
    seen: set[str] = set()
    for start in schema.type_names():
        if start in seen or not neighbours[start]:
            continue
        component: set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in component:
                continue
            component.add(node)
            frontier.extend(neighbours[node] - component)
        seen |= component
        roots = sorted(
            name
            for name in component
            if not [s for s in schema.get(name).supertypes if s in schema]
        )
        if len(roots) > 1:
            yield Issue(
                "multi-root-hierarchy", SEVERITY_WARNING, roots[0],
                "generalization component has several roots "
                f"({', '.join(roots)}); consider an abstract supertype",
            )


#: All structural rules, in reporting order.
STRUCTURAL_RULES: tuple[Rule, ...] = (
    check_dangling_types,
    check_inverses,
    check_cardinality_roles,
    check_isa_cycles,
    check_part_of_cycles,
    check_instance_of_cycles,
    check_keys,
    check_order_by,
    check_multi_root_components,
)


def validate_schema(schema: Schema, raise_on_error: bool = False) -> list[Issue]:
    """Run every structural rule over *schema* and return the issues.

    With ``raise_on_error`` set, raise
    :class:`~repro.model.errors.ValidationError` when any error-severity
    issue was found (warnings never raise).
    """
    issues: list[Issue] = []
    for rule in STRUCTURAL_RULES:
        issues.extend(rule(schema))
    if raise_on_error:
        errors = [issue for issue in issues if issue.severity == SEVERITY_ERROR]
        if errors:
            raise ValidationError(
                f"schema {schema.name!r} has {len(errors)} structural "
                "error(s); first: " + str(errors[0]),
                issues=errors,
            )
    return issues
