"""Unit tests for the schema container (repro.model.schema)."""

import pytest

from repro.model.errors import (
    DuplicateNameError,
    InvalidModelError,
    UnknownTypeError,
)
from repro.model.interface import InterfaceDef
from repro.model.schema import Schema, schema_from_interfaces
from repro.odl.parser import parse_schema


class TestContainer:
    def test_requires_name(self):
        with pytest.raises(InvalidModelError):
            Schema("")

    def test_add_and_get(self):
        schema = Schema("s")
        schema.add_interface(InterfaceDef("A"))
        assert schema.get("A").name == "A"
        assert "A" in schema
        assert len(schema) == 1

    def test_duplicate_rejected(self):
        schema = Schema("s")
        schema.add_interface(InterfaceDef("A"))
        with pytest.raises(DuplicateNameError):
            schema.add_interface(InterfaceDef("A"))

    def test_get_missing(self):
        with pytest.raises(UnknownTypeError):
            Schema("s").get("A")

    def test_remove(self):
        schema = Schema("s")
        schema.add_interface(InterfaceDef("A"))
        removed = schema.remove_interface("A")
        assert removed.name == "A"
        with pytest.raises(UnknownTypeError):
            schema.remove_interface("A")

    def test_iteration_preserves_order(self):
        schema = schema_from_interfaces(
            "s", [InterfaceDef("B"), InterfaceDef("A")]
        )
        assert schema.type_names() == ["B", "A"]

    def test_str(self):
        schema = Schema("demo")
        assert "demo" in str(schema)


class TestGeneralizationQueries:
    @pytest.fixture
    def hierarchy(self) -> Schema:
        return parse_schema(
            """
            interface Person {};
            interface Student : Person {};
            interface Graduate : Student {};
            interface Masters : Graduate {};
            interface Faculty : Person {};
            interface Loner {};
            """,
            name="h",
        )

    def test_subtypes(self, hierarchy):
        assert hierarchy.subtypes("Person") == ["Student", "Faculty"]

    def test_ancestors(self, hierarchy):
        assert hierarchy.ancestors("Masters") == {
            "Graduate", "Student", "Person"
        }

    def test_descendants(self, hierarchy):
        assert hierarchy.descendants("Student") == {"Graduate", "Masters"}

    def test_descendants_of_unknown_type(self, hierarchy):
        with pytest.raises(UnknownTypeError):
            hierarchy.descendants("Ghost")

    def test_isa_related_up_and_down(self, hierarchy):
        assert hierarchy.isa_related("Masters", "Person")
        assert hierarchy.isa_related("Person", "Masters")
        assert hierarchy.isa_related("Student", "Student")

    def test_isa_unrelated_siblings(self, hierarchy):
        assert not hierarchy.isa_related("Faculty", "Student")
        assert not hierarchy.isa_related("Loner", "Person")

    def test_generalization_roots(self, hierarchy):
        assert hierarchy.generalization_roots() == ["Person"]

    def test_inherited_attributes(self):
        schema = parse_schema(
            """
            interface A { attribute long x; attribute long y; };
            interface B : A { attribute long y; };
            interface C : B {};
            """,
            name="h",
        )
        inherited = schema.inherited_attributes("C")
        assert inherited["x"] == "A"
        assert inherited["y"] == "B"  # local override wins over A's y


class TestLinkQueries:
    def test_part_of_edges(self, house):
        edges = house.part_of_edges()
        assert ("House", "Structure") in {(w, p) for w, p, _ in edges}

    def test_parts_and_wholes(self, house):
        assert set(house.parts("Roof")) == {
            "Plywood_Decking", "Tar_Paper", "Shingle"
        }
        assert house.wholes("Roof") == ["Structure"]

    def test_aggregation_roots(self, house):
        assert house.aggregation_roots() == ["House"]

    def test_instance_of_edges(self, software):
        pairs = {(g, i) for g, i, _ in software.instance_of_edges()}
        assert ("Application", "Application_Version") in pairs
        assert len(pairs) == 3

    def test_instance_of_roots(self, software):
        assert software.instance_of_roots() == ["Application"]

    def test_find_inverse(self, small):
        end = small.get("Employee").get_relationship("works_in")
        inverse = small.find_inverse("Employee", end)
        assert inverse is not None
        assert inverse.name == "staff"

    def test_find_inverse_missing(self, small):
        small.get("Department").remove_relationship("staff")
        end = small.get("Employee").get_relationship("works_in")
        assert small.find_inverse("Employee", end) is None


class TestCopyAndStats:
    def test_copy_is_deep_enough(self, small):
        duplicate = small.copy()
        duplicate.get("Person").remove_attribute("name")
        assert "name" in small.get("Person").attributes

    def test_copy_rename(self, small):
        assert small.copy("renamed").name == "renamed"

    def test_stats(self, small):
        stats = small.stats()
        assert stats["interfaces"] == 3
        assert stats["attributes"] == 4
        assert stats["relationship_ends"] == 2
        assert stats["supertype_links"] == 1

    def test_relationship_pairs(self, small):
        owners = [owner for owner, _ in small.relationship_pairs()]
        assert owners == ["Employee", "Department"]
