"""Differential tests: flat-array adjacency vs the dict reference spec.

DESIGN 5i keeps the PR 6 dict-of-sets adjacency as an executable
specification; these tests fold the same mutation stream into both the
columnar store (``schema.index.adjacency``) and :class:`DictAdjacency`
and require identical answers after *every* operation of an
apply / undo / redo / fork sequence -- including interface deletes,
dangling supertypes, and free-list id reuse.
"""

from __future__ import annotations

import pytest

from repro.model.columnar import DictAdjacency, adjacency_differential
from repro.model.interface import InterfaceDef
from repro.model.schema import Schema
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


def _assert_agreement(schema: Schema, subscribed: DictAdjacency) -> None:
    """Columnar store == incremental dict spec == fresh scan rebuild."""
    columnar = schema.index.adjacency
    incremental = adjacency_differential(columnar, subscribed)
    assert not incremental, incremental
    rescan = adjacency_differential(columnar, DictAdjacency(schema))
    assert not rescan, rescan


class TestFuzzedSequence:
    """Generated 40-op plan, checked after every apply / undo / redo."""

    @pytest.fixture
    def subject(self):
        spec = WorkloadSpec(types=60, seed=7, isa_fraction=0.5)
        schema = generate_schema(spec)
        operations = generate_operations(schema, 40, seed=3)
        workspace = Workspace(schema)
        reference = DictAdjacency(workspace.schema, subscribe=True)
        return workspace, operations, reference

    def test_apply_undo_redo_agree_at_every_step(self, subject):
        workspace, operations, reference = subject
        _assert_agreement(workspace.schema, reference)
        applied = 0
        for operation in operations:
            workspace.apply(operation)
            applied += 1
            _assert_agreement(workspace.schema, reference)
        for _ in range(applied):
            assert workspace.undo_last() is not None
            _assert_agreement(workspace.schema, reference)
        for _ in range(applied):
            assert workspace.redo() is not None
            _assert_agreement(workspace.schema, reference)

    def test_fork_carries_an_agreeing_store(self, subject):
        workspace, operations, reference = subject
        for operation in operations[:10]:
            workspace.apply(operation)
        fork = workspace.fork("branch")
        _assert_agreement(fork.schema, DictAdjacency(fork.schema))
        # Diverge the fork; the parent's store must not see the records.
        for operation in generate_operations(fork.schema, 5, seed=9):
            fork.apply(operation)
            _assert_agreement(fork.schema, DictAdjacency(fork.schema))
        _assert_agreement(workspace.schema, reference)


class TestDeleteAndIdReuse:
    """The free-list lifecycle of DESIGN 5i, one transition at a time."""

    @pytest.fixture
    def schema(self):
        schema = Schema("s")
        reference = DictAdjacency(schema, subscribe=True)
        schema.add_interface(InterfaceDef("A"))
        schema.add_interface(InterfaceDef("B", supertypes=["A"]))
        schema.add_interface(InterfaceDef("C", supertypes=["B"]))
        _assert_agreement(schema, reference)
        return schema, reference

    def test_leaf_delete_frees_its_id_for_reuse(self, schema):
        schema, reference = schema
        adjacency = schema.index.adjacency
        adjacency.ensure_fresh()
        freed = adjacency.table.id_of("C")
        capacity = adjacency.table.capacity
        schema.remove_interface("C")
        _assert_agreement(schema, reference)
        assert adjacency.table.id_of("C") is None
        assert adjacency.table.free_ids == 1
        # The next interned name takes the freed slot: no growth.
        schema.add_interface(InterfaceDef("D", supertypes=["B"]))
        _assert_agreement(schema, reference)
        assert adjacency.table.id_of("D") == freed
        assert adjacency.table.capacity == capacity

    def test_dangling_supertype_keeps_the_id_alive(self, schema):
        schema, reference = schema
        adjacency = schema.index.adjacency
        adjacency.ensure_fresh()
        a_id = adjacency.table.id_of("A")
        schema.remove_interface("A")  # B still declares supertype A
        _assert_agreement(schema, reference)
        assert adjacency.table.id_of("A") == a_id  # pinned by B's row
        assert adjacency.parents_of("A") == ()  # undefined -> no row
        assert adjacency.parents_of("B") == ("A",)  # declaration kept
        assert adjacency.descendants_of("A") == {"B", "C"}
        # Dropping the last dangling mention finally frees the id ...
        schema.get("B").remove_supertype("A")
        _assert_agreement(schema, reference)
        assert adjacency.table.id_of("A") is None
        # ... and a new definition reuses it.
        schema.add_interface(InterfaceDef("E"))
        _assert_agreement(schema, reference)
        assert adjacency.table.id_of("E") == a_id

    def test_set_supertypes_rewires_both_columns(self, schema):
        schema, reference = schema
        schema.add_interface(InterfaceDef("R"))
        schema.get("C").set_supertypes(["A", "R"])
        _assert_agreement(schema, reference)
        adjacency = schema.index.adjacency
        assert adjacency.parents_of("C") == ("A", "R")
        assert adjacency.descendants_of("B") == set()
        schema.get("C").set_supertypes([])
        _assert_agreement(schema, reference)
        assert adjacency.parents_of("C") == ()

    def test_reused_id_does_not_leak_old_rows(self, schema):
        schema, reference = schema
        adjacency = schema.index.adjacency
        adjacency.ensure_fresh()
        c_id = adjacency.table.id_of("C")
        schema.remove_interface("C")
        schema.add_interface(InterfaceDef("Z", supertypes=["A"]))
        _assert_agreement(schema, reference)
        assert adjacency.table.id_of("Z") == c_id
        assert adjacency.parents_of("Z") == ("A",)
        assert adjacency.descendants_of("B") == set()  # C's edge is gone
        assert "Z" not in adjacency.descendants_of("B")
