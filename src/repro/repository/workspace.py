"""The designer's workspace: the schema under design plus its history.

Figure 1 places a "Workspace" data structure between the concept schemas
and the custom schema: modifications are applied there, one operation at
a time, each validated, optionally propagated, logged, and undoable.

The paper's loop validates the custom schema after *every* operation;
the workspace does that through the incremental validation engine
(:class:`repro.model.validation_cache.ValidationCache`), which re-checks
only the dirty set each step leaves behind, and keeps the current issue
list in :attr:`Workspace.issues`.

On top of the mutation spine the workspace offers cheap what-if
branches: :meth:`Workspace.snapshot` is an O(1) watermark (a seq on the
schema's mutation log plus an undo depth), :meth:`Workspace.fork` clones
the current state into an independent workspace whose spine remembers
its lineage (so :func:`repro.analysis.diff.schema_diff` can diff the two
branches from their divergence suffixes), and :meth:`Workspace.undo_to`
rewinds to a snapshot through the ordinary undo machinery.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind, ConceptSchema
from repro.knowledge.constraints import cautions_for
from repro.knowledge.feedback import Feedback, info
from repro.knowledge.propagation import expand, expand_applying
from repro.model.errors import SchemaError
from repro.model.mutation import MutationLog
from repro.model.schema import Schema
from repro.model.validation import Issue
from repro.ops.base import (
    OperationContext,
    OperationError,
    SchemaOperation,
    Undo,
)
from repro.ops.registry import check_admissible


@dataclass(frozen=True)
class WorkspaceSnapshot:
    """An O(1) bookmark of a workspace state.

    ``seq`` is the watermark on the schema's mutation log at snapshot
    time and ``depth`` the undo depth; ``log`` pins the identity of the
    spine the snapshot was taken on, so a snapshot is rejected after
    :meth:`Workspace.reset` (which replaces the schema and its log).
    Taking a snapshot copies nothing -- restoring one
    (:meth:`Workspace.undo_to`) or branching from one
    (:meth:`Workspace.fork` with ``at=``) pays only for the distance
    travelled.
    """

    log: MutationLog
    seq: int
    depth: int


@dataclass
class LogEntry:
    """One applied step: the requested operation and its full plan."""

    requested: SchemaOperation
    plan: list[SchemaOperation]
    undos: list[Undo]
    concept_id: str | None = None
    feedback: list[Feedback] = field(default_factory=list)
    propagated: bool = True

    def describe(self) -> str:
        prefix = f"[{self.concept_id}] " if self.concept_id else ""
        text = prefix + self.requested.to_text()
        extra = len(self.plan) - 1
        if extra:
            text += f" (+{extra} cascaded)"
        return text


class Workspace:
    """The schema under design, with apply / undo / redo over operations.

    ``reference`` is the shrink wrap schema; it anchors semantic
    stability checks and is never modified.
    """

    def __init__(
        self,
        reference: Schema,
        name: str | None = None,
        validate_each_step: bool = True,
    ) -> None:
        self.reference = reference
        self.schema = reference.copy(name or f"{reference.name}_custom")
        self.context = OperationContext(reference=reference)
        self.log: list[LogEntry] = []
        self._redo_stack: list[LogEntry] = []
        #: Structural issues of the current custom schema, refreshed
        #: incrementally after every apply / undo / redo / reset (the
        #: paper's per-operation validation).  Empty when
        #: ``validate_each_step`` is off.
        self.validate_each_step = validate_each_step
        self.issues: list[Issue] = []
        #: Last plan analysis, keyed by (plan fingerprint, concept kind,
        #: normalize flag) and stamped with the spine it was computed
        #: against -- retrying a rejected plan reuses it instead of
        #: re-running the whole static analysis.
        self._analysis_memo: tuple | None = None
        self._refresh_issues()

    def _refresh_issues(self) -> None:
        if self.validate_each_step:
            self.issues = self.schema.validation.validate()

    def _note_scopes(self, plan: list[SchemaOperation]) -> None:
        """Feed each step's declared scope into the schema's journal.

        The interface-level mutator hooks already record precise dirt;
        the operations' declared (types, aspects) scopes are noted as
        well so out-of-band effects (undo closures, future operations
        that bypass a mutator) stay covered.
        """
        for step in plan:
            names, aspects = step.validation_scope()
            self.schema.note_validation_scope(names, aspects)

    # ------------------------------------------------------------------
    # Applying operations
    # ------------------------------------------------------------------

    def apply(
        self,
        operation: SchemaOperation,
        concept: ConceptSchema | None = None,
        propagate: bool = True,
    ) -> LogEntry:
        """Apply one operation (plus its cascades) to the workspace.

        When *concept* is given, the operation must be admissible in that
        concept schema's type (Table 1) -- this is how the interactive
        designer restricts "the possible modifications ... according to
        the concept schema type that is being modified" (Section 3).

        With ``propagate`` disabled, the operation is applied bare; it
        then fails whenever its own constraints require cascades first.
        The ablation bench uses this to quantify what the propagation
        rules buy.
        """
        return self._apply_entry(operation, concept, propagate, refresh=True)

    def _apply_entry(
        self,
        operation: SchemaOperation,
        concept: ConceptSchema | None,
        propagate: bool,
        refresh: bool,
    ) -> LogEntry:
        if concept is not None:
            check_admissible(operation, concept.kind)
        if propagate:
            plan = expand(self.schema, operation, self.context)
        else:
            plan = [operation]
        feedback: list[Feedback] = []
        for step in plan:
            feedback.extend(cautions_for(self.schema, step))
        undos: list[Undo] = []
        try:
            for step in plan:
                undos.append(step.apply(self.schema, self.context))
        except (OperationError, SchemaError):
            # Operations reject with OperationError; a model-layer
            # SchemaError (unknown type, duplicate name) escaping an
            # op's validate is the same verdict -- either way the
            # workspace must be left exactly as it was.
            for undo in reversed(undos):
                undo()
            raise
        for step in plan:
            if step is not operation:
                feedback.append(
                    info(
                        "cascaded", step.to_text(),
                        f"performed automatically for {operation.op_name}",
                    )
                )
        entry = LogEntry(
            requested=operation,
            plan=plan,
            undos=undos,
            concept_id=concept.identifier if concept else None,
            feedback=feedback,
            propagated=propagate,
        )
        self.log.append(entry)
        self._redo_stack.clear()
        self._note_scopes(plan)
        if refresh:
            self._refresh_issues()
        return entry

    def apply_plan(
        self,
        plan: list[SchemaOperation],
        concept: ConceptSchema | None = None,
        propagate: bool = True,
        normalize: bool = True,
    ) -> list[LogEntry]:
        """Pre-flight, normalize, and apply a whole plan at once.

        The plan is first vetted statically
        (:func:`repro.analysis.plan.analyze_plan` against the current
        schema and, when *concept* is given, its Table 1 kind); if any
        diagnostic fires, :class:`~repro.analysis.plan.PlanPreflightError`
        is raised before anything runs.  A clean plan is normalized
        (unless ``normalize`` is off) and applied batch by batch: every
        op still goes through the full :meth:`apply` machinery
        (admissibility, propagation, cautions, one log entry each), but
        the per-step validation runs once per *batch* of commuting ops
        instead of once per op -- the paper's validate-after-every-
        operation loop at a fraction of the cost.

        Returns one :class:`LogEntry` per *executed* (normalized) op.
        If any op fails dynamically mid-plan, everything applied so far
        is undone and the error re-raised, leaving the workspace as it
        was.
        """
        from repro.analysis.plan import PlanPreflightError

        kind = concept.kind if concept is not None else None
        analysis = self._analyzed(plan, kind, normalize)
        if analysis.diagnostics:
            raise PlanPreflightError(analysis.diagnostics)
        entries: list[LogEntry] = []
        try:
            for batch in analysis.batches:
                for operation in batch:
                    if propagate:
                        entries.append(self._apply_fast(operation, concept))
                    else:
                        entries.append(self._apply_entry(
                            operation, concept, propagate, refresh=False
                        ))
                self._refresh_issues()
        except (OperationError, SchemaError):
            for _ in entries:
                self.undo_last()
            self._redo_stack.clear()
            self._refresh_issues()
            raise
        return entries

    def _analyzed(self, plan, kind, normalize: bool):
        """Plan analysis, memoized on (plan fingerprint, spine seq).

        A rejected plan raises :class:`~repro.analysis.plan.
        PlanPreflightError` *before* anything mutates, so the schema's
        spine seq is unchanged on retry and the (deterministic) analysis
        can be reused wholesale -- it is ~19% of batched apply time
        (BENCH_PR5.json ``plan_analyze_fraction``).  Any mutation bumps
        the seq and naturally invalidates the memo.  Hits and misses are
        counted in ``Schema.stats()`` (``analysis.hits`` / ``.misses``).
        """
        from repro.analysis.plan import analyze_plan

        key = (tuple(op.to_text() for op in plan), kind, normalize)
        log = self.schema.log
        memo = self._analysis_memo
        if (
            memo is not None
            and memo[0] == key
            and memo[1] is log
            and memo[2] == log.seq
        ):
            self.schema.note_analysis_cache(True)
            return memo[3]
        self.schema.note_analysis_cache(False)
        analysis = analyze_plan(
            plan, self.schema, kind=kind, normalize=normalize, edges=False
        )
        self._analysis_memo = (key, log, log.seq, analysis)
        return analysis

    def apply_plan_compiled(
        self,
        plan: list[SchemaOperation],
        concept: ConceptSchema | None = None,
        normalize: bool = True,
    ) -> list[LogEntry]:
        """The fused compiled-plan path: one mutation pass, one validate.

        Same pre-flight and normalization as :meth:`apply_plan`, but the
        clean, batched plan is then *compiled down* to a single pass:
        every op (with its cascades) mutates the live schema through
        :func:`~repro.knowledge.propagation.expand_applying` exactly as
        the per-op path does, and validation runs once at the end
        instead of once per batch.  Designer feedback (cautions,
        cascade notes) is skipped -- this path is for bulk application
        where the pre-flight already vetted the plan, e.g. replaying a
        reviewed script onto a 10k-type schema.

        The emitted ``MutationRecord`` stream is identical to the
        per-op path's, record for record: all mutation flows through the
        same ``step.apply`` calls inside ``expand_applying`` followed by
        the same per-step scope notes (``tools/check_mutators.py``
        AST-checks this path mutates through no other channel).  On a
        dynamic failure mid-pass, every applied undo closure runs in
        reverse and the error is re-raised with the history untouched.
        """
        from repro.analysis.plan import PlanPreflightError

        kind = concept.kind if concept is not None else None
        analysis = self._analyzed(plan, kind, normalize)
        if analysis.diagnostics:
            raise PlanPreflightError(analysis.diagnostics)
        concept_id = concept.identifier if concept else None
        entries: list[LogEntry] = []
        try:
            for batch in analysis.batches:
                for operation in batch:
                    if concept is not None:
                        check_admissible(operation, concept.kind)
                    step_plan, undos = expand_applying(
                        self.schema, operation, self.context
                    )
                    entries.append(
                        LogEntry(
                            requested=operation,
                            plan=step_plan,
                            undos=undos,
                            concept_id=concept_id,
                            feedback=[],
                            propagated=True,
                        )
                    )
                    self._note_scopes(step_plan)
        except (OperationError, SchemaError):
            for entry in reversed(entries):
                for undo in reversed(entry.undos):
                    undo()
                self._note_scopes(entry.plan)
            self._refresh_issues()
            raise
        self.log.extend(entries)
        self._redo_stack.clear()
        self._refresh_issues()
        return entries

    def _apply_fast(
        self, operation: SchemaOperation, concept: ConceptSchema | None
    ) -> LogEntry:
        """:meth:`apply` minus the scratch-copy expansion and validation.

        Used by :meth:`apply_plan` only: cascades are computed against
        the live schema and applied in the same breath
        (:func:`~repro.knowledge.propagation.expand_applying`), which is
        safe there because the op either completes with undo closures
        recorded or rolls itself back.  Cautions are consequently
        evaluated against the state each step actually applies to, and
        the caller is responsible for refreshing validation.
        """
        if concept is not None:
            check_admissible(operation, concept.kind)
        feedback: list[Feedback] = []
        plan, undos = expand_applying(
            self.schema, operation, self.context,
            before_step=lambda step: feedback.extend(
                cautions_for(self.schema, step)
            ),
        )
        for step in plan:
            if step is not operation:
                feedback.append(
                    info(
                        "cascaded", step.to_text(),
                        f"performed automatically for {operation.op_name}",
                    )
                )
        entry = LogEntry(
            requested=operation,
            plan=plan,
            undos=undos,
            concept_id=concept.identifier if concept else None,
            feedback=feedback,
            propagated=True,
        )
        self.log.append(entry)
        self._redo_stack.clear()
        self._note_scopes(plan)
        return entry

    def preview(self, plan: list[SchemaOperation], concept=None):
        """What data a pending plan newly admits or forbids; mutates nothing.

        The plan is applied to a throw-away fork, significant example
        populations (:mod:`repro.examples`) are generated on both sides
        for the interfaces the plan's instance-impact facet names, and
        every admission flip is reported as designer feedback: a caution
        per population the plan newly forbids, an info per population it
        newly admits.  Returns a
        :class:`~repro.examples.preview.PlanPreview`.
        """
        from repro.examples.preview import preview_plan

        return preview_plan(self, plan, concept)

    def apply_composite(
        self,
        composite,
        concept: ConceptSchema | None = None,
        propagate: bool = True,
    ) -> list[LogEntry]:
        """Apply a composite operation (a macro of primitives).

        Each primitive of the expanded plan is applied -- and logged --
        through the normal :meth:`apply` path, so propagation, feedback,
        undo, and persistence all keep working at the primitive level.
        If a later primitive fails, the earlier ones are undone and the
        error re-raised, leaving the workspace unchanged.
        """
        plan = composite.expand_plan(self.schema, self.context)
        entries: list[LogEntry] = []
        try:
            for operation in plan:
                entries.append(self.apply(operation, concept, propagate))
        except (OperationError, SchemaError):
            for _ in entries:
                self.undo_last()
            self._redo_stack.clear()
            raise
        return entries

    def apply_kind_checked(
        self, operation: SchemaOperation, kind: ConceptKind,
        propagate: bool = True,
    ) -> LogEntry:
        """Apply with a bare concept *kind* instead of a concept object."""
        check_admissible(operation, kind)
        return self.apply(operation, concept=None, propagate=propagate)

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------

    @property
    def undo_depth(self) -> int:
        """How many applied steps can currently be undone."""
        return len(self.log)

    @property
    def redo_depth(self) -> int:
        """How many undone steps can currently be re-applied."""
        return len(self._redo_stack)

    def undo_last(self) -> LogEntry | None:
        """Undo the most recent step (the whole plan); returns it."""
        if not self.log:
            return None
        entry = self.log.pop()
        for undo in reversed(entry.undos):
            undo()
        self._redo_stack.append(entry)
        self._note_scopes(entry.plan)
        self._refresh_issues()
        return entry

    def redo(self) -> LogEntry | None:
        """Re-apply the most recently undone step; returns the new entry.

        Mirrors :meth:`apply`: if any plan step fails mid-redo, the
        already re-applied steps are rolled back and the entry stays on
        the redo stack, leaving the workspace exactly as before the
        call.  The fresh log entry keeps the original ``propagated``
        flag so the history stays faithful to how the step was applied.
        """
        if not self._redo_stack:
            return None
        entry = self._redo_stack.pop()
        undos: list[Undo] = []
        try:
            for step in entry.plan:
                undos.append(step.apply(self.schema, self.context))
        except (OperationError, SchemaError):
            for undo in reversed(undos):
                undo()
            self._redo_stack.append(entry)
            raise
        fresh = LogEntry(
            requested=entry.requested,
            plan=entry.plan,
            undos=undos,
            concept_id=entry.concept_id,
            feedback=entry.feedback,
            propagated=entry.propagated,
        )
        self.log.append(fresh)
        self._note_scopes(fresh.plan)
        self._refresh_issues()
        return fresh

    # ------------------------------------------------------------------
    # Snapshots & forking
    # ------------------------------------------------------------------

    def snapshot(self) -> WorkspaceSnapshot:
        """Bookmark the current state in O(1).

        The snapshot is just a watermark on the schema's mutation spine
        plus the current undo depth -- nothing is copied.  Rewind to it
        with :meth:`undo_to`, or branch an independent workspace off it
        with :meth:`fork(at=...) <fork>`.  A snapshot is invalidated by
        :meth:`reset` (the schema and its spine are replaced).
        """
        return WorkspaceSnapshot(
            log=self.schema.log,
            seq=self.schema.log.seq,
            depth=self.undo_depth,
        )

    def _check_snapshot(self, snapshot: WorkspaceSnapshot) -> None:
        if snapshot.log is not self.schema.log:
            raise ValueError(
                "snapshot belongs to a different workspace state "
                "(taken before a reset, or on another workspace)"
            )
        if snapshot.depth > self.undo_depth:
            raise ValueError(
                f"snapshot depth {snapshot.depth} is ahead of the "
                f"current history ({self.undo_depth} steps); the steps "
                "it bookmarked were undone and overwritten"
            )

    def undo_to(self, snapshot: WorkspaceSnapshot) -> int:
        """Rewind to *snapshot* via undo; returns how many steps unwound.

        Runs the ordinary :meth:`undo_last` machinery, so the unwound
        steps land on the redo stack and can be replayed with
        :meth:`redo` -- a snapshot is a named point in the same history,
        not a separate timeline.
        """
        self._check_snapshot(snapshot)
        unwound = 0
        while self.undo_depth > snapshot.depth:
            self.undo_last()
            unwound += 1
        return unwound

    def fork(
        self,
        name: str | None = None,
        at: WorkspaceSnapshot | None = None,
    ) -> "Workspace":
        """An independent what-if branch of this workspace.

        Without ``at``, the fork clones the *current* state: the schema
        is copied shallowly (fresh containers, shared immutable values)
        and its mutation log records the lineage, so record-level
        diffing of the two branches stays cheap.  The fork starts with
        an empty undo history -- its log entries' undo closures would
        otherwise be bound to this workspace's objects -- and inherits
        the current issue list without revalidating (its first
        validation after a mutation is a full rebuild).

        With ``at`` (a snapshot of this workspace), the fork replays the
        bookmarked plan prefix onto a fresh copy of the reference,
        reproducing the state the snapshot bookmarked *with* a live undo
        history, while this workspace stays untouched.  When the replay
        cannot reproduce the state -- the schema was edited out-of-band
        (its mutation log is lossy), or this workspace is itself a fork
        (a CoW child whose baseline is its parent's state, not the
        reference, so the op log alone no longer tells the whole story)
        -- the fork falls back to rewinding this workspace to the
        snapshot, cloning, and replaying forward again; the branch is
        then state-correct but starts with an empty undo history, and a
        :class:`RuntimeWarning` says so.
        """
        if at is not None:
            self._check_snapshot(at)
            if self.schema.log.origin is not None:
                return self._fork_by_rewind(
                    name, at,
                    "this workspace is itself a fork; its baseline is "
                    "its parent's state, not the reference",
                )
            if self.schema.log.lossy:
                return self._fork_by_rewind(
                    name, at,
                    "the schema was edited out-of-band "
                    "(its mutation log is lossy)",
                )
            try:
                return self._fork_by_replay(name, at)
            except (OperationError, SchemaError) as error:
                return self._fork_by_rewind(
                    name, at, f"replaying the op log failed ({error})"
                )
        branch = Workspace.__new__(Workspace)
        branch.reference = self.reference
        branch.schema = self.schema.fork(name or f"{self.schema.name}_fork")
        branch.context = OperationContext(reference=self.reference)
        branch.log = []
        branch._redo_stack = []
        branch.validate_each_step = self.validate_each_step
        branch.issues = list(self.issues)
        branch._analysis_memo = None
        return branch

    def _fork_by_replay(
        self, name: str | None, at: WorkspaceSnapshot
    ) -> "Workspace":
        """The normal ``fork(at=...)`` path: replay the op-log prefix."""
        branch = Workspace(
            self.reference,
            name or f"{self.schema.name}_fork",
            validate_each_step=self.validate_each_step,
        )
        for entry in self.log[: at.depth]:
            undos: list[Undo] = []
            for step in entry.plan:
                undos.append(step.apply(branch.schema, branch.context))
            branch.log.append(
                LogEntry(
                    requested=entry.requested,
                    plan=entry.plan,
                    undos=undos,
                    concept_id=entry.concept_id,
                    feedback=entry.feedback,
                    propagated=entry.propagated,
                )
            )
            branch._note_scopes(entry.plan)
        branch._refresh_issues()
        return branch

    def _fork_by_rewind(
        self, name: str | None, at: WorkspaceSnapshot, reason: str
    ) -> "Workspace":
        """Fallback ``fork(at=...)``: rewind, clone, roll forward again.

        State-correct even when the op log alone cannot rebuild the
        schema, at the price of an empty undo history on the branch.
        Out-of-band edits are not position-tracked, so the branch
        reflects them even when they happened after the snapshot.
        """
        warnings.warn(
            f"fork(at=...) cannot replay the bookmarked prefix: {reason}; "
            "falling back to rewind-and-clone -- the branch is "
            "state-correct but starts with an empty undo history",
            RuntimeWarning,
            stacklevel=3,
        )
        unwound = self.undo_to(at)
        try:
            return self.fork(name)
        finally:
            for _ in range(unwound):
                self.redo()

    def reset(self) -> None:
        """Throw away all customization and start over."""
        self.schema = self.reference.copy(self.schema.name)
        self.log.clear()
        self._redo_stack.clear()
        self._refresh_issues()

    def applied_operations(self) -> list[SchemaOperation]:
        """Every plan step applied so far, in order."""
        return [step for entry in self.log for step in entry.plan]

    def script(self) -> str:
        """The whole customization as an operation-language script."""
        return "\n".join(op.to_text() for op in self.applied_operations())

    def history(self) -> str:
        """Readable log of the requested operations."""
        return "\n".join(entry.describe() for entry in self.log)
