"""Compiled-plan path and plan-analysis memoization (PR 6).

Pins the two workspace-level contracts the compact-representation work
introduced:

* :meth:`Workspace.apply_plan_compiled` is behaviourally identical to
  the batched per-op path -- same final schema, same per-entry plans,
  same ``MutationRecord`` stream -- while validating once per plan.
* :meth:`Workspace.apply_plan` / ``apply_plan_compiled`` memoize their
  static pre-flight analysis on (plan fingerprint, spine seq): retrying
  a rejected plan on an unchanged schema is a cache hit, visible in
  ``Schema.stats()``.
"""

import pytest

from repro.analysis.plan import PlanPreflightError
from repro.model.fingerprint import schema_fingerprint
from repro.model.types import scalar
from repro.ops.attribute_ops import AddAttribute
from repro.ops.base import OperationError
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)


@pytest.fixture
def workspace(small):
    return Workspace(small, name="compact_ws")


def _generated_corpus():
    spec = WorkloadSpec(types=24, seed=7, isa_fraction=0.4,
                        part_of_chain=5, instance_of_chain=4)
    schema = generate_schema(spec)
    plan = generate_operations(schema, 60, seed=3)
    return schema, plan


class TestCompiledPlanParity:
    def test_matches_per_op_application(self):
        schema, plan = _generated_corpus()
        naive = Workspace(schema.copy("naive"), name="naive")
        for operation in plan:
            naive.apply(operation)
        compiled_schema = schema.copy("compiled")
        compiled = Workspace(compiled_schema, name="compiled")
        base_seq = compiled_schema.log.seq
        entries = compiled.apply_plan_compiled(list(plan))
        assert schema_fingerprint(naive.schema) == schema_fingerprint(
            compiled.schema
        )
        assert len(entries) == compiled.undo_depth

        # Record-for-record identical mutation stream: the compiled pass
        # mutates through the same expand_applying + scope notes as the
        # per-op path, only the validation cadence differs.
        def stream(log, since):
            return [
                (r.kind, r.interface, r.aspects)
                for r in log.records_since(since)
            ]

        # The per-op workspace applied without batching/normalization,
        # so compare against a batched apply_plan run instead.
        batched_schema = schema.copy("batched")
        batched = Workspace(batched_schema, name="batched")
        batched_base = batched_schema.log.seq
        batched.apply_plan(list(plan))
        assert stream(compiled_schema.log, base_seq) == stream(
            batched_schema.log, batched_base
        )
        assert schema_fingerprint(batched.schema) == schema_fingerprint(
            compiled.schema
        )

    def test_entry_plans_match_batched_path(self):
        schema, plan = _generated_corpus()
        batched = Workspace(schema.copy("b"), name="b")
        compiled = Workspace(schema.copy("c"), name="c")
        batched_entries = batched.apply_plan(list(plan))
        compiled_entries = compiled.apply_plan_compiled(list(plan))
        assert [
            [step.to_text() for step in entry.plan]
            for entry in batched_entries
        ] == [
            [step.to_text() for step in entry.plan]
            for entry in compiled_entries
        ]

    def test_undo_reverses_compiled_entries(self):
        schema, plan = _generated_corpus()
        workspace = Workspace(schema, name="undoable")
        before = schema_fingerprint(workspace.schema)
        entries = workspace.apply_plan_compiled(list(plan))
        assert entries
        for _ in entries:
            workspace.undo_last()
        assert schema_fingerprint(workspace.schema) == before

    def test_preflight_rejection_leaves_workspace_untouched(self, workspace):
        before = schema_fingerprint(workspace.schema)
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan_compiled([
                AddAttribute("Person", scalar("long"), "ok"),
                AddAttribute("Ghost", scalar("long"), "x"),
            ])
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.undo_depth == 0

    def test_dynamic_failure_rolls_back_everything(self, workspace):
        before = schema_fingerprint(workspace.schema)
        generation = workspace.schema.generation
        plan = [
            AddAttribute("Person", scalar("long"), "fresh"),
            # Statically clean (the analyzer does not model
            # attribute-level state) but dynamically a duplicate.
            AddAttribute("Person", scalar("long"), "id"),
        ]
        with pytest.raises(OperationError):
            workspace.apply_plan_compiled(plan)
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.undo_depth == 0
        assert workspace.redo_depth == 0
        # The rollback mutated and un-mutated; the spine moved forward.
        assert workspace.schema.generation > generation


class TestAnalysisMemoization:
    def test_retry_of_rejected_plan_is_a_cache_hit(self, workspace):
        plan = [
            AddAttribute("Person", scalar("long"), "ok"),
            AddAttribute("Ghost", scalar("long"), "x"),
        ]
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(plan)
        stats = workspace.schema.stats()
        assert stats["analysis.misses"] == 1
        assert stats["analysis.hits"] == 0
        # Nothing mutated, so the retry reuses the whole analysis.
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(plan)
        stats = workspace.schema.stats()
        assert stats["analysis.misses"] == 1
        assert stats["analysis.hits"] == 1

    def test_compiled_path_shares_the_memo(self, workspace):
        plan = [
            AddAttribute("Person", scalar("long"), "ok"),
            AddAttribute("Ghost", scalar("long"), "x"),
        ]
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(plan)
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan_compiled(plan)
        stats = workspace.schema.stats()
        assert stats["analysis.misses"] == 1
        assert stats["analysis.hits"] == 1

    def test_any_mutation_invalidates_the_memo(self, workspace):
        plan = [
            AddAttribute("Person", scalar("long"), "ok"),
            AddAttribute("Ghost", scalar("long"), "x"),
        ]
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(plan)
        workspace.apply(AddAttribute("Person", scalar("long"), "bump"))
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(plan)
        stats = workspace.schema.stats()
        assert stats["analysis.misses"] == 2
        assert stats["analysis.hits"] == 0

    def test_different_plan_is_a_miss(self, workspace):
        plan = [AddAttribute("Ghost", scalar("long"), "x")]
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan(plan)
        with pytest.raises(PlanPreflightError):
            workspace.apply_plan([AddAttribute("Ghost", scalar("long"), "y")])
        stats = workspace.schema.stats()
        assert stats["analysis.misses"] == 2
        assert stats["analysis.hits"] == 0
