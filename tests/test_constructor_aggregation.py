"""Tests for the type-constructor aggregation extension (Section 5)."""

from repro.concepts.aggregation import (
    aggregation_roots_with_constructors,
    constructor_edges,
    extract_aggregation_hierarchy,
    extract_all_aggregation_hierarchies,
)
from repro.odl.parser import parse_schema

COMPLEX_OBJECT_ODL = """
interface Order {
    attribute set<Line_Item> items;
    attribute string(20) number;
};
interface Line_Item {
    attribute short quantity;
    attribute list<Discount> discounts;
};
interface Discount {
    attribute float percentage;
};
"""


def complex_schema():
    schema = parse_schema(COMPLEX_OBJECT_ODL, name="orders")
    schema.validate()
    return schema


class TestConstructorEdges:
    def test_collection_attributes_detected(self):
        edges = constructor_edges(complex_schema())
        assert ("Order", "Line_Item", "items") in edges
        assert ("Line_Item", "Discount", "discounts") in edges

    def test_scalar_collections_ignored(self):
        schema = parse_schema(
            "interface A { attribute set<string> tags; };", name="s"
        )
        assert constructor_edges(schema) == []

    def test_scalar_attributes_ignored(self):
        edges = constructor_edges(complex_schema())
        assert not any(path == "number" for _, _, path in edges)


class TestConstructorHierarchies:
    def test_default_extraction_sees_no_hierarchy(self):
        schema = complex_schema()
        assert schema.aggregation_roots() == []
        assert extract_all_aggregation_hierarchies(schema) == []

    def test_constructor_extraction_sees_the_explosion(self):
        schema = complex_schema()
        assert aggregation_roots_with_constructors(schema) == ["Order"]
        hierarchies = extract_all_aggregation_hierarchies(
            schema, include_constructors=True
        )
        assert len(hierarchies) == 1
        hierarchy = hierarchies[0]
        assert hierarchy.members == {"Order", "Line_Item", "Discount"}
        assert hierarchy.parts_of("Order") == ["Line_Item"]
        assert hierarchy.parts_of("Line_Item") == ["Discount"]

    def test_mixed_explicit_and_constructor_edges(self, house):
        from repro.model.attributes import Attribute
        from repro.model.types import set_of

        house.get("Plumbing").add_attribute(
            Attribute("fixtures", set_of("Window"))
        )
        hierarchy = extract_aggregation_hierarchy(
            house, "House", include_constructors=True
        )
        # The explicit explosion is intact and the implicit edge joins it.
        assert "Shingle" in hierarchy.members
        assert "Window" in hierarchy.parts_of("Plumbing")

    def test_bill_of_materials_with_constructors(self):
        hierarchy = extract_aggregation_hierarchy(
            complex_schema(), "Order", include_constructors=True
        )
        levels = {name: level for level, name in hierarchy.bill_of_materials()}
        assert levels == {"Order": 0, "Line_Item": 1, "Discount": 2}
