"""Compact-representation scaling curve (ISSUE 6).

PR 6 restructures the hot model layer for 10k+ type schemas: interned
names, ``__slots__`` on the per-instance hot classes, incremental
(record-folded) ISA / reverse-reference adjacency in the index, and the
fused compiled-plan path (:meth:`Workspace.apply_plan_compiled`) that
decomposes, applies, and validates a whole normalized plan in a single
pass.  This bench records the types-axis curve the ISSUE asks for --
the same 100-op seeded plan applied at 200 / 1 000 / 10 000 types --
for both the per-op batched path and the fused compiled path, and
writes it to ``BENCH_PR6.json`` at the repository root.

Floor (enforced only at full scale): decompose + validate + apply of a
100-op plan on the 10 000-type schema in under 100 ms median on the
compiled path.
"""

from __future__ import annotations

import os
import statistics
import time
from pathlib import Path

from benchmarks.conftest import merge_bench_results
from repro.repository.workspace import Workspace
from repro.workload.generator import (
    WorkloadSpec,
    generate_operations,
    generate_schema,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: the ISSUE floor is enforced only at full scale
STRICT = not SMOKE
SIZES = (60, 200) if SMOKE else (200, 1_000, 10_000)
PLAN_OPS = 20 if SMOKE else 100
REPEATS = 3 if SMOKE else 5
FLOOR_SECONDS = 0.100

BENCH_PR6_JSON = Path(__file__).parent.parent / "BENCH_PR6.json"


def _subject(size: int) -> tuple[Workspace, list]:
    spec = WorkloadSpec(
        types=size,
        seed=42,
        isa_fraction=0.45,
        part_of_chain=min(100, max(4, size // 4)),
        instance_of_chain=min(50, max(3, size // 8)),
    )
    schema = generate_schema(spec)
    operations = list(generate_operations(schema, PLAN_OPS, seed=11))
    return Workspace(schema), operations


def _median_plan_time(apply_once, undo_all) -> float:
    """Median seconds of *apply_once*; state restored between reps."""
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        entries = apply_once()
        times.append(time.perf_counter() - start)
        undo_all(entries)
    return statistics.median(times)


def test_bench_compact_plan_scaling(report, record_bench):
    """200 / 1k / 10k curve: batched per-op vs fused compiled path."""
    rows = []
    results: dict[str, dict] = {}
    for size in SIZES:
        workspace, operations = _subject(size)

        def undo_all(entries) -> None:
            for _ in range(len(entries)):
                workspace.undo_last()

        compiled = _median_plan_time(
            lambda: workspace.apply_plan_compiled(list(operations)),
            undo_all,
        )
        batched = _median_plan_time(
            lambda: workspace.apply_plan(list(operations)),
            undo_all,
        )
        rows.append((size, len(operations), batched, compiled))
        results[f"compact_plan_batched[{size}]"] = {
            "median_seconds": batched,
            "types": size,
            "plan_ops": len(operations),
        }
        results[f"compact_plan_compiled[{size}]"] = {
            "median_seconds": compiled,
            "types": size,
            "plan_ops": len(operations),
        }
        record_bench(f"compact_plan_compiled[{size}]", compiled, types=size)

    lines = [
        f"{'types':>7}  {'ops':>4}  {'batched':>10}  {'compiled':>10}  {'speedup':>8}"
    ]
    for size, ops, batched, compiled in rows:
        speedup = batched / compiled if compiled else float("inf")
        lines.append(
            f"{size:>7}  {ops:>4}  {batched * 1000:>8.1f}ms  "
            f"{compiled * 1000:>8.1f}ms  {speedup:>7.1f}x"
        )
    report("compact_plan_scaling", "\n".join(lines))

    if not SMOKE:
        # The smoke tripwire must not clobber the full-scale curve.
        merge_bench_results(results, path=BENCH_PR6_JSON)

    if STRICT:
        largest = rows[-1]
        assert largest[0] == 10_000
        assert largest[3] < FLOOR_SECONDS, (
            f"compiled 100-op plan at 10k types took "
            f"{largest[3] * 1000:.1f}ms median (floor {FLOOR_SECONDS * 1000:.0f}ms)"
        )
