"""The mapping between shrink wrap and customized schema.

Section 5, activity 10: "Definition of a mapping representation that
records the semantic correspondence between the shrink wrap and
customized schema."  Under name equivalence and the stability
assumptions the correspondence is derivable structurally, so the mapping
is generated from the construct-level diff
(:mod:`repro.analysis.diff`) -- this is Figure 1's "Generate custom
schema mapping" processing step.

Systems built from the same shrink wrap schema can afterwards be
integrated through the mapping: every ``unchanged`` / ``modified`` /
``moved`` construct is a semantically identical construct across the
derived schemas (the paper's interoperation application, Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diff import ChangeEntry, ChangeStatus, diff_schemas
from repro.model.schema import Schema


@dataclass
class SchemaMapping:
    """Correspondence of every construct between two schemas."""

    original_name: str
    custom_name: str
    entries: list[ChangeEntry] = field(default_factory=list)

    def corresponding(self) -> list[ChangeEntry]:
        """Constructs with a counterpart on both sides.

        These are the "common objects" through which two systems built
        from the same shrink wrap schema can interoperate.
        """
        shared = (
            ChangeStatus.UNCHANGED, ChangeStatus.MODIFIED, ChangeStatus.MOVED
        )
        return [entry for entry in self.entries if entry.status in shared]

    def added(self) -> list[ChangeEntry]:
        """Constructs that exist only in the custom schema."""
        return [
            entry for entry in self.entries
            if entry.status is ChangeStatus.ADDED
        ]

    def deleted(self) -> list[ChangeEntry]:
        """Shrink wrap constructs the designer removed."""
        return [
            entry for entry in self.entries
            if entry.status is ChangeStatus.DELETED
        ]

    def lookup(self, path: str) -> ChangeEntry | None:
        """Find the entry for one construct path, if any."""
        for entry in self.entries:
            if entry.path == path:
                return entry
        return None

    def reuse_ratio(self) -> float:
        """Fraction of shrink wrap constructs surviving into the custom schema.

        A construct survives when its status is unchanged, modified, or
        moved.  This is the headline number of the ACEDB case study
        benches: how much of the original design effort was reused.
        """
        survivors = len(self.corresponding())
        originals = survivors + len(self.deleted())
        if originals == 0:
            return 1.0
        return survivors / originals

    def render(self) -> str:
        """Multi-line mapping report."""
        lines = [
            f"mapping {self.original_name!r} -> {self.custom_name!r}:",
            f"  corresponding constructs: {len(self.corresponding())}",
            f"  added in custom schema:   {len(self.added())}",
            f"  deleted from original:    {len(self.deleted())}",
            f"  reuse ratio:              {self.reuse_ratio():.2f}",
        ]
        interesting = [
            entry for entry in self.entries
            if entry.status is not ChangeStatus.UNCHANGED
        ]
        if interesting:
            lines.append("  changes:")
            lines.extend(f"    {entry}" for entry in interesting)
        return "\n".join(lines)


def generate_mapping(original: Schema, custom: Schema) -> SchemaMapping:
    """Build the mapping deliverable from the two schemas."""
    diff = diff_schemas(original, custom)
    return SchemaMapping(original.name, custom.name, diff.entries)
