"""Instance-impact honesty: ``instance_neutral`` ops really are neutral.

The instance layer (witness populations, significant examples à la
Proper's schema-validation examples) uses each operation's
``instance_impact()`` to decide which populations an edit can disturb;
an op declaring ``instance_neutral`` short-circuits that to "none".
The declaration is only honest if the op's ``apply`` (and its undo
closure) cannot reach a mutator that affects stored instances.

Population-*neutral* mutators are the ones that rename an extent or
reshape operation signatures and declaration order -- no stored object
is keyed by them.  Everything else (attributes, keys, supertypes,
relationships, membership) shapes what a population can hold, so an
``instance_neutral`` op reaching one is lying to the example engine:
stale witness populations would survive an edit that invalidated them.

The pass reuses the runtime mutator tracer from
:mod:`repro.lint.passes.effects` (same closure semantics: MRO-resolved
self calls, module helpers, nested undo closures).

It also proves **registry exhaustiveness**: every concrete
``SchemaOperation`` subclass defined under ``repro.ops`` (concrete ==
carries a string ``op_name``; the relationship base classes deliberately
leave it ``None``) must appear in ``OPERATION_CLASSES``.  An
unregistered op would silently miss every registry-driven check --
including this one and the effects pass.
"""

from __future__ import annotations

import inspect
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.passes.effects import _klass_anchor, reachable_mutators
from repro.lint.registry import LintContext, register_pass
from repro.ops.base import SchemaOperation
from repro.ops.registry import OPERATION_CLASSES

#: mutators that cannot disturb any stored instance: extent *names*,
#: operation signatures, and declaration-order permutations carry no
#: population data
POPULATION_NEUTRAL_MUTATORS = frozenset(
    {
        "set_extent",
        "add_operation",
        "remove_operation",
        "replace_operation",
        "reorder_operations",
        "reorder_attributes",
        "reorder_interfaces",
    }
)


def neutrality_findings(
    classes: Iterable[type] = OPERATION_CLASSES,
) -> list[Finding]:
    """instance_neutral ops whose apply reaches a population mutator."""
    findings: list[Finding] = []
    for klass in classes:
        if not getattr(klass, "instance_neutral", False):
            continue
        offending = sorted(
            reachable_mutators(klass) - POPULATION_NEUTRAL_MUTATORS
        )
        if offending:
            path, line = _klass_anchor(klass)
            findings.append(
                Finding(
                    rule="instance-impact",
                    path=path,
                    line=line,
                    symbol=f"{klass.__module__}:{klass.__name__}",
                    message=(
                        "declares instance_neutral but apply reaches "
                        f"population-affecting mutator(s) "
                        f"{', '.join(offending)}; the example engine would "
                        "keep witness populations this edit invalidates"
                    ),
                )
            )
    return findings


def _concrete_op_subclasses(package_prefix: str = "repro.ops") -> list[type]:
    """Concrete SchemaOperation subclasses under *package_prefix*.

    Runtime subclass walk filtered to the shipped package, so ad-hoc
    subclasses (tests define some) never count; concrete means a string
    ``op_name`` -- the shared relationship bases leave it ``None``.
    """
    found: list[type] = []
    frontier = list(SchemaOperation.__subclasses__())
    seen: set[type] = set()
    while frontier:
        klass = frontier.pop()
        if klass in seen:
            continue
        seen.add(klass)
        frontier.extend(klass.__subclasses__())
        if not klass.__module__.startswith(package_prefix):
            continue
        if inspect.isabstract(klass):
            continue
        if isinstance(getattr(klass, "op_name", None), str):
            found.append(klass)
    return found


def coverage_findings(
    registered: Iterable[type] = OPERATION_CLASSES,
    package_prefix: str = "repro.ops",
) -> list[Finding]:
    """Concrete shipped ops missing from the registry tuple."""
    registered = set(registered)
    findings: list[Finding] = []
    for klass in sorted(
        set(_concrete_op_subclasses(package_prefix)) - registered,
        key=lambda k: (k.__module__, k.__name__),
    ):
        path, line = _klass_anchor(klass)
        findings.append(
            Finding(
                rule="instance-impact",
                path=path,
                line=line,
                symbol=f"{klass.__module__}:{klass.__name__}",
                message=(
                    f"concrete operation (op_name={klass.op_name!r}) is not "
                    "in OPERATION_CLASSES; unregistered ops silently escape "
                    "every registry-driven contract check"
                ),
            )
        )
    return findings


@register_pass(
    "instance-impact",
    rules=("instance-impact",),
    contract=(
        "instance_neutral ops reach only population-neutral mutators, and "
        "OPERATION_CLASSES covers every concrete shipped op"
    ),
)
def run(context: LintContext) -> list[Finding]:
    return neutrality_findings() + coverage_findings()
