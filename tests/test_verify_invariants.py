"""Tests for the invariant registry (repro.verify.invariants)."""

import pytest

from repro.catalog import SCHEMA_BUILDERS, load
from repro.model.attributes import Attribute
from repro.model.interface import InterfaceDef
from repro.model.relationships import RelationshipEnd
from repro.model.schema import Schema
from repro.model.types import NamedType
from repro.ops.language import parse_operation
from repro.repository.workspace import Workspace
from repro.verify.invariants import (
    INVARIANTS,
    TIER_CHEAP,
    TIER_EXPENSIVE,
    check_schema,
    check_workspace,
    describe_registry,
)
from repro.workload.generator import WorkloadSpec, generate_schema


class TestRegistry:
    def test_at_least_fifteen_invariants(self):
        assert len(INVARIANTS) >= 15

    def test_every_invariant_cites_a_clause(self):
        for inv in INVARIANTS:
            assert inv.clause, f"{inv.name} has no paper clause"
            assert inv.tier in (TIER_CHEAP, TIER_EXPENSIVE)
            assert inv.scope in ("schema", "workspace")

    def test_names_are_unique(self):
        names = [inv.name for inv in INVARIANTS]
        assert len(names) == len(set(names))

    def test_describe_registry_lists_every_name(self):
        text = describe_registry()
        for inv in INVARIANTS:
            assert inv.name in text


class TestCleanSchemas:
    @pytest.mark.parametrize("name", sorted(SCHEMA_BUILDERS))
    def test_catalog_schema_is_clean(self, name):
        assert check_schema(load(name)) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_schema_is_clean(self, seed):
        schema = generate_schema(WorkloadSpec(types=12, seed=seed))
        assert check_schema(schema) == []

    def test_fresh_workspace_is_clean(self):
        assert check_workspace(Workspace(load("university"))) == []

    def test_customized_workspace_is_clean(self):
        workspace = Workspace(load("company"))
        for text in (
            "add_type_definition(Project)",
            "add_attribute(Project, string(40), title)",
            "add_extent_name(Project, projects)",
        ):
            workspace.apply(parse_operation(text))
        workspace.undo_last()
        workspace.redo()
        assert check_workspace(workspace) == []


class TestBrokenSchemas:
    def _violated(self, schema):
        return {violation.invariant for violation in check_schema(schema)}

    def test_dangling_supertype_detected(self):
        schema = load("university")
        schema.get("Person").add_supertype("Ghost")
        assert "dangling-types" in self._violated(schema)

    def test_unpaired_relationship_detected(self):
        schema = load("university")
        schema.get("Person").add_relationship(
            RelationshipEnd(
                "solo", NamedType("Department"), "Department", "missing"
            )
        )
        assert "inverse-pairing" in self._violated(schema)

    def test_duplicate_extent_detected(self):
        schema = Schema("dup")
        first = InterfaceDef("A")
        second = InterfaceDef("B")
        schema.add_interface(first)
        schema.add_interface(second)
        first.set_extent("things")
        second.set_extent("things")
        assert "extent-unique" in self._violated(schema)

    def test_unknown_key_attribute_detected(self):
        schema = load("university")
        schema.get("Person").add_key(("no_such_attribute",))
        assert "keys-resolve" in self._violated(schema)

    def test_isa_cycle_detected(self):
        schema = Schema("cycle")
        schema.add_interface(InterfaceDef("A", supertypes=["B"]))
        schema.add_interface(InterfaceDef("B", supertypes=["A"]))
        assert "isa-acyclic" in self._violated(schema)

    def test_violations_identify_the_invariant(self):
        schema = load("university")
        schema.get("Person").add_key(("no_such_attribute",))
        violations = check_schema(schema, names=["keys-resolve"])
        assert violations
        assert all(v.invariant == "keys-resolve" for v in violations)
        assert "no_such_attribute" in str(violations[0])

    def test_tier_filter_skips_expensive_checks(self):
        schema = load("university")
        cheap_only = check_schema(schema, tiers=(TIER_CHEAP,))
        assert cheap_only == []


class TestIndexDifferentials:
    def test_stale_cache_is_reported(self):
        schema = load("university")
        schema.subtypes("Person")  # prime the index
        # Mutate behind the index's back: the differential invariants
        # must notice that indexed answers diverge from the full scans.
        new = InterfaceDef("Imposter", supertypes=["Person"])
        schema.interfaces[new.name] = new
        violated = {violation.invariant for violation in check_schema(schema)}
        assert "index-generalization-vs-scan" in violated


class TestDifferentialSampling:
    """Past _DIFFERENTIAL_SAMPLE types the per-type index differentials
    probe a deterministic stride sample -- exhaustive probing calls an
    O(types) scan per type, which the large fuzz profile cannot afford.
    """

    def test_small_schemas_are_swept_exhaustively(self):
        from repro.verify.invariants import _sampled_type_names

        schema = load("university")
        assert _sampled_type_names(schema) == schema.type_names()

    def test_large_schemas_sample_boundedly_and_deterministically(self):
        from repro.verify.invariants import (
            DIFFERENTIAL_STRIDE_DEFAULT,
            _sampled_type_names,
        )

        schema = generate_schema(WorkloadSpec(types=1_000, seed=1))
        sample = _sampled_type_names(schema)
        assert len(sample) <= DIFFERENTIAL_STRIDE_DEFAULT
        assert sample == _sampled_type_names(schema)
        assert set(sample) <= set(schema.type_names())

    def test_successive_generations_rotate_the_sample(self):
        from repro.verify.invariants import _sampled_type_names

        schema = generate_schema(WorkloadSpec(types=1_000, seed=1))
        seen: set[str] = set(_sampled_type_names(schema))
        stride = -(-len(schema.type_names()) // 256)
        for _ in range(stride - 1):
            schema.touch()
            seen.update(_sampled_type_names(schema))
        # One sweep per generation residue covers every declared type.
        assert seen == set(schema.type_names())

    def test_sampled_differential_still_detects_stale_caches(self):
        from repro.verify.invariants import _sampled_type_names

        schema = generate_schema(WorkloadSpec(types=1_000, seed=1))
        # Divergence planted on a type the current sample will probe.
        victim = _sampled_type_names(schema)[0]
        schema.subtypes(victim)  # prime the indexed answer
        new = InterfaceDef("Imposter", supertypes=[victim])
        schema.interfaces[new.name] = new
        violated = {v.invariant for v in check_schema(schema)}
        assert "index-generalization-vs-scan" in violated


class TestWorkspaceInvariants:
    def test_corrupted_undo_closures_detected(self):
        workspace = Workspace(load("university"))
        entry = workspace.apply(parse_operation("add_type_definition(Thing)"))
        entry.undos.clear()
        violated = {v.invariant for v in check_workspace(workspace)}
        assert "history-shape" in violated

    def test_broken_undo_closure_detected(self):
        workspace = Workspace(load("university"))
        entry = workspace.apply(
            parse_operation("add_attribute(Person, string(10), nick)")
        )
        entry.undos[0] = lambda: None
        violated = {v.invariant for v in check_workspace(workspace)}
        assert "undo-redo-identity" in violated

    def test_tampered_log_breaks_replay(self):
        workspace = Workspace(load("university"))
        workspace.apply(parse_operation("add_type_definition(Thing)"))
        workspace.apply(parse_operation("add_attribute(Thing, long, n)"))
        dropped = workspace.log.pop(0)
        # keep the schema as-is: the log no longer explains it
        violated = {v.invariant for v in check_workspace(workspace)}
        assert "log-replay" in violated
        assert dropped.requested.op_name == "add_type_definition"

    def test_mutated_attribute_breaks_nothing_when_logged(self):
        workspace = Workspace(load("university"))
        workspace.apply(
            parse_operation(
                "modify_attribute_type(Person, name, string(40), string(99))"
            )
        )
        assert check_workspace(workspace) == []
