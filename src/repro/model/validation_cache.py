"""Incremental structural validation.

The paper's interactive tool validates the custom schema after every
single modification operation (Section 3, Figure 1).  The reference
implementation, :func:`repro.model.validation.validate_schema`, re-runs
all nine structural rules over the whole schema on each call — O(schema)
per operation, O(schema · ops) per session.  :class:`ValidationCache`
makes per-op validation O(dirty set): it keeps the issues of every
interface (for the five per-interface rules) and of every link-graph
component (for the three cycle rules and the multi-root warning), and
after each batch of mutations re-checks only what the batch could have
changed.

Dirty-set derivation
--------------------

Mutations reach the cache through one channel: the schema's mutation
spine.  The :class:`~repro.model.mutation.DirtyJournal` is a spine
subscriber that folds every emitted
:class:`~repro.model.mutation.MutationRecord` into its dirty set —
interface-level mutator records carry the owner name plus the
:class:`~repro.model.mutation.Aspect` members they changed, membership
records mark added/removed names, and operations additionally declare
their scope via :meth:`Schema.note_validation_scope` (a ``scope``
record on the same spine).

From the journal the cache closes over the rule scopes declared in
:data:`repro.model.validation.RULE_SCOPES`:

1. seeds = touched names (aspects intersecting some rule's scope)
   plus every added/removed name;
2. inheritance closure: seeds touched in an aspect of
   :data:`~repro.model.validation.DESCEND_ASPECTS` spread to their
   transitive subtypes (inherited attributes feed key and order-by
   resolution), walked over the index's ``subtype_map`` — whose keys
   include *dangling* supertype names, so adding or removing a type
   reaches the subtrees that (un)resolved under it;
3. reference closure: interfaces that referenced any closed-over name at
   the previous validation are re-checked too (inverse declarations,
   order-by targets, and dangling references all read other interfaces).

Everything outside the closure provably yields the same issues as
before, so its cached tuples are reused verbatim.

Cycle and component rules
-------------------------

A cycle rule reports at most one issue: the first cycle found by a DFS
over interfaces in declaration order.  When the cached result is *empty*
the graph was acyclic, edges only change at touched/removed owners, and
a new cycle must run through a changed edge — so the cache re-runs the
DFS only over the weak components containing the seeds (directed
reachability never crosses a weak-component boundary, hence visiting
those nodes in declaration order reproduces the full scan's answer
exactly).  When the cached result is *non-empty* the rule is recomputed
in full — a transient state the interactive loop leaves immediately.
The multi-root warning is cached per weak component of the
generalization graph; touched components (plus members of cached
entries they split from or merge into) are recomputed and the report is
re-sorted by first-member declaration order, matching the full scan.

The full scan stays the byte-for-byte reference: the
``incremental-vs-full-validation`` invariant in
:mod:`repro.verify.invariants` asserts list equality after every fuzzer
step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.model.errors import ValidationError
from repro.model.mutation import Aspect
from repro.model.validation import (
    DESCEND_ASPECTS,
    INTERFACE_RULES,
    SEVERITY_ERROR,
    VALIDATION_ASPECTS,
    Issue,
    _find_cycle,
    component_roots,
    instance_of_cycle_issue,
    isa_cycle_issue,
    isa_successors,
    multi_root_issue,
    part_of_cycle_issue,
)

if TYPE_CHECKING:
    from repro.model.schema import Schema

#: Issue tuples of one interface, slot-aligned with ``INTERFACE_RULES``.
_Slots = tuple[tuple[Issue, ...], ...]

#: One cached multi-root finding: the component's members and its issue.
_ComponentEntry = tuple[frozenset[str], Issue]


class _CycleFamily:
    """Static description of one cycle rule (graph + issue builder)."""

    __slots__ = ("name", "aspect", "successors", "issue", "adjacency")

    def __init__(
        self,
        name: str,
        aspect: str,
        successors: Callable[["Schema"], Callable[[str], Iterable[str]]],
        issue: Callable[[list[str]], Issue],
        adjacency: Callable[["Schema", str], Iterable[str]],
    ) -> None:
        self.name = name
        self.aspect = aspect
        self.successors = successors
        self.issue = issue
        self.adjacency = adjacency


def _isa_adjacency(schema: "Schema", name: str) -> Iterable[str]:
    """Undirected neighbours of *name* in the resolved ISA graph."""
    interfaces = schema.interfaces
    for supertype in interfaces[name].supertypes:
        if supertype in interfaces:
            yield supertype
    yield from schema.index.subtype_map().get(name, ())


def _part_of_adjacency(schema: "Schema", name: str) -> Iterable[str]:
    """Undirected neighbours in the aggregation graph."""
    index = schema.index
    yield from index.parts_map().get(name, ())
    yield from index.wholes_map().get(name, ())


def _instance_of_adjacency(schema: "Schema", name: str) -> Iterable[str]:
    """Undirected neighbours in the instance-of graph."""
    index = schema.index
    yield from index.instance_map().get(name, ())
    yield from index.generic_map().get(name, ())


def _part_of_successors_fast(
    schema: "Schema",
) -> Callable[[str], Iterable[str]]:
    """Index-backed twin of ``validation.part_of_successors``.

    The reference spec builds its successor map from the
    ``scan_link_edges`` full scan (it must stay cache-independent); the
    cache is *allowed* to lean on :class:`SchemaIndex`, whose
    ``part_of_edges`` caches the identical edge list, so the two
    builders agree entry for entry.
    """
    edges: dict[str, list[str]] = {}
    for whole, part, _ in schema.part_of_edges():
        edges.setdefault(whole, []).append(part)
    return lambda n: edges.get(n, ())


def _instance_of_successors_fast(
    schema: "Schema",
) -> Callable[[str], Iterable[str]]:
    """Index-backed twin of ``validation.instance_of_successors``."""
    edges: dict[str, list[str]] = {}
    for generic, instance, _ in schema.instance_of_edges():
        edges.setdefault(generic, []).append(instance)
    return lambda n: edges.get(n, ())


_CYCLE_FAMILIES: tuple[_CycleFamily, ...] = (
    _CycleFamily(
        "isa", Aspect.ISA, isa_successors, isa_cycle_issue, _isa_adjacency
    ),
    _CycleFamily(
        "part-of",
        Aspect.REL_PART_OF,
        _part_of_successors_fast,
        part_of_cycle_issue,
        _part_of_adjacency,
    ),
    _CycleFamily(
        "instance-of",
        Aspect.REL_INSTANCE_OF,
        _instance_of_successors_fast,
        instance_of_cycle_issue,
        _instance_of_adjacency,
    ),
)


class ValidationCache:
    """Per-interface / per-component issue cache over one schema.

    Create via :attr:`Schema.validation` (lazily, one per schema).
    :meth:`validate` returns exactly what
    :func:`~repro.model.validation.validate_schema` would, re-checking
    only the dirty set accumulated in the schema's journal since the
    previous call.
    """

    __slots__ = (
        "_schema",
        "_stamp",
        "_interface_issues",
        "_refs_of",
        "_referencers",
        "_cycle_issues",
        "_components",
        "_assembled",
        "clean_hits",
        "full_validations",
        "incremental_validations",
        "interfaces_revalidated",
        "interfaces_reused",
    )

    def __init__(self, schema: "Schema") -> None:
        self._schema = schema
        #: Generation at the last (re)validation; ``None`` = never ran.
        self._stamp: int | None = None
        self._interface_issues: dict[str, _Slots] = {}
        #: Names each interface referenced at its last revalidation,
        #: and the reverse map; both kept incrementally so the
        #: reference closure costs O(dirty), not O(schema).
        self._refs_of: dict[str, frozenset[str]] = {}
        self._referencers: dict[str, set[str]] = {}
        self._cycle_issues: dict[str, tuple[Issue, ...]] = {}
        self._components: list[_ComponentEntry] = []
        self._assembled: list[Issue] = []
        # Counters surfaced through Schema.stats().
        self.clean_hits = 0
        self.full_validations = 0
        self.incremental_validations = 0
        self.interfaces_revalidated = 0
        self.interfaces_reused = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def validate(self, raise_on_error: bool = False) -> list[Issue]:
        """All current issues, in the reference scan's order.

        Semantics match :func:`~repro.model.validation.validate_schema`
        exactly, including the :class:`~repro.model.errors.
        ValidationError` raised (and its message) under
        ``raise_on_error``.
        """
        schema = self._schema
        generation = schema.generation
        if self._stamp == generation:
            self.clean_hits += 1
        elif self._stamp is None or schema.journal.full:
            self.full_validations += 1
            self._rebuild_all()
            schema.journal.clear()
            self._assembled = self._assemble()
            self._stamp = generation
        else:
            self.incremental_validations += 1
            self._apply_dirty()
            schema.journal.clear()
            self._assembled = self._assemble()
            self._stamp = generation
        issues = list(self._assembled)
        if raise_on_error:
            errors = [
                issue for issue in issues if issue.severity == SEVERITY_ERROR
            ]
            if errors:
                raise ValidationError(
                    f"schema {schema.name!r} has {len(errors)} structural "
                    "error(s); first: " + str(errors[0]),
                    issues=errors,
                )
        return issues

    def recheck_interfaces(self, names: Iterable[str]) -> Iterator[str]:
        """Differential over the cached per-interface issue slots.

        For each *name*, recompute the ``INTERFACE_RULES`` slots from
        the live interface and compare them with what the cache holds
        (removed names must hold nothing); yield one message per
        mismatch.  Callers fold pending dirt first with
        :meth:`validate`.  This is the O(changed) form of the
        ``incremental-vs-full-validation`` invariant (DESIGN 5i): cost
        is O(names x rules), never O(schema).
        """
        schema = self._schema
        for name in names:
            interface = schema.interfaces.get(name)
            cached = self._interface_issues.get(name)
            if interface is None:
                if cached is not None:
                    yield (
                        f"validation cache still holds issue slots for "
                        f"removed interface {name!r}"
                    )
                continue
            if cached is None:
                yield (
                    f"validation cache has no issue slots for live "
                    f"interface {name!r}"
                )
                continue
            fresh = tuple(
                tuple(rule(schema, interface)) for rule in INTERFACE_RULES
            )
            if fresh != cached:
                for slot, (want, got) in enumerate(zip(fresh, cached)):
                    if want != got:
                        yield (
                            f"cached issues for {name!r} slot {slot} "
                            f"({INTERFACE_RULES[slot].__name__}) are stale: "
                            f"cache {[str(i) for i in got]!r} != fresh "
                            f"{[str(i) for i in want]!r}"
                        )

    def stats(self) -> dict[str, int]:
        """Hit/miss counters (also folded into ``Schema.stats()``)."""
        return {
            "clean_hits": self.clean_hits,
            "full_validations": self.full_validations,
            "incremental_validations": self.incremental_validations,
            "interfaces_revalidated": self.interfaces_revalidated,
            "interfaces_reused": self.interfaces_reused,
        }

    def reset_stats(self) -> None:
        """Zero the counters (benchmarks measure phases separately)."""
        self.clean_hits = 0
        self.full_validations = 0
        self.incremental_validations = 0
        self.interfaces_revalidated = 0
        self.interfaces_reused = 0

    # ------------------------------------------------------------------
    # Full rebuild
    # ------------------------------------------------------------------

    def _rebuild_all(self) -> None:
        schema = self._schema
        self._interface_issues.clear()
        self._refs_of.clear()
        self._referencers.clear()
        for interface in schema:
            self._revalidate_interface(interface.name)
        for family in _CYCLE_FAMILIES:
            cycle = _find_cycle(
                schema.type_names(), family.successors(schema)
            )
            self._cycle_issues[family.name] = (
                (family.issue(cycle),) if cycle is not None else ()
            )
        self._components, _ = self._scan_components(schema.type_names())

    # ------------------------------------------------------------------
    # Incremental update
    # ------------------------------------------------------------------

    def _apply_dirty(self) -> None:
        schema = self._schema
        journal = schema.journal
        interfaces = schema.interfaces

        membership = journal.added | journal.removed
        gone = [
            name
            for name in (membership | set(journal.touched))
            if name not in interfaces
        ]
        touched = {
            name: aspects
            for name, aspects in journal.touched.items()
            if name in interfaces and aspects & VALIDATION_ASPECTS
        }

        # 1. Seeds: touched (in a rule-relevant aspect) + membership.
        seeds = set(touched) | (membership & interfaces.keys())

        # 2. Inheritance closure over the new subtype graph.  Walk from
        # membership changes too: subtype_map keys include dangling
        # names, so subtrees that (un)resolved under an added/removed
        # supertype are reached through it.
        descend_from = set(membership)
        descend_from.update(
            name
            for name, aspects in touched.items()
            if aspects & DESCEND_ASPECTS
        )
        closed = seeds | self._descendants_of(descend_from)

        # 3. Reference closure (maps reflect the previous validation;
        # interfaces whose own references changed are seeds already).
        dirty = set(closed)
        for name in closed | membership:
            dirty.update(self._referencers.get(name, ()))
        dirty &= interfaces.keys()

        for name in gone:
            self._drop_interface(name)
        for name in dirty:
            self._revalidate_interface(name)
        self.interfaces_revalidated += len(dirty)
        self.interfaces_reused += len(interfaces) - len(dirty)

        for family in _CYCLE_FAMILIES:
            self._update_cycle_family(family, touched, membership, journal)
        self._update_components(touched, membership, journal)

    def _descendants_of(self, roots: set[str]) -> set[str]:
        """Transitive subtypes of *roots* (roots excluded) via the index.

        Uses the index's incrementally maintained compact ISA adjacency,
        so seeding the dirty closure never forces an O(N) subtype-map
        rebuild mid-plan.
        """
        if not roots:
            return set()
        return self._schema.index.descendants_closure(roots)

    # ------------------------------------------------------------------
    # Per-interface slots and the reference maps
    # ------------------------------------------------------------------

    def _revalidate_interface(self, name: str) -> None:
        schema = self._schema
        interface = schema.interfaces[name]
        self._interface_issues[name] = tuple(
            tuple(rule(schema, interface)) for rule in INTERFACE_RULES
        )
        new_refs = frozenset(interface.referenced_type_names())
        old_refs = self._refs_of.get(name, frozenset())
        if new_refs != old_refs:
            for ref in old_refs - new_refs:
                holders = self._referencers.get(ref)
                if holders is not None:
                    holders.discard(name)
                    if not holders:
                        del self._referencers[ref]
            for ref in new_refs - old_refs:
                self._referencers.setdefault(ref, set()).add(name)
            self._refs_of[name] = new_refs

    def _drop_interface(self, name: str) -> None:
        self._interface_issues.pop(name, None)
        for ref in self._refs_of.pop(name, frozenset()):
            holders = self._referencers.get(ref)
            if holders is not None:
                holders.discard(name)
                if not holders:
                    del self._referencers[ref]

    # ------------------------------------------------------------------
    # Cycle rules
    # ------------------------------------------------------------------

    def _update_cycle_family(
        self,
        family: _CycleFamily,
        touched: dict[str, set[str]],
        membership: set[str],
        journal,
    ) -> None:
        schema = self._schema
        seeds = set(membership)
        seeds.update(
            name
            for name, aspects in touched.items()
            if family.aspect in aspects
        )
        cached = self._cycle_issues[family.name]
        if not seeds:
            # Declaration order moved but no edge changed: an acyclic
            # graph stays acyclic, yet *which* cycle the scan reports
            # depends on the order, so a cyclic result is recomputed.
            if journal.order_changed and cached:
                self._recompute_cycle_family(family)
            return
        if cached:
            # A reported cycle may pass far from the touched edges, and
            # fixing it can unmask a different one anywhere; the state
            # is transient (the designer is told to fix it), so pay the
            # full DFS.
            self._recompute_cycle_family(family)
            return
        # Acyclic before: any new cycle runs through a changed edge, and
        # every changed edge has a seed endpoint, so checking the seeds'
        # weak components in declaration order replicates the full scan
        # (directed reachability cannot leave a weak component).
        component = self._weak_component(family, seeds)
        if not component:
            return
        nodes = [name for name in schema.type_names() if name in component]
        cycle = _find_cycle(nodes, family.successors(schema))
        self._cycle_issues[family.name] = (
            (family.issue(cycle),) if cycle is not None else ()
        )

    def _recompute_cycle_family(self, family: _CycleFamily) -> None:
        schema = self._schema
        cycle = _find_cycle(schema.type_names(), family.successors(schema))
        self._cycle_issues[family.name] = (
            (family.issue(cycle),) if cycle is not None else ()
        )

    def _weak_component(
        self, family: _CycleFamily, seeds: set[str]
    ) -> set[str]:
        """Union of the seeds' weak components in the family's graph."""
        schema = self._schema
        interfaces = schema.interfaces
        component: set[str] = set()
        frontier = [name for name in seeds if name in interfaces]
        while frontier:
            current = frontier.pop()
            if current in component:
                continue
            component.add(current)
            frontier.extend(family.adjacency(schema, current))
        return component

    # ------------------------------------------------------------------
    # Multi-root components
    # ------------------------------------------------------------------

    def _update_components(
        self,
        touched: dict[str, set[str]],
        membership: set[str],
        journal,
    ) -> None:
        schema = self._schema
        seeds = set(membership)
        seeds.update(
            name
            for name, aspects in touched.items()
            if Aspect.ISA in aspects
        )
        if not seeds:
            return  # order changes are absorbed by _assemble's sort
        # Members of cached entries a seed belonged to must be re-walked
        # too: an edge removal can strand the rest of a component away
        # from every seed.
        walk_seeds = set(seeds)
        kept: list[_ComponentEntry] = []
        for entry in self._components:
            members, _ = entry
            if members & seeds:
                walk_seeds.update(members)
            else:
                kept.append(entry)
        # A removed interface is no walk start, but unresolving the ISA
        # links under it can re-root its former subtrees; subtype_map
        # keeps dangling names as keys, so start from those children.
        subtype_map = schema.index.subtype_map()
        starts: set[str] = set()
        for name in walk_seeds:
            if name in schema.interfaces:
                starts.add(name)
            else:
                starts.update(subtype_map.get(name, ()))
        fresh, visited = self._scan_components(starts)
        # A merge can absorb an untouched cached component (its members
        # sit inside a freshly walked one, which may even have become
        # single-root); drop every kept entry the walk reached.
        self._components = [
            entry for entry in kept if not entry[0] & visited
        ] + fresh

    def _scan_components(
        self, starts: Iterable[str]
    ) -> tuple[list[_ComponentEntry], set[str]]:
        """Multi-root entries of the ISA components containing *starts*.

        Also returns every member visited, including members of
        components that turned out single-root — the caller must drop
        any cached entry the walk reached.
        """
        schema = self._schema
        entries: list[_ComponentEntry] = []
        seen: set[str] = set()
        for start in starts:
            if start in seen:
                continue
            component: set[str] = set()
            frontier = [start]
            while frontier:
                node = frontier.pop()
                if node in component:
                    continue
                component.add(node)
                frontier.extend(_isa_adjacency(schema, node))
            seen |= component
            if len(component) < 2:
                continue  # no resolved edges: the full scan skips it
            roots = component_roots(schema, component)
            if len(roots) > 1:
                entries.append((frozenset(component), multi_root_issue(roots)))
        return entries, seen

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def _assemble(self) -> list[Issue]:
        """Concatenate cached tuples in the reference scan's order."""
        schema = self._schema
        names = schema.type_names()
        slots = self._interface_issues
        issues: list[Issue] = []
        for slot in (0, 1, 2):  # dangling, inverses, cardinality
            for name in names:
                issues.extend(slots[name][slot])
        for family in _CYCLE_FAMILIES:
            issues.extend(self._cycle_issues[family.name])
        for slot in (3, 4):  # keys, order-by
            for name in names:
                issues.extend(slots[name][slot])
        if self._components:
            order = schema.index.declaration_order()
            ranked = sorted(
                self._components,
                key=lambda entry: min(order[name] for name in entry[0]),
            )
            issues.extend(issue for _, issue in ranked)
        return issues
