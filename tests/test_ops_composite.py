"""Tests for composite (macro) modification operations."""

import pytest

from repro.model.fingerprint import schema_fingerprint
from repro.odl.parser import parse_schema
from repro.ops.base import ConstraintViolation
from repro.ops.composite import (
    ExtractSupertype,
    IntroduceAbstractSupertype,
    SplitBySubtyping,
)
from repro.ops.language import parse_composite
from repro.odl.lexer import OdlSyntaxError
from repro.repository.workspace import Workspace


@pytest.fixture
def multi_root():
    schema = parse_schema(
        """
        interface Car {
            attribute string(20) vin;
            attribute string(20) make;
        };
        interface Truck {
            attribute string(20) vin;
            attribute short axles;
        };
        interface Semi : Truck {};
        """,
        name="vehicles",
    )
    schema.validate()
    return schema


class TestIntroduceAbstractSupertype:
    def test_creates_supertype_and_links(self, multi_root):
        workspace = Workspace(multi_root)
        composite = IntroduceAbstractSupertype("Vehicle", ("Car", "Truck"))
        entries = workspace.apply_composite(composite)
        schema = workspace.schema
        assert "Vehicle" in schema
        assert "Vehicle" in schema.get("Car").supertypes
        assert "Vehicle" in schema.get("Truck").supertypes
        assert len(entries) == len(composite.expand_plan(multi_root))
        schema.validate()

    def test_lifts_common_attributes(self, multi_root):
        workspace = Workspace(multi_root)
        workspace.apply_composite(
            IntroduceAbstractSupertype("Vehicle", ("Car", "Truck"))
        )
        schema = workspace.schema
        # vin is identical in both subtypes: lifted once, deleted twice.
        assert "vin" in schema.get("Vehicle").attributes
        assert "vin" not in schema.get("Car").attributes
        assert "vin" not in schema.get("Truck").attributes
        # make/axles differ: they stay where they are.
        assert "make" in schema.get("Car").attributes
        assert "axles" in schema.get("Truck").attributes

    def test_nolift_keeps_members_in_place(self, multi_root):
        workspace = Workspace(multi_root)
        workspace.apply_composite(
            IntroduceAbstractSupertype(
                "Vehicle", ("Car", "Truck"), lift_common=False
            )
        )
        assert "vin" in workspace.schema.get("Car").attributes
        assert workspace.schema.get("Vehicle").attributes == {}

    def test_resolves_multi_root_warning(self):
        schema = parse_schema(
            "interface A {}; interface B {}; interface C : A, B {};",
            name="s",
        )
        workspace = Workspace(schema)
        workspace.apply_composite(
            IntroduceAbstractSupertype("Root", ("A", "B"), lift_common=False)
        )
        from repro.model.validation import validate_schema

        rules = {issue.rule for issue in validate_schema(workspace.schema)}
        assert "multi-root-hierarchy" not in rules

    def test_needs_two_subtypes(self, multi_root):
        with pytest.raises(ConstraintViolation):
            IntroduceAbstractSupertype("Vehicle", ("Car",)).expand_plan(
                multi_root
            )

    def test_existing_name_rejected(self, multi_root):
        with pytest.raises(ConstraintViolation):
            IntroduceAbstractSupertype("Car", ("Truck", "Semi")).expand_plan(
                multi_root
            )

    def test_failure_rolls_back_everything(self, multi_root):
        workspace = Workspace(multi_root)
        before = schema_fingerprint(workspace.schema)
        # Semi is a subtype of Truck: adding Truck ISA Vehicle is fine,
        # but a cycle Vehicle ISA Semi trips on the primitive level.
        from repro.ops.composite import CompositeOperation
        from repro.ops.type_property_ops import AddSupertype
        from repro.ops.type_ops import AddTypeDefinition

        class Exploding(CompositeOperation):
            composite_name = "exploding"

            def expand_plan(self, schema, context=None):
                return [
                    AddTypeDefinition("Vehicle"),
                    AddSupertype("Truck", "Vehicle"),
                    AddSupertype("Vehicle", "Semi"),  # cycle: rejected
                ]

            def describe(self):
                return "exploding composite"

        with pytest.raises(ConstraintViolation):
            workspace.apply_composite(Exploding())
        assert schema_fingerprint(workspace.schema) == before
        assert workspace.log == []


class TestExtractSupertype:
    def test_moves_members_up(self, multi_root):
        workspace = Workspace(multi_root)
        workspace.apply_composite(
            IntroduceAbstractSupertype(
                "Vehicle", ("Car", "Truck"), lift_common=False
            )
        )
        workspace.apply_composite(
            ExtractSupertype("Car", "Vehicle", attribute_names=("vin",))
        )
        assert "vin" in workspace.schema.get("Vehicle").attributes
        assert "vin" not in workspace.schema.get("Car").attributes

    def test_requires_isa_path(self, multi_root):
        with pytest.raises(ConstraintViolation):
            ExtractSupertype(
                "Car", "Truck", attribute_names=("vin",)
            ).expand_plan(multi_root)

    def test_requires_something_to_move(self, multi_root):
        workspace = Workspace(multi_root)
        workspace.apply_composite(
            IntroduceAbstractSupertype(
                "Vehicle", ("Car", "Truck"), lift_common=False
            )
        )
        with pytest.raises(ConstraintViolation):
            ExtractSupertype("Car", "Vehicle").expand_plan(workspace.schema)


class TestSplitBySubtyping:
    def test_pushes_members_down(self, multi_root):
        workspace = Workspace(multi_root)
        workspace.apply_composite(
            SplitBySubtyping("Car", "Electric_Car", attribute_names=("make",))
        )
        schema = workspace.schema
        assert "Car" in schema.get("Electric_Car").supertypes
        assert "make" in schema.get("Electric_Car").attributes
        assert "make" not in schema.get("Car").attributes
        schema.validate()

    def test_existing_subtype_name_rejected(self, multi_root):
        with pytest.raises(ConstraintViolation):
            SplitBySubtyping(
                "Car", "Truck", attribute_names=("make",)
            ).expand_plan(multi_root)

    def test_unknown_attribute_rejected(self, multi_root):
        from repro.model.errors import UnknownPropertyError

        with pytest.raises(UnknownPropertyError):
            SplitBySubtyping(
                "Car", "Sports_Car", attribute_names=("ghost",)
            ).expand_plan(multi_root)


class TestCompositeLanguage:
    def test_parse_introduce(self):
        composite = parse_composite(
            "introduce_abstract_supertype(Vehicle, (Car, Truck))"
        )
        assert composite == IntroduceAbstractSupertype(
            "Vehicle", ("Car", "Truck"), True
        )

    def test_parse_introduce_nolift(self):
        composite = parse_composite(
            "introduce_abstract_supertype(Vehicle, (Car, Truck), nolift)"
        )
        assert composite.lift_common is False

    def test_parse_extract(self):
        composite = parse_composite(
            "extract_supertype(Car, Vehicle, (vin), (honk))"
        )
        assert composite == ExtractSupertype(
            "Car", "Vehicle", ("vin",), ("honk",)
        )

    def test_parse_split(self):
        composite = parse_composite(
            "split_by_subtyping(Car, Electric_Car, (battery))"
        )
        assert composite == SplitBySubtyping(
            "Car", "Electric_Car", ("battery",), ()
        )

    def test_unknown_composite(self):
        with pytest.raises(OdlSyntaxError):
            parse_composite("merge_interfaces(A, B)")

    def test_bad_flag(self):
        with pytest.raises(OdlSyntaxError):
            parse_composite(
                "introduce_abstract_supertype(V, (A, B), maybe)"
            )

    def test_describe(self):
        composite = IntroduceAbstractSupertype("V", ("A", "B"))
        assert "abstract supertype" in composite.describe()
