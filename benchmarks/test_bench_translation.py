"""Model translations (Section 5): relational DDL and ER export.

"Our approach is not dependent on a DBMS or even a data model" -- the
bench translates the business-objects schema to both targets and reports
the resulting sizes.
"""

from repro.catalog import business_schema
from repro.translate.er import to_er
from repro.translate.relational import to_relational

SCHEMA = business_schema()


def test_bench_relational_translation(benchmark, report):
    relational = benchmark(to_relational, SCHEMA)
    fk_count = sum(len(t.foreign_keys) for t in relational.tables)
    report(
        "translation_relational",
        f"{len(SCHEMA)} object types -> {len(relational.tables)} tables, "
        f"{fk_count} foreign keys\n\n" + relational.render(),
    )
    assert len(relational.tables) >= len(SCHEMA)


def test_bench_er_translation(benchmark, report):
    model = benchmark(to_er, SCHEMA)
    report(
        "translation_er",
        f"{len(SCHEMA)} object types -> {len(model.entities)} entities, "
        f"{len(model.relationships)} relationships\n\n" + model.render(),
    )
    assert len(model.entities) == len(SCHEMA)
    # Every relationship pair appears exactly once.
    assert len(model.relationships) == 7
