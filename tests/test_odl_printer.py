"""Unit tests for the ODL pretty-printer (repro.odl.printer)."""

import pytest

from repro.catalog import SCHEMA_BUILDERS
from repro.model.fingerprint import schemas_equal
from repro.odl.parser import parse_schema
from repro.odl.printer import print_interface, print_schema


class TestRendering:
    def test_empty_interface(self):
        schema = parse_schema("interface A {};", name="s")
        assert print_interface(schema.get("A")) == "interface A {\n};"

    def test_supertypes_in_header(self):
        schema = parse_schema("interface A : B, C {};", name="s")
        assert print_interface(schema.get("A")).startswith("interface A : B, C {")

    def test_extent_and_keys(self):
        text = (
            "interface A { extent as_; keys (id), (x, y); "
            "attribute long id; attribute long x; attribute long y; };"
        )
        rendered = print_interface(parse_schema(text, name="s").get("A"))
        assert "extent as_;" in rendered
        assert "keys (id), (x, y);" in rendered

    def test_relationship_with_order_by(self):
        text = (
            "interface A { relationship set<B> bs inverse B::a "
            "order_by (name); };"
        )
        rendered = print_interface(parse_schema(text, name="s").get("A"))
        assert (
            "relationship set<B> bs inverse B::a order_by (name);" in rendered
        )

    def test_operation_rendering(self):
        text = "interface A { float f(in short x) raises (E); };"
        rendered = print_interface(parse_schema(text, name="s").get("A"))
        assert "float f(in short x) raises (E);" in rendered

    def test_empty_schema_prints_empty(self):
        assert print_schema(parse_schema("", name="s")) == ""


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(SCHEMA_BUILDERS))
    def test_catalog_round_trip(self, name):
        schema = SCHEMA_BUILDERS[name]()
        reparsed = parse_schema(print_schema(schema), name=schema.name)
        assert schemas_equal(schema, reparsed)

    def test_print_is_stable(self, university):
        once = print_schema(university)
        twice = print_schema(parse_schema(once, name="u"))
        assert once == twice
