"""Simplification scenario: a correspondence-only school (Section 3.4).

"Consider another situation where courses are offered by correspondence
only.  In this case, the course offering concept schema is simplified by
removing the time slot entity and room attribute."

The example shows the knowledge component at work: the impact report is
previewed *before* each destructive operation (what will cascade, which
other concept schemas are touched, what the cautionary statements say),
and the same deletion is attempted with propagation disabled to show why
the rules exist.

Run with::

    python examples/correspondence_school.py
"""

from repro.catalog import university_schema
from repro.designer import DesignSession
from repro.ops import ConstraintViolation, parse_operation
from repro.repository import SchemaRepository


def main() -> None:
    session = DesignSession(
        SchemaRepository(
            university_schema(), custom_name="correspondence_university"
        )
    )
    session.select("ww:Course_Offering")

    print("=== previewing the impact before committing ===")
    print(session.preview("delete_type_definition(Time_Slot)"))

    print()
    print("=== what happens without propagation rules ===")
    try:
        session.repository.apply(
            parse_operation("delete_type_definition(Time_Slot)"),
            propagate=False,
        )
    except ConstraintViolation as exc:
        print(f"  rejected: {exc}")

    print()
    print("=== applying the simplification (with propagation) ===")
    for text in (
        "delete_attribute(Course_Offering, room)",
        "delete_type_definition(Time_Slot)",
    ):
        applied = session.modify(text)
        print(f"  [{'ok ' if applied else 'REJ'}] {text}")

    print()
    print("=== feedback the designer received ===")
    print(session.feedback.render())

    deliverables = session.finish()
    print()
    print("=== the simplified Course Offering ===")
    print(session.show_odl("Course_Offering"))

    print()
    print("=== mapping summary ===")
    print(deliverables.mapping.render())


if __name__ == "__main__":
    main()
