"""Deep-hierarchy regressions (PR 6, scale-exposed bugs).

The ancestry linearisation (``Schema._linearised_ancestry``) and the
validation cycle walk (``repro.model.validation._find_cycle``) were
recursive; a supertype chain deeper than the interpreter stack
(~1 000 frames) crashed both with ``RecursionError``.  Both walks are
now iterative -- these tests pin that with a 5 000-deep chain, well past
any default recursion limit, and cover the matching ``isa_chain`` /
``hub_fanout`` shapes of the workload generator.
"""

from repro.model.attributes import Attribute
from repro.model.interface import InterfaceDef
from repro.model.schema import Schema
from repro.model.types import scalar
from repro.workload.generator import WorkloadSpec, generate_schema

DEPTH = 5_000


def _chain_schema(depth: int) -> Schema:
    schema = Schema("deep_chain")
    for level in range(depth + 1):
        interface = InterfaceDef(f"T{level}")
        if level == 0:
            interface.add_attribute(Attribute("root_attr", scalar("long")))
        else:
            interface.add_supertype(f"T{level - 1}")
        schema.add_interface(interface)
    return schema


class TestDeepSupertypeChain:
    def test_ancestry_walks_are_iterative(self):
        schema = _chain_schema(DEPTH)
        leaf = f"T{DEPTH}"
        ancestors = schema.ancestors(leaf)
        assert len(ancestors) == DEPTH
        assert "T0" in ancestors
        # Inheritance resolution linearises the full chain.
        assert "root_attr" in schema.inherited_attributes(leaf)

    def test_validation_cycle_walk_is_iterative(self):
        schema = _chain_schema(DEPTH)
        assert schema.validation.validate() == []

    def test_descendants_cover_the_full_chain(self):
        schema = _chain_schema(DEPTH)
        assert len(schema.descendants("T0")) == DEPTH


class TestGeneratorDeepShapes:
    def test_isa_chain_spec_builds_a_deep_chain(self):
        spec = WorkloadSpec(
            types=120, isa_chain=120, isa_fraction=0.2, seed=5,
            part_of_chain=0, instance_of_chain=0,
        )
        schema = generate_schema(spec)
        assert len(schema.ancestors("Type119")) >= 119

    def test_hub_fanout_spec_builds_a_wide_wheel(self):
        spec = WorkloadSpec(
            types=80, hub_fanout=60, isa_fraction=0.0, seed=5,
            part_of_chain=0, instance_of_chain=0,
        )
        schema = generate_schema(spec)
        hub_ends = schema.get("Type000").relationships
        assert sum(1 for name in hub_ends if name.startswith("spoke")) == 60

    def test_deep_chain_spec_validates_clean(self):
        spec = WorkloadSpec(
            types=1_200, isa_chain=1_200, seed=9,
            part_of_chain=10, instance_of_chain=5,
        )
        schema = generate_schema(spec)
        assert schema.validation.validate() == []
