"""Tests for the differential fuzzer and shrinker (repro.verify)."""

import pytest

from repro.catalog import load
from repro.model.fingerprint import schemas_equal
from repro.ops.base import FREE_CONTEXT
from repro.ops.type_ops import AddTypeDefinition
from repro.repository.workspace import Workspace
from repro.verify.fuzzer import FuzzStep, fuzz, replay
from repro.verify.shrinker import emit_pytest, shrink
from repro.workload.generator import WorkloadSpec, generate_schema


class TestCleanFuzzing:
    @pytest.mark.parametrize("name", ["university", "company"])
    def test_catalog_run_is_clean(self, name):
        report = fuzz(load(name), seed=7, steps=60)
        assert report.ok, report.failure.render()
        assert report.accepted > 0

    def test_generated_run_is_clean(self):
        schema = generate_schema(WorkloadSpec(types=10, seed=3))
        report = fuzz(schema, seed=3, steps=60)
        assert report.ok, report.failure.render()

    def test_rejections_are_counted_not_fatal(self):
        # enough steps that at least one generated operation is
        # inadmissible in the current state
        report = fuzz(load("sacchdb"), seed=1, steps=120)
        assert report.ok, report.failure.render()
        assert report.rejected > 0

    def test_trace_is_concrete_and_replayable(self):
        reference = load("lumber_yard")
        report = fuzz(reference, seed=5, steps=50)
        assert report.ok
        assert len(report.trace) == 50
        assert replay(load("lumber_yard"), report.trace) is None


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = fuzz(load("company"), seed=11, steps=40)
        second = fuzz(load("company"), seed=11, steps=40)
        assert [s.describe() for s in first.trace] == [
            s.describe() for s in second.trace
        ]
        assert (first.accepted, first.rejected) == (
            second.accepted, second.rejected
        )

    def test_different_seed_different_trace(self):
        first = fuzz(load("company"), seed=11, steps=40)
        second = fuzz(load("company"), seed=12, steps=40)
        assert [s.describe() for s in first.trace] != [
            s.describe() for s in second.trace
        ]


class TestHarnessCatchesMutations:
    """Mutation smoke-check: break an operation on purpose and prove the
    fuzzer finds it, the shrinker reduces it to a handful of steps, and
    the emitted reproducer is a valid failing test."""

    @pytest.fixture
    def broken_add_type_undo(self, monkeypatch):
        """AddTypeDefinition whose undo forgets to remove the type."""
        original = AddTypeDefinition.apply

        def broken(self, schema, context=FREE_CONTEXT):
            original(self, schema, context)
            return lambda: None

        monkeypatch.setattr(AddTypeDefinition, "apply", broken)

    def test_fuzzer_detects_broken_undo(self, broken_add_type_undo):
        report = fuzz(load("university"), seed=7, steps=60)
        assert not report.ok
        violated = {v.invariant for v in report.failure.violations}
        # fork-rewind-differential round-trips undo_to/redo internally,
        # so it is a legitimate (and often the first) detector here.
        assert violated & {
            "undo-identity", "undo-redo-identity", "log-replay",
            "fork-rewind-differential",
        }

    def test_shrinker_produces_tiny_reproducer(self, broken_add_type_undo):
        report = fuzz(load("university"), seed=7, steps=60)
        assert not report.ok
        result = shrink(load("university"), report.trace, report.failure)
        assert len(result.steps) <= 5, result.summary()
        # and the shrunk trace still reproduces on its own
        wanted = {v.invariant for v in result.failure.violations}
        assert replay(
            load("university"), result.steps,
            check_every=1, invariant_filter=wanted,
        ) is not None

    def test_emitted_reproducer_is_a_failing_test(
        self, broken_add_type_undo
    ):
        report = fuzz(load("university"), seed=7, steps=60)
        result = shrink(load("university"), report.trace, report.failure)
        source = emit_pytest(
            "load('university')", result.steps, result.failure,
            test_name="test_generated",
        )
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        with pytest.raises(AssertionError):
            namespace["test_generated"]()

    def test_emitted_reproducer_passes_once_fixed(self):
        # Same trace as above, but with the real (unbroken) operation:
        # the reproducer must pass, i.e. it is checked-in-able.
        report = fuzz(load("university"), seed=7, steps=60)
        assert report.ok
        steps = report.trace[:5]
        source = emit_pytest(
            "load('university')",
            steps,
            # fabricate a failure record just for the header comment
            type(
                "F", (), {"violations": []}
            )(),
            test_name="test_generated",
        )
        namespace: dict = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        namespace["test_generated"]()


class TestReplaySemantics:
    def test_undo_redo_reset_steps_execute(self):
        reference = load("university")
        trace = [
            FuzzStep("apply", operation=AddTypeDefinition("Alpha")),
            FuzzStep("apply", operation=AddTypeDefinition("Beta")),
            FuzzStep("undo"),
            FuzzStep("redo"),
            FuzzStep("undo"),
            FuzzStep("undo"),
            FuzzStep("reset"),
        ]
        assert replay(reference, trace) is None

    def test_subsequence_of_a_trace_is_a_valid_trace(self):
        # The shrinker's soundness argument: removing steps can only
        # turn later applies into rejections, never into crashes.
        reference = load("emsl_software")
        report = fuzz(reference, seed=2, steps=40)
        assert report.ok
        thinned = report.trace[::3]
        assert replay(load("emsl_software"), thinned) is None


class TestLargeProfile:
    """The large-schema profile: sparse invariant cadence + subjects."""

    def test_cheap_every_spaces_out_the_invariant_sweeps(self):
        dense = fuzz(load("company"), seed=11, steps=40)
        sparse = fuzz(
            load("company"), seed=11, steps=40,
            check_every=20, cheap_every=20,
        )
        assert sparse.ok, sparse.failure.render()
        # Same trace (the cadence only gates checking, not generation),
        # but only 2 sweeps instead of one per step.
        assert [s.describe() for s in sparse.trace] == [
            s.describe() for s in dense.trace
        ]
        assert sparse.checks == 2
        assert dense.checks == 40

    def test_large_subjects_ladder_through_sizes(self):
        from repro.verify.runner import LARGE_SIZES, large_subjects

        pairs = large_subjects(len(LARGE_SIZES))
        assert [subject.name for subject, _ in pairs] == [
            f"large_{size}_{seed}"
            for seed, size in enumerate(LARGE_SIZES)
        ]
        assert [seed for _, seed in pairs] == list(range(len(LARGE_SIZES)))

    def test_large_subject_source_is_self_contained(self):
        # The reproducer header embeds ``subject.source`` verbatim; it
        # must rebuild exactly the schema the campaign fuzzed.
        from repro.verify.runner import large_subject

        subject = large_subject(0, types=60)
        rebuilt = eval(  # noqa: S307 - the expression under test
            subject.source,
            {"generate_schema": generate_schema, "WorkloadSpec": WorkloadSpec},
        )
        assert schemas_equal(rebuilt, subject.build())

    def test_campaign_wires_the_large_profile(self, monkeypatch):
        import io

        from repro.verify import runner

        # Shrink the ladder so the wiring test stays tier-1 fast.
        monkeypatch.setattr(runner, "LARGE_SIZES", (20,))
        out = io.StringIO()
        reports = runner.run_campaign(
            seeds=0, steps=0, large_seeds=1,
            large_steps=10, large_check_every=5, out=out,
        )
        assert [report.subject for report in reports] == ["large_20_0"]
        assert all(report.ok for report in reports)
