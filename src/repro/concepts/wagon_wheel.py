"""Wagon wheel concept schemas.

"A wagon wheel concept schema consists of one object type that serves as
the focal point of the wagon wheel and supporting attributes and
relationships that emanate from the focal point. ... Structurally, the
wagon wheel concept schema type, in addition to the focal point, includes
objects that are just one relationship away from the focal point."
(Section 3.3.1)

At least one wagon wheel exists for every object type of a shrink wrap
schema; the wagon wheel carries the focal type's complete interface
definition (its spokes) plus the names of the distance-1 neighbour types
(its rim).  Generalization, aggregation, and instance-of links of
distance one are included as rim links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.base import ConceptKind, ConceptSchema
from repro.model.errors import SchemaError
from repro.model.interface import InterfaceDef, _SnapshotClaim
from repro.model.relationships import RelationshipKind
from repro.model.schema import Schema


@dataclass(frozen=True)
class Spoke:
    """One relationship spoke of the wheel: focal type -> neighbour."""

    path_name: str
    target_type: str
    kind: RelationshipKind
    to_many: bool

    def describe(self) -> str:
        many = "*" if self.to_many else "1"
        return f"--{self.path_name}[{self.kind.value},{many}]--> {self.target_type}"


@dataclass(frozen=True)
class WagonWheel(ConceptSchema):
    """The basic building block of schemas: one focal type + its spokes."""

    focal_interface: InterfaceDef | None = None
    spokes: tuple[Spoke, ...] = field(default_factory=tuple)
    supertype_rim: tuple[str, ...] = field(default_factory=tuple)
    subtype_rim: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", ConceptKind.WAGON_WHEEL)

    @property
    def focal(self) -> str:
        """Name of the focal object type (alias of ``anchor``)."""
        return self.anchor

    def attribute_names(self) -> list[str]:
        """The attribute spokes, in declaration order."""
        if self.focal_interface is None:
            return []
        return list(self.focal_interface.attributes)

    def neighbour_types(self) -> set[str]:
        """Every type exactly one link away from the focal point."""
        neighbours = {spoke.target_type for spoke in self.spokes}
        neighbours.update(self.supertype_rim)
        neighbours.update(self.subtype_rim)
        neighbours.discard(self.focal)
        return neighbours


def extract_wagon_wheel(schema: Schema, focal: str) -> WagonWheel:
    """Extract the wagon wheel concept schema centred on *focal*.

    The wheel includes the focal interface itself and, as rim members,
    every type one relationship link (association, part-of, instance-of,
    or generalization) away.  Inbound links are followed through the
    inverse declarations that pair each relationship's two ends, so the
    wheel is the same whichever end declares the path.
    """
    interface = schema.get(focal)
    spokes = tuple(
        Spoke(end.name, end.target_type, end.kind, end.is_to_many)
        for end in interface.relationships.values()
    )
    supertype_rim = tuple(s for s in interface.supertypes if s in schema)
    subtype_rim = tuple(schema.subtypes(focal))
    members = {focal}
    members.update(spoke.target_type for spoke in spokes)
    members.update(supertype_rim)
    members.update(subtype_rim)
    members &= set(schema.type_names())
    # The wheel shares the live interface copy-on-write: a snapshot
    # claim swaps in a private copy the moment the schema mutates the
    # focal type, so extracting all N wheels costs no interface copies.
    wheel = WagonWheel(
        anchor=focal,
        members=frozenset(members),
        focal_interface=interface,
        spokes=spokes,
        supertype_rim=supertype_rim,
        subtype_rim=subtype_rim,
    )
    interface.register_claim(_SnapshotClaim(wheel, "focal_interface"))
    return wheel


def extract_wagon_wheel_view(
    schema: Schema,
    focal: str,
    view_name: str,
    spoke_paths: tuple[str, ...] | None = None,
    attribute_names: tuple[str, ...] | None = None,
) -> WagonWheel:
    """Extract an additional, narrower point of view on *focal*.

    Section 3.3.1 allows several wagon wheels per object type; a view
    keeps only the named relationship spokes and attributes (``None``
    keeps everything of that category).  The view's identifier carries
    its name: ``ww:Course_Offering#scheduling``.
    """
    if not view_name:
        raise SchemaError("a wagon wheel view needs a non-empty name")
    full = extract_wagon_wheel(schema, focal)
    assert full.focal_interface is not None
    # The full wheel shares the live schema interface; the view narrows
    # it destructively below, so it must work on a private copy (the
    # copy is spineless and claim-free -- mutating it emits nowhere).
    interface = full.focal_interface.copy()
    if spoke_paths is not None:
        unknown = set(spoke_paths) - set(interface.relationships)
        if unknown:
            raise SchemaError(
                f"{focal!r} has no relationship(s) "
                f"{', '.join(sorted(unknown))}"
            )
        for path in list(interface.relationships):
            if path not in spoke_paths:
                interface.remove_relationship(path)
    if attribute_names is not None:
        unknown = set(attribute_names) - set(interface.attributes)
        if unknown:
            raise SchemaError(
                f"{focal!r} has no attribute(s) {', '.join(sorted(unknown))}"
            )
        for key in list(interface.keys):
            if not set(key) <= set(attribute_names):
                interface.remove_key(key)
        for attr_name in list(interface.attributes):
            if attr_name not in attribute_names:
                interface.remove_attribute(attr_name)
    spokes = tuple(
        spoke
        for spoke in full.spokes
        if spoke_paths is None or spoke.path_name in spoke_paths
    )
    members = {focal}
    members.update(spoke.target_type for spoke in spokes)
    members.update(full.supertype_rim)
    members.update(full.subtype_rim)
    members &= set(schema.type_names())
    return WagonWheel(
        anchor=focal,
        members=frozenset(members),
        view=view_name,
        focal_interface=interface,
        spokes=spokes,
        supertype_rim=full.supertype_rim,
        subtype_rim=full.subtype_rim,
    )


def extract_all_wagon_wheels(schema: Schema) -> list[WagonWheel]:
    """One wagon wheel per object type, in declaration order.

    This is the initial decomposition; a designer may later create
    additional wheels for different points of view of the same focal type
    (the paper allows several wheels per type).
    """
    return [extract_wagon_wheel(schema, name) for name in schema.type_names()]
