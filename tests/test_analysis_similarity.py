"""Tests for the schema similarity metrics."""

from repro.analysis.similarity import (
    affinity_matrix,
    affinity_report,
    name_affinity,
    schema_affinity,
    type_affinity,
)
from repro.catalog import aatdb_schema, acedb_schema, sacchdb_schema
from repro.odl.parser import parse_schema


class TestBasics:
    def test_identical_schemas_have_affinity_one(self, small):
        assert schema_affinity(small, small.copy()) == 1.0

    def test_disjoint_schemas_have_affinity_zero(self):
        first = parse_schema("interface A {};", name="a")
        second = parse_schema("interface B {};", name="b")
        assert schema_affinity(first, second) == 0.0

    def test_name_affinity_is_jaccard(self):
        first = parse_schema("interface A {}; interface B {};", name="a")
        second = parse_schema("interface B {}; interface C {};", name="b")
        assert name_affinity(first, second) == 1 / 3

    def test_type_affinity_partial(self):
        first = parse_schema(
            "interface A { attribute long x; attribute long y; };", name="a"
        ).get("A")
        second = parse_schema(
            "interface A { attribute long x; };", name="b"
        ).get("A")
        # Attributes: 1/2; relationships, operations, supertypes: empty
        # on both sides count as identical (1.0 each).
        assert type_affinity(first, second) == (0.5 + 1 + 1 + 1) / 4

    def test_report_render(self, small):
        report = affinity_report(small, small.copy())
        rendered = report.render()
        assert "shared types (3)" in rendered
        assert "schema affinity:     1.000" in rendered

    def test_matrix_shape_and_diagonal(self, small):
        matrix = affinity_matrix([small, small.copy()])
        assert matrix[0][0] == 1.0 and matrix[1][1] == 1.0
        assert matrix[0][1] == matrix[1][0]


class TestGenomeFamily:
    """Section 4: the three schemas share most of their structure."""

    def test_family_affinity_is_high(self):
        acedb = acedb_schema()
        aatdb = aatdb_schema()
        sacchdb = sacchdb_schema()
        assert schema_affinity(acedb, aatdb) > 0.7
        assert schema_affinity(acedb, sacchdb) > 0.7
        assert schema_affinity(aatdb, sacchdb) > 0.6

    def test_shared_types_structurally_close(self):
        report = affinity_report(acedb_schema(), aatdb_schema())
        assert report.mean_type_affinity > 0.8

    def test_unrelated_schema_scores_lower(self, university):
        family_score = schema_affinity(acedb_schema(), aatdb_schema())
        outsider_score = schema_affinity(acedb_schema(), university)
        assert outsider_score < family_score
