"""Unit tests for schema decomposition and reconstruction."""

import pytest

from repro.catalog import SCHEMA_BUILDERS
from repro.concepts.base import ConceptKind
from repro.concepts.decompose import decompose, reconstruct
from repro.model.errors import SchemaError
from repro.model.fingerprint import schemas_equal


class TestDecompose:
    def test_one_wagon_wheel_per_type(self, university):
        decomposition = decompose(university)
        assert len(decomposition.wagon_wheels) == len(university)

    def test_hierarchies_detected(self, university):
        decomposition = decompose(university)
        assert [h.root for h in decomposition.generalizations] == ["Person"]
        assert [h.root for h in decomposition.instance_ofs] == ["Course"]
        assert decomposition.aggregations == []

    def test_house_has_aggregation_concept(self, house):
        decomposition = decompose(house)
        assert [h.root for h in decomposition.aggregations] == ["House"]

    def test_by_identifier(self, university):
        decomposition = decompose(university)
        concept = decomposition.by_identifier("gh:Person")
        assert concept.kind is ConceptKind.GENERALIZATION

    def test_by_identifier_unknown(self, university):
        with pytest.raises(SchemaError):
            decompose(university).by_identifier("gh:Ghost")

    def test_of_kind(self, university):
        decomposition = decompose(university)
        wheels = decomposition.of_kind(ConceptKind.WAGON_WHEEL)
        assert len(wheels) == len(university)

    def test_concepts_covering(self, university):
        decomposition = decompose(university)
        covering = {
            c.identifier for c in decomposition.concepts_covering("Student")
        }
        assert "gh:Person" in covering
        assert "ww:Student" in covering
        assert "ww:Course_Offering" in covering  # Student is on its rim

    def test_summary_lists_all(self, university):
        decomposition = decompose(university)
        summary = decomposition.summary()
        for concept in decomposition.all_concepts():
            assert concept.identifier in summary


class TestReconstruct:
    @pytest.mark.parametrize("name", sorted(SCHEMA_BUILDERS))
    def test_union_equals_original(self, name):
        """Section 3.3.1: the union of the initial concept schemas gives
        the original shrink wrap schema."""
        schema = SCHEMA_BUILDERS[name]()
        rebuilt = reconstruct(decompose(schema))
        assert schemas_equal(schema, rebuilt)

    def test_reconstruct_rename(self, small):
        rebuilt = reconstruct(decompose(small), name="renamed")
        assert rebuilt.name == "renamed"
        assert schemas_equal(small, rebuilt)

    def test_reconstruct_valid(self, university):
        reconstruct(decompose(university)).validate()
