"""Concept schema base machinery.

A *concept schema* is "a subset of an application schema that addresses
one particular point of view" (Section 1.2).  Four generic structure
patterns exist (Section 3.3), one per modeling abstraction of the extended
data model:

==================  =============================================
kind                point of view
==================  =============================================
``WAGON_WHEEL``     one object type and everything emanating from it
``GENERALIZATION``  one rooted ISA hierarchy and its inheritance paths
``AGGREGATION``     one rooted part-of explosion
``INSTANCE_OF``     one chain/tree of instance-of links
==================  =============================================

Concept schemas are *value snapshots extracted from* a schema: they name
their member types and carry the structural facts of their point of view.
They do not hold live references into the workspace schema, so a designer
can compare the concept schema as originally extracted against the
current workspace (the knowledge component does exactly that when
reporting interactions among concept schemas).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model.schema import Schema


class ConceptKind(enum.Enum):
    """The four generic concept schema types of Section 3.3."""

    WAGON_WHEEL = "wagon_wheel"
    GENERALIZATION = "generalization"
    AGGREGATION = "aggregation"
    INSTANCE_OF = "instance_of"

    def label(self) -> str:
        """Human-readable label used in reports and the designer UI."""
        return {
            ConceptKind.WAGON_WHEEL: "wagon wheel",
            ConceptKind.GENERALIZATION: "generalization hierarchy",
            ConceptKind.AGGREGATION: "aggregation hierarchy",
            ConceptKind.INSTANCE_OF: "instance-of hierarchy",
        }[self]


@dataclass(frozen=True)
class ConceptSchema:
    """Common shape of every concept schema.

    ``anchor`` is the focal point (wagon wheel) or root (hierarchies);
    ``members`` is the set of object type names participating in this
    point of view.  Subclasses add the structural payload.
    """

    anchor: str
    members: frozenset[str] = field(default_factory=frozenset)
    #: Optional view name: "different points of view of an object type
    #: [may] result in more than one concept schema having the same
    #: focal point" (Section 3.3.1). The initial decomposition uses "".
    view: str = ""

    #: Overridden by each subclass.
    kind: ConceptKind = field(init=False, repr=False)

    @property
    def identifier(self) -> str:
        """Stable id used by the repository, e.g. ``ww:Course_Offering``.

        Additional points of view carry their view name after a ``#``:
        ``ww:Course_Offering#scheduling``.
        """
        prefix = {
            ConceptKind.WAGON_WHEEL: "ww",
            ConceptKind.GENERALIZATION: "gh",
            ConceptKind.AGGREGATION: "ah",
            ConceptKind.INSTANCE_OF: "ih",
        }[self.kind]
        base = f"{prefix}:{self.anchor}"
        return f"{base}#{self.view}" if self.view else base

    def covers_type(self, type_name: str) -> bool:
        """Whether *type_name* participates in this point of view."""
        return type_name in self.members

    def project(self, schema: Schema) -> Schema:
        """Project this concept's member types out of *schema*.

        Returns a fresh sub-schema that *shares* the member interfaces
        with *schema* copy-on-write (types no longer present in *schema*
        are skipped -- the concept schema may have been extracted before
        a deletion): adding a still-spined interface borrows it, and the
        first mutation on either side privatises a copy into the
        projection, so projecting never pays an eager interface copy.
        Useful for rendering and for exporting one point of view as ODL.
        """
        projection = Schema(f"{schema.name}#{self.identifier}")
        for name in sorted(self.members):
            if name in schema:
                projection.add_interface(schema.get(name))
        return projection

    def describe(self) -> str:
        """One-line description for concept schema listings."""
        return (
            f"{self.identifier}: {self.kind.label()} anchored at "
            f"{self.anchor} ({len(self.members)} types)"
        )
